"""E7 — §3.1 in-text: the spinlock cycle and per-message lock traffic.

Microbenchmarks: one uncontended acquire/release cycle (paper: 70 ns) and
the number of lock acquisitions per message under each policy (paper:
coarse holds the lock twice per message).
"""


def test_lock_cycle_and_traffic(figure_runner):
    results = figure_runner("lockcost")
    cycles = {r.config: r.latency_us for r in results}
    assert cycles["cycles/msg (none)"] == 0
    # coarse: 2 acquisitions per message (paper's accounting)
    assert 1.5 <= cycles["cycles/msg (coarse)"] <= 2.5
    # fine: 3 lock points per message
    assert 2.5 <= cycles["cycles/msg (fine)"] <= 3.5
