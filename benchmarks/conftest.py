"""Shared helpers for the figure-regeneration benchmarks.

Each ``benchmarks/bench_*.py`` regenerates one of the paper's figures (or
in-text results) under pytest-benchmark, prints the same series the paper
plots, records the measured values in ``extra_info``, and asserts the
shape claims from :mod:`repro.bench.paper`.

Set ``REPRO_BENCH_QUICK=1`` to run reduced sweeps and
``REPRO_BENCH_WORKERS=N`` to fan each figure's sweep out to N worker
processes (same results, less wall-clock).
"""

import os

import pytest

from repro.bench import figures
from repro.bench.parallel import resolve_workers
from repro.bench.report import print_figure

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
WORKERS = resolve_workers()


def regenerate(benchmark, name: str):
    """Run one figure once under the benchmark timer; print and check it."""
    result = benchmark.pedantic(
        lambda: figures.FIGURES[name](QUICK, workers=WORKERS), rounds=1, iterations=1
    )
    results, checks = result
    print()
    print_figure(results, title=figures.TITLES[name], checks=checks)
    for claim, measured in checks:
        benchmark.extra_info[claim.claim_id] = round(measured, 3)
    failed = [c.claim_id for c, m in checks if not c.check(m)]
    assert not failed, f"paper claims off: {failed}"
    return results


@pytest.fixture
def figure_runner(benchmark):
    def run(name: str):
        return regenerate(benchmark, name)

    return run
