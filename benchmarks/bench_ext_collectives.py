"""EXT-2 — extension: Mad-MPI collective scaling.

The paper's future-work direction is running "real applications that mix
multi-threading and message passing" over the stack; this measures the
collective building blocks vs. communicator size.
Expected shapes: log-round algorithms (barrier/bcast/allreduce) grow
mildly with p; the ring allgather grows linearly.
"""

from repro.bench.collectives import run_collective_scaling
from repro.bench.report import figure_table


def test_collective_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: run_collective_scaling((2, 3, 4, 6)), rounds=1, iterations=1
    )
    print()
    print(
        figure_table(
            results, title="Collective time vs. communicator size (us, fine locking)"
        )
    )
    for name in results.configs():
        series = dict(results.series(name))
        benchmark.extra_info[name] = {str(n): round(v, 2) for n, v in series.items()}
        # more ranks never get cheaper
        assert series[2] < series[6], f"{name} does not grow with p"
    # the ring allgather (p-1 rounds) outgrows the log-round barrier
    barrier = dict(results.series("barrier"))
    allgather = dict(results.series("allgather"))
    assert allgather[6] / allgather[2] > barrier[6] / barrier[2]
