"""E4 — Figure 7: impact of semaphores (busy vs. passive waiting).

Workload: single-threaded pingpong; nm_wait either keeps polling through
PIOMan (active) or blocks on a semaphore while PIOMan polls from the
scheduler's idle hook (passive).
Paper shape: the context switches of passive waiting cost ~750 ns.
"""


def test_fig7_passive_waiting(figure_runner):
    results = figure_runner("fig7")
    for policy in ("coarse", "fine"):
        for size in results.sizes():
            active = results.point(f"active ({policy})", size)
            passive = results.point(f"passive ({policy})", size)
            assert passive > active, f"passive free at {size} B under {policy}?"
