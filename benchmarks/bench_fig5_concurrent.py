"""E2 — Figure 5: two threads perform pingpongs concurrently.

Workload: per-core thread pairs running independent tagged pingpongs over
one shared NIC, coarse vs. fine locking, plus the 1-thread baseline.
Paper shape: concurrent latency roughly twice the single-thread latency
under coarse locking; fine-grain clearly better.

The simulated MX path has about twice the per-message capacity of the
2009 stack, so the paper's two-thread saturation appears at four flows
(both flow counts are reported; claims are evaluated at saturation — see
EXPERIMENTS.md).
"""

from repro.bench.locking import FIG5_SATURATION_FLOWS


def test_fig5_concurrent_pingpongs(figure_runner):
    results = figure_runner("fig5")
    sat = FIG5_SATURATION_FLOWS
    for size in results.sizes():
        single = results.point("1 thread", size)
        coarse = results.point(f"coarse ({sat} threads)", size)
        fine = results.point(f"fine ({sat} threads)", size)
        assert coarse > single, f"no concurrency penalty at {size} B"
        assert fine < coarse, f"fine-grain not better at {size} B"
