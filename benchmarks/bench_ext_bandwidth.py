"""EXT-3 — extension: locking does not impact bandwidth.

The paper states its locking overheads are "a constant overhead ... that
do[es] not impact bandwidth" (§3.1/§3.2).  This measures sustained
streaming bandwidth per policy directly: the per-message lock cycles
amortise to nothing against the wire time of bandwidth-bound transfers.
"""

from repro.bench.bandwidth import run_bandwidth_sweep
from repro.bench.report import figure_table


def test_bandwidth_unaffected_by_locking(benchmark):
    results = benchmark.pedantic(run_bandwidth_sweep, rounds=1, iterations=1)
    print()
    print(figure_table(results, title="Streaming bandwidth by policy (MB/s)"))
    for size in results.sizes():
        none = results.point("none", size)
        coarse = results.point("coarse", size)
        fine = results.point("fine", size)
        benchmark.extra_info[f"{size}B"] = {
            "none": round(none, 1),
            "coarse": round(coarse, 1),
            "fine": round(fine, 1),
        }
        # within 5% of the unlocked bandwidth at every size (the residual
        # wobble is deterministic phase alignment of the rendezvous
        # handshake against the polling loop, not a lock cost — it goes in
        # both directions)
        assert abs(coarse - none) / none < 0.05, f"coarse hurts bw at {size}"
        assert abs(fine - none) / none < 0.05, f"fine hurts bw at {size}"
    # sanity: large transfers approach the MX line rate (1.25 GB/s wire,
    # minus protocol/handshake overheads)
    big = results.point("none", 256 * 1024)
    assert 700 < big < 1_300
