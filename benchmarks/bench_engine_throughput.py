"""Engine-throughput microbenchmark: tracks the sim core's speed over PRs.

Two numbers matter for the perf trajectory:

* **events/sec** — raw discrete-event engine throughput (a timer-cascade
  storm with no scheduler on top) and the same number through the full
  NewMadeleine/Marcel stack (a pingpong workload);
* **full-suite wall-clock** — the time to regenerate every figure with
  ``--quick``, measured cold (fresh point cache, every point simulated)
  *and* warm (every point replayed from :mod:`repro.bench.cache`) —
  i.e. what a contributor actually waits for, first run and re-run.

Both are written to ``BENCH_engine.json`` at the repository root so
successive PRs can diff them — together with a per-layer attribution of
where the host CPU time goes (see :mod:`repro.bench.profile`).  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

or via pytest-benchmark (``pytest benchmarks/bench_engine_throughput.py``).
``--quick`` runs the CI smoke mode instead: a fast stack-pingpong
measurement gated against the committed report (fails on a regression
beyond ``REPRO_BENCH_REGRESSION_PCT`` percent, default 20) plus a
``bench_profile_layers.json`` artifact.  ``--cache-smoke`` runs the
cold→warm double pass of the quick suite against a fresh cache and fails
unless the warm pass fully replayed (stats land in
``cache_smoke.json``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without -e install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import figures
from repro.bench.pingpong import run_pingpong
from repro.bench.profile import profile_layers
from repro.core.session import build_testbed
from repro.sim.engine import Engine

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: event-storm shape: enough chained events to hide timer resolution,
#: few enough to finish in well under a second
STORM_CHAINS = 8
STORM_EVENTS = 200_000


def engine_event_storm(
    n_chains: int = STORM_CHAINS, events: int = STORM_EVENTS
) -> float:
    """Raw engine events/sec: ``n_chains`` independent timer cascades."""
    eng = Engine()
    per_chain = events // n_chains

    def tick(chain: int, left: int) -> None:
        if left:
            eng.schedule(10, tick, chain, left - 1)

    for chain in range(n_chains):
        eng.schedule(chain, tick, chain, per_chain)
    t0 = time.perf_counter()
    eng.run()
    elapsed = time.perf_counter() - t0
    return eng.events_run / elapsed


def stack_pingpong_rate(
    size: int = 1024, iterations: int = 200, *, traced: bool = False
) -> float:
    """Events/sec through the full library stack (scheduler, locks, NIC
    model): a fine-locking pingpong, the workload most figures run.

    ``traced=True`` attaches a :class:`repro.sim.trace.Tracer` to every
    machine, measuring the observability layer's recording cost.
    """
    bed = build_testbed(policy="fine")
    if traced:
        from repro.sim.trace import Tracer

        for machine in bed.machines:
            machine.attach_tracer(Tracer(max_events=1_000_000))
    t0 = time.perf_counter()
    run_pingpong(bed, size, iterations=iterations, warmup=4)
    elapsed = time.perf_counter() - t0
    return bed.engine.events_run / elapsed


def workload_stencil_rate(*, steps: int = 6, halo_bytes: int = 4096) -> float:
    """Events/sec through a full workload scenario: the halo-exchange
    stencil (multi-threaded halo exchange + compute on every rank), the
    most application-shaped traffic the repo generates."""
    from repro.workloads.stencil import run_stencil

    t0 = time.perf_counter()
    run = run_stencil("fine/busy/inline", steps=steps, halo_bytes=halo_bytes)
    elapsed = time.perf_counter() - t0
    return run.events_run / elapsed


def tracing_overhead(*, best_of: int = 3, baseline: float | None = None) -> dict:
    """Stack throughput with tracing off vs. on.

    ``disabled_overhead_pct`` compares the untraced run against
    ``baseline`` (the same-run ``stack_pingpong_events_per_sec``
    measurement): both exercise the identical no-tracer path, so the
    delta bounds measurement noise and guards the figure sweeps' hot
    path — the tracing hooks must stay effectively free (<2 %) when no
    tracer is attached.  Cross-PR regressions show up in the history of
    ``stack_pingpong_events_per_sec`` itself.

    Samples are interleaved (off/on/off/on...): sequential blocks would
    let CPU frequency ramp-up bias whichever block runs later by far
    more than the effect being measured.
    """
    disabled_samples, enabled_samples = [], []
    for _ in range(best_of):
        disabled_samples.append(stack_pingpong_rate())
        enabled_samples.append(stack_pingpong_rate(traced=True))
    disabled = max(disabled_samples)
    enabled = max(enabled_samples)
    out = {
        "disabled_events_per_sec": round(disabled),
        "enabled_events_per_sec": round(enabled),
        "enabled_overhead_pct": round(100.0 * (1.0 - enabled / disabled), 2),
    }
    if baseline:
        out["disabled_overhead_pct"] = round(
            100.0 * (1.0 - disabled / baseline), 2
        )
    return out


def _suite_pass() -> tuple[float, dict[str, float]]:
    """One full ``--quick`` figure pass; returns (total_s, per-figure)."""
    import contextlib
    import io

    per_figure: dict[str, float] = {}
    t_total = time.perf_counter()
    for name in sorted(figures.FIGURES):
        t0 = time.perf_counter()
        with contextlib.redirect_stdout(io.StringIO()):
            figures.render(name, quick=True)
        per_figure[name] = round(time.perf_counter() - t0, 3)
    return round(time.perf_counter() - t_total, 3), per_figure


def full_suite_wall_clock() -> dict:
    """Cold → warm wall-clock of the ``--quick`` figure suite.

    The cold pass runs against a fresh temporary cache directory (every
    sweep point simulated, then stored); the warm pass repeats the
    identical suite against the now-populated cache, so its time is what
    a contributor pays when re-running an unchanged tree.  ``total_s``
    stays the cold time for cross-PR continuity; the cache block records
    the hit/miss counters of both passes.
    """
    import tempfile

    from repro.bench import cache as point_cache

    saved = {
        var: os.environ.get(var)
        for var in (point_cache.CACHE_DIR_ENV, point_cache.CACHE_ENV)
    }
    with tempfile.TemporaryDirectory() as tmp:
        os.environ[point_cache.CACHE_DIR_ENV] = tmp
        os.environ[point_cache.CACHE_ENV] = "1"
        try:
            before = point_cache.stats()
            cold_s, per_figure = _suite_pass()
            mid = point_cache.stats()
            warm_s, _ = _suite_pass()
            after = point_cache.stats()
        finally:
            for var, value in saved.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
    cold = mid.delta(before)
    warm = after.delta(mid)
    return {
        "total_s": cold_s,
        "per_figure_s": per_figure,
        "suite_cold_s": cold_s,
        "suite_warm_s": warm_s,
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "cache": {
            "cold_hits": cold.hits,
            "cold_misses": cold.misses,
            "warm_hits": warm.hits,
            "warm_misses": warm.misses,
            "warm_hit_ratio": round(warm.hit_ratio(), 4),
        },
    }


def layer_breakdown() -> dict:
    """Per-layer host-CPU attribution of the two stack workloads
    (percent of profiled self-time; see :mod:`repro.bench.profile`)."""
    out = {}
    for key, workload in (
        ("stack_pingpong", "pingpong"),
        ("workload_stencil", "stencil"),
    ):
        report = profile_layers(workload)
        out[key] = {layer: row["pct"] for layer, row in report["layers"].items()}
    return out


def quick_smoke(*, profile_out: Path | None = None, best_of: int = 3) -> dict:
    """CI smoke: measure stack-pingpong throughput, gate it against the
    committed ``BENCH_engine.json``, and dump the per-layer profile.

    The gate fails (``ok: false``) when the measured rate is more than
    ``REPRO_BENCH_REGRESSION_PCT`` percent (default 20) below the
    committed ``stack_pingpong_events_per_sec`` — loose enough for shared
    CI runners, tight enough to catch a real hot-path regression.
    """
    threshold = float(os.environ.get("REPRO_BENCH_REGRESSION_PCT", "20"))
    stack_pingpong_rate()  # warm-up
    rate = max(stack_pingpong_rate() for _ in range(best_of))
    result: dict = {
        "stack_pingpong_events_per_sec": round(rate),
        "threshold_pct": threshold,
        "ok": True,
    }
    if OUTPUT.exists():
        committed = json.loads(OUTPUT.read_text(encoding="utf-8")).get(
            "stack_pingpong_events_per_sec"
        )
        if committed:
            regression = 100.0 * (1.0 - rate / committed)
            result["committed_events_per_sec"] = committed
            result["regression_pct"] = round(regression, 2)
            result["ok"] = regression <= threshold
    if profile_out is not None:
        profile_out.write_text(
            json.dumps(
                {w: profile_layers(w) for w in ("pingpong", "stencil")}, indent=2
            )
            + "\n",
            encoding="utf-8",
        )
        result["profile_artifact"] = str(profile_out)
    return result


def cache_smoke(*, stats_out: Path | None = None) -> dict:
    """CI smoke for the incremental sweep cache: run the quick suite
    cold → warm against a fresh cache and check the warm pass replayed.

    Fails (``ok: false``) when the warm pass recorded zero hits or any
    miss — every sweep-backed point of an unchanged tree must replay.
    The wall-clock speedup is recorded but not gated (shared CI runners
    are too noisy for a timing assertion).
    """
    suite = full_suite_wall_clock()
    cache = suite["cache"]
    result = {
        "suite_cold_s": suite["suite_cold_s"],
        "suite_warm_s": suite["suite_warm_s"],
        "warm_speedup": suite["warm_speedup"],
        "cache": cache,
        "ok": cache["warm_hits"] > 0 and cache["warm_misses"] == 0,
    }
    if stats_out is not None:
        stats_out.write_text(
            json.dumps(result, indent=2) + "\n", encoding="utf-8"
        )
        result["stats_artifact"] = str(stats_out)
    return result


def collect(*, best_of: int = 3) -> dict:
    """Measure everything; events/sec numbers take the best of ``best_of``
    runs (the max is the least noisy statistic for a throughput)."""
    stack_pingpong_rate()  # warm-up: let CPU frequency scaling settle
    stack_rate = max(stack_pingpong_rate() for _ in range(best_of))
    return {
        "python": platform.python_version(),
        "engine_events_per_sec": round(
            max(engine_event_storm() for _ in range(best_of))
        ),
        "stack_pingpong_events_per_sec": round(stack_rate),
        "workload_stencil_events_per_sec": round(
            max(workload_stencil_rate() for _ in range(best_of))
        ),
        "layer_pct": layer_breakdown(),
        "tracing": tracing_overhead(best_of=best_of, baseline=stack_rate),
        "full_suite_quick": full_suite_wall_clock(),
    }


def write_report(path: Path = OUTPUT) -> dict:
    data = collect()
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data


def test_engine_throughput(benchmark):
    """pytest-benchmark entry: times the raw storm, then writes the full
    BENCH_engine.json report."""
    rate = benchmark.pedantic(engine_event_storm, rounds=3, iterations=1)
    assert rate is not None
    data = write_report()
    benchmark.extra_info["engine_events_per_sec"] = data["engine_events_per_sec"]
    benchmark.extra_info["full_suite_quick_s"] = data["full_suite_quick"]["total_s"]
    assert data["engine_events_per_sec"] > 0
    assert data["full_suite_quick"]["total_s"] > 0
    assert OUTPUT.exists()


if __name__ == "__main__":
    if "--cache-smoke" in sys.argv:
        # CI cache smoke: cold→warm double run of the quick suite against
        # a fresh cache; fails unless the warm pass fully replayed
        smoke = cache_smoke(stats_out=Path("cache_smoke.json"))
        print(json.dumps(smoke, indent=2))
        if not smoke["ok"]:
            print(
                "FAIL: warm suite pass did not replay from the cache "
                f"(hits={smoke['cache']['warm_hits']}, "
                f"misses={smoke['cache']['warm_misses']})",
                file=sys.stderr,
            )
            sys.exit(1)
    elif "--quick" in sys.argv:
        # CI smoke mode: throughput gate + per-layer profile artifact,
        # no report rewrite (BENCH_engine.json stays the committed baseline)
        artifact = Path("bench_profile_layers.json")
        smoke = quick_smoke(profile_out=artifact)
        print(json.dumps(smoke, indent=2))
        if not smoke["ok"]:
            print(
                f"FAIL: stack pingpong regressed {smoke['regression_pct']}% "
                f"(threshold {smoke['threshold_pct']}%)",
                file=sys.stderr,
            )
            sys.exit(1)
    else:
        report = write_report()
        print(json.dumps(report, indent=2))
        print(f"\nwrote {OUTPUT}")
