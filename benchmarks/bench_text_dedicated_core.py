"""E8 — §3.3 in-text: cost of dedicating a core to communication.

Workload: four compute threads on a quad-core node, with and without one
core reserved for a polling loop.
Paper shape: "on a 4-core machine, dedicating one core to communication
leads to up to 25 % decrease of the computation power".
"""


def test_dedicated_core_compute_loss(figure_runner):
    results = figure_runner("dedicated-core")
    loss = results.point("throughput loss", 0)
    assert 0.17 <= loss <= 0.33
