"""E1 — Figure 3: impact of locking on latency.

Workload: single-threaded pingpong, 1 B – 2 KB, over simulated Myri-10G.
Series: no locking / coarse-grain / fine-grain.
Paper shape: constant offsets of +140 ns (coarse) and +230 ns (fine),
independent of message size.
"""


def test_fig3_locking_overheads(figure_runner):
    results = figure_runner("fig3")
    # the visual ordering of the three curves
    for size in results.sizes():
        none = results.point("none", size)
        coarse = results.point("coarse", size)
        fine = results.point("fine", size)
        assert none < coarse < fine, f"ordering broken at {size} B"
