"""A3 — ablation: the locking policies on *real* threads.

The same coarse/fine/no-locking comparison as Figure 3, but live: Python
threads, real locks, an in-process loopback link (see :mod:`repro.rt`).
GIL-bound absolute numbers, but the lock-path cost ordering is genuinely
measured on the host.
"""

import statistics

from repro.rt import rt_lock_overhead_ns, rt_pingpong


def test_rt_lock_path_costs(benchmark):
    overheads = benchmark.pedantic(
        lambda: {
            policy: rt_lock_overhead_ns(policy, cycles=20_000)
            for policy in ("none", "coarse", "fine")
        },
        rounds=1,
        iterations=1,
    )
    print("\nA3 live lock-path traversal cost (host, ns):")
    for policy, cost in overheads.items():
        print(f"  {policy:7s} {cost:8.1f}")
        benchmark.extra_info[policy] = round(cost, 1)
    assert overheads["none"] < overheads["coarse"]
    assert overheads["none"] < overheads["fine"]


def test_rt_pingpong_latencies(benchmark):
    def measure():
        return {
            policy: statistics.median(rt_pingpong(policy, iterations=120, warmup=20))
            for policy in ("none", "coarse", "fine")
        }

    medians = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nA3 live pingpong median RTT (host, us):")
    for policy, rtt in medians.items():
        print(f"  {policy:7s} {rtt / 1000:8.1f}")
        benchmark.extra_info[policy] = round(rtt / 1000, 1)
    # messages flowed under every policy; wall-clock ordering left
    # unasserted (host-dependent noise)
    assert all(rtt > 0 for rtt in medians.values())
