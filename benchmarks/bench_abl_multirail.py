"""A2 — ablation: multirail distribution across two NICs.

Workload: one large rendezvous transfer over a testbed with two MX rails
per node pair, with and without the multirail splitting strategy (§2:
"multirail distribution").
Expected shape: splitting across both rails roughly halves the transfer
time of bandwidth-bound messages; small messages are not split.
"""

from repro.core import BusyWait, DefaultStrategy, MultirailStrategy, build_testbed

SIZE = 512 * 1024


def run_transfer(strategy_factory, rails: int) -> float:
    bed = build_testbed(policy="fine", rails=rails, strategy_factory=strategy_factory)
    done = {}

    def sender():
        lib = bed.lib(0)
        req = yield from lib.isend(1, 9, SIZE)
        yield from lib.wait(req, BusyWait())

    def receiver():
        lib = bed.lib(1)
        req = yield from lib.irecv(0, 9, SIZE)
        yield from lib.wait(req, BusyWait())
        done["at"] = bed.engine.now

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0, bound=True)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0, bound=True)
    bed.run(until=lambda: ts.done and tr.done)
    return done["at"] / 1000


def test_multirail_speedup(benchmark):
    single, dual = benchmark.pedantic(
        lambda: (
            run_transfer(DefaultStrategy, rails=1),
            run_transfer(MultirailStrategy, rails=2),
        ),
        rounds=1,
        iterations=1,
    )
    speedup = single / dual
    print(
        f"\nA2 multirail ablation ({SIZE // 1024} KiB rendezvous):\n"
        f"  1 rail:  {single:8.1f} us\n"
        f"  2 rails: {dual:8.1f} us  (speedup {speedup:.2f}x)"
    )
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert speedup > 1.6  # near-2x for a bandwidth-bound transfer
