"""E3 — Figure 6: impact of PIOMan on latency.

Workload: single-threaded pingpong where nm_wait polls either the library
directly or through PIOMan's request lists, under coarse and fine locking.
Paper shape: PIOMan's management adds a constant ~200 ns.
"""


def test_fig6_pioman_overhead(figure_runner):
    results = figure_runner("fig6")
    for policy in ("coarse", "fine"):
        for size in results.sizes():
            direct = results.point(policy, size)
            pioman = results.point(f"pioman ({policy})", size)
            assert pioman > direct, f"PIOMan free at {size} B under {policy}?"
