"""E5 — Figure 8: impact of cache affinity on a quad-core chip.

Workload: pingpong with the application thread bound to CPU 0 and all
polling delegated to CPU {0,1,2,3} (PIOMan idle hooks restricted to one
core; the app spins on the completion flag).
Paper shape: polling on the shared-L2 sibling (CPU 1) costs +400 ns;
polling across caches (CPU 2/3) costs +1.2 us; CPUs 2 and 3 equivalent.
"""

import pytest


def test_fig8_cache_affinity(figure_runner):
    results = figure_runner("fig8")
    for size in results.sizes():
        cpu0 = results.point("polling on cpu 0", size)
        cpu1 = results.point("polling on cpu 1", size)
        cpu2 = results.point("polling on cpu 2", size)
        cpu3 = results.point("polling on cpu 3", size)
        assert cpu0 < cpu1 < cpu2, f"tier ordering broken at {size} B"
        assert cpu2 == pytest.approx(cpu3, rel=0.1), f"cpu2 != cpu3 at {size} B"
