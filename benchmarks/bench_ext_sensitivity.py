"""EXT-4 — extension: calibration sensitivity.

The reproduction's constants come from two cost models; this ablation
shows the measured overheads respond linearly to the knob they are
calibrated by — i.e. the figures measure the mechanism we think they
measure, not an artefact:

* scaling every machine-substrate cost (spinlock cycle, switch, wake) by
  2x doubles the Fig. 3 locking offsets and the Fig. 7 passive offset;
* the network model is untouched, so the no-locking baseline moves by
  far less.
"""

from repro.bench.config import BenchConfig
from repro.bench.pingpong import run_pingpong
from repro.core import CostModel, build_testbed
from repro.core.waiting import BusyWait
from repro.sim import SimCosts


def fig3_offset(policy: str, factor: float) -> float:
    """Median coarse/fine offset (ns) across sizes with the substrate
    costs scaled by ``factor``."""
    costs = CostModel(sim=SimCosts().scaled(factor))
    cfg = BenchConfig(iterations=32, warmup=4, sizes=(1, 64, 1024), jitter_ns=150)

    def lat(pol, size):
        bed = build_testbed(policy=pol, costs=costs, jitter_ns=cfg.jitter_ns)
        return run_pingpong(
            bed, size, iterations=cfg.iterations, warmup=cfg.warmup,
            wait_factory=BusyWait,
        ).latency_ns

    diffs = sorted(lat(policy, s) - lat("none", s) for s in cfg.sizes)
    return diffs[len(diffs) // 2]


def test_lock_offsets_scale_with_spin_cost(benchmark):
    def measure():
        return {
            "coarse_1x": fig3_offset("coarse", 1.0),
            "coarse_2x": fig3_offset("coarse", 2.0),
            "fine_1x": fig3_offset("fine", 1.0),
            "fine_2x": fig3_offset("fine", 2.0),
        }

    offsets = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nEXT-4 sensitivity of lock offsets to substrate cost scale (ns):")
    for key, value in offsets.items():
        print(f"  {key:10s} {value:8.1f}")
        benchmark.extra_info[key] = round(value, 1)
    # doubling the substrate costs roughly doubles the measured offsets
    # (tolerances cover the per-size phase quantisation)
    assert 1.3 <= offsets["coarse_2x"] / offsets["coarse_1x"] <= 2.8
    assert 1.3 <= offsets["fine_2x"] / offsets["fine_1x"] <= 2.8
