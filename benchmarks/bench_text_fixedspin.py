"""E9 — §3.3 in-text: the fixed-spin waiting algorithm.

Workload: a receive whose message lands 8 us after the wait begins,
waited on with spin thresholds from 0 (pure blocking) to 20 us
(pure spinning for this event).
Paper shape: when the event falls inside the spin window the context
switch is avoided (Karlin et al.'s competitive spinning); outside it, the
switch cost returns but is amortised.
"""

import pytest


def test_fixed_spin_sweep(figure_runner):
    results = figure_runner("fixed-spin")
    # thresholds covering the 8 us event avoid the switch: visibly faster
    pure_block = results.point("fixed-spin wait", 0)
    covering = results.point("fixed-spin wait", 10_000)
    assert covering < pure_block
    # thresholds below the event arrival pay the switch, like pure blocking
    short_spin = results.point("fixed-spin wait", 2_000)
    assert short_spin == pytest.approx(pure_block, rel=0.25)
