"""EXT-1 — extension: the same stack over MX, InfiniBand and TCP.

The paper ran on MX and "obtained similar results with Infiniband" (§2),
and notes TCP-only implementations "perform badly for small messages"
(§5).  This sweep verifies both on the simulated stack, and shows that the
host-side locking overhead is network-independent in absolute terms —
hence *relatively* negligible on TCP.
"""

from repro.bench.config import BenchConfig
from repro.bench.report import figure_table
from repro.bench.technologies import locking_impact_by_technology, run_technology_sweep


def test_technology_comparison(benchmark):
    cfg = BenchConfig(iterations=16, warmup=4, sizes=(1, 64, 1024, 32 * 1024))

    def measure():
        return run_technology_sweep(cfg), locking_impact_by_technology(cfg)

    results, impact = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(figure_table(results, title="Pingpong latency by technology (us)"))
    print("\nRelative impact of coarse locking at 8 B:")
    for tech, frac in impact.items():
        print(f"  {tech:4s} {frac * 100:6.2f} %")
        benchmark.extra_info[f"lock_impact_{tech}"] = round(frac, 4)

    for size in results.sizes():
        mx = results.point("mx", size)
        ib = results.point("ib", size)
        tcp = results.point("tcp", size)
        # "similar results with Infiniband": same order of magnitude, IB a
        # touch faster; TCP far behind at small sizes
        assert ib < mx
        assert mx < ib * 1.6
        if size <= 1024:
            assert tcp > 4 * mx, f"TCP should be far slower at {size} B"
    # locking hurts (relatively) most where the base latency is lowest
    assert impact["ib"] >= impact["tcp"]
    assert impact["mx"] >= impact["tcp"]
