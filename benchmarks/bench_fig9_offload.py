"""E6 — Figure 9: impact of tasklets on deferred message submission.

Workload: non-blocking pingpong with a 10 us compute phase between
nm_isend and nm_wait, 2 KB – 32 KB, with background progression on the
shared-L2 core.  Series: inline submission (reference) / idle-core
offload ("without tasklets") / tasklet offload.
Paper shape: tasklets add ~2 us; plain idle-core offload ~400 ns.
"""


def test_fig9_offloaded_submission(figure_runner):
    results = figure_runner("fig9")
    for size in results.sizes():
        ref = results.point("reference", size)
        idle = results.point("no tasklets", size)
        tasklets = results.point("tasklets", size)
        assert ref < idle < tasklets, f"offload ordering broken at {size} B"
