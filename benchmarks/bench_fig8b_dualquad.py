"""E5b — §4.1 in-text: cache affinity on the dual quad-core node.

Workload: as Figure 8, on the 8-core two-chip machine.
Paper shape: +400 ns shared cache (CPU 1), +2.3 us same chip / separate
cache (CPU 2-3), +3.1 us other chip (CPU 4-7).
"""


def test_fig8b_dual_quad_affinity(figure_runner):
    results = figure_runner("fig8b")
    for size in results.sizes():
        base = results.point("polling on cpu 0", size)
        shared = results.point("polling on cpu 1", size)
        chip = results.point("polling on cpu 2", size)
        other = results.point("polling on cpu 4", size)
        assert base < shared < chip < other, f"tier ordering broken at {size} B"
