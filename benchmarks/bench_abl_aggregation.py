"""A1 — ablation: the optimization layer's aggregation strategy.

Workload: a burst of small same-peer messages submitted back-to-back with
deferred (NIC-driven) flushing, so several messages accumulate in the
collect layer while the NIC is busy — the situation NewMadeleine's
"coalescing" optimization exists for (§2).
Expected shape: aggregation sends fewer packets and finishes the burst
sooner than the one-packet-per-message default.
"""

from repro.core import (
    AggregatingStrategy,
    BusyWait,
    DefaultStrategy,
    PacketKind,
    build_testbed,
)
from repro.pioman import IdleCoreSubmit, attach_pioman, set_offload

BURST = 32
SIZE = 128


def run_burst(strategy_factory) -> tuple[float, int]:
    """Returns (burst makespan in us, DATA packets posted)."""
    bed = build_testbed(policy="fine", strategy_factory=strategy_factory)
    for node in (0, 1):
        attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[1])
        set_offload(bed.lib(node), IdleCoreSubmit())
    done = {}

    def sender():
        lib = bed.lib(0)
        reqs = []
        for i in range(BURST):
            req = yield from lib.isend(1, 60, SIZE)
            reqs.append(req)
        for req in reqs:
            yield from lib.wait(req, BusyWait())

    def receiver():
        lib = bed.lib(1)
        reqs = []
        for i in range(BURST):
            req = yield from lib.irecv(0, 60, SIZE)
            reqs.append(req)
        for req in reqs:
            yield from lib.wait(req, BusyWait())
        done["at"] = bed.engine.now

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0, bound=True)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0, bound=True)
    bed.run(until=lambda: ts.done and tr.done)
    return done["at"] / 1000, bed.lib(0).packets_posted[PacketKind.DATA]


def test_aggregation_reduces_packets_and_time(benchmark):
    (default_us, default_packets), (agg_us, agg_packets) = benchmark.pedantic(
        lambda: (run_burst(DefaultStrategy), run_burst(AggregatingStrategy)),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nA1 aggregation ablation ({BURST} x {SIZE} B burst):\n"
        f"  default:     {default_packets:3d} packets, {default_us:8.1f} us\n"
        f"  aggregating: {agg_packets:3d} packets, {agg_us:8.1f} us"
    )
    benchmark.extra_info["default_packets"] = default_packets
    benchmark.extra_info["aggregated_packets"] = agg_packets
    assert agg_packets < default_packets
    assert agg_us < default_us
