"""Application-level workload generator and scenario suite.

The paper measures each threading mechanism with microbenchmarks; this
subsystem measures them under *application-shaped* multithreaded traffic
— halo-exchange stencils, bursty many-to-many flows, fan-in reductions,
producer/consumer pipelines and collectives under contention — and ranks
the mechanisms per scenario (the ``mechanism matrix``), the way
:mod:`repro.bench.figures` ranks them per paper figure.

Quick use::

    from repro.workloads import run_scenario, mechanism_matrix

    results = run_scenario("stencil", quick=True)
    print(mechanism_matrix({"stencil": results}))

or from the command line::

    python -m repro.workloads --scenario stencil --quick

See ``docs/workloads.md`` for the scenario registry, the mechanism grid
and the determinism guarantees.
"""

from repro.workloads.base import (
    WAIT_FACTORIES,
    WORKLOAD_POLICIES,
    Mechanism,
    WorkloadError,
    WorkloadRun,
    build_workload_bed,
    mechanism_grid,
    run_workload,
)
from repro.workloads.matrix import (
    config_label,
    mechanism_matrix,
    missing_point_count,
    rank_mechanisms,
    run_scenario,
    scenario_report,
)
from repro.workloads.registry import Scenario, get, load_all, names, register

__all__ = [
    "WAIT_FACTORIES",
    "WORKLOAD_POLICIES",
    "Mechanism",
    "WorkloadError",
    "WorkloadRun",
    "build_workload_bed",
    "mechanism_grid",
    "run_workload",
    "config_label",
    "mechanism_matrix",
    "missing_point_count",
    "rank_mechanisms",
    "run_scenario",
    "scenario_report",
    "Scenario",
    "get",
    "load_all",
    "names",
    "register",
]
