"""Producer/consumer pipeline workload (communication overlap).

A two-stage pipeline: rank 0 produces chunks (simulated compute), rank 1
consumes them (more compute).  The measure is how well communication
overlaps computation — the paper's §4.2 theme — under two threading
styles, exposed as scenario *variants*:

* ``funneled`` — one thread per rank (``MPI_THREAD_FUNNELED``); overlap
  comes only from non-blocking calls: produce chunk *i+1* while chunk *i*
  is in flight.
* ``multiple`` — a dedicated communication thread per rank
  (``MPI_THREAD_MULTIPLE``): the compute thread hands chunks over a
  semaphore-guarded queue and never touches MPI, the comm thread streams
  them out/in concurrently.

The sweep axis is the chunk size in bytes; mechanism ranking shows where
a comm thread beats non-blocking funneling (it needs cheap enough
locking and progression to pay for itself).
"""

from __future__ import annotations

from collections import deque

from repro.madmpi import Communicator, ThreadLevel
from repro.sim.process import Delay, SimGen
from repro.sim.sync import Semaphore
from repro.workloads.base import run_workload, spawn_joinable
from repro.workloads.registry import Scenario, register

CHUNKS = 8
#: simulated cost of producing / consuming one chunk
PRODUCE_NS = 6_000
CONSUME_NS = 6_000


def _funneled_rank(comm: Communicator, chunk_bytes: int) -> SimGen:
    """Single thread per rank; overlap via double-buffered non-blocking."""
    if comm.rank == 0:
        inflight = None
        for i in range(CHUNKS):
            yield Delay(PRODUCE_NS, "compute")
            if inflight is not None:
                yield from comm.Wait(inflight)
            inflight = yield from comm.Isend(1, chunk_bytes, tag=i)
        yield from comm.Wait(inflight)
    else:
        nxt = yield from comm.Irecv(0, chunk_bytes, tag=0)
        for i in range(CHUNKS):
            yield from comm.Wait(nxt)
            if i + 1 < CHUNKS:
                nxt = yield from comm.Irecv(0, chunk_bytes, tag=i + 1)
            yield Delay(CONSUME_NS, "compute")


def _multiple_rank(comm: Communicator, chunk_bytes: int) -> SimGen:
    """Compute thread + dedicated communication thread per rank."""
    machine = comm.lib.machine
    queue: deque[int] = deque()
    avail = Semaphore(machine, 0, name=f"pipe{comm.rank}")

    if comm.rank == 0:

        def compute() -> SimGen:
            for i in range(CHUNKS):
                yield Delay(PRODUCE_NS, "compute")
                queue.append(i)
                yield from avail.signal()

        def communicate() -> SimGen:
            pending = []
            for _ in range(CHUNKS):
                yield from avail.wait()
                i = queue.popleft()
                req = yield from comm.Isend(1, chunk_bytes, tag=i)
                pending.append(req)
            yield from comm.Waitall(pending)

    else:

        def communicate() -> SimGen:
            for i in range(CHUNKS):
                yield from comm.Recv(0, chunk_bytes, tag=i)
                queue.append(i)
                yield from avail.signal()

        def compute() -> SimGen:
            for _ in range(CHUNKS):
                yield from avail.wait()
                queue.popleft()
                yield Delay(CONSUME_NS, "compute")

    join = spawn_joinable(
        machine,
        [
            (compute(), f"pipe-compute{comm.rank}", 0),
            (communicate(), f"pipe-comm{comm.rank}", 1),
        ],
    )
    yield from join()


def pipeline_point(mech_key: str, variant: str, seed: int, size: int) -> float:
    """Sweep point: makespan (us) streaming ``CHUNKS`` chunks of ``size``
    bytes through the pipeline under the given threading variant."""
    if variant == "funneled":

        def rank_fn(comm: Communicator) -> SimGen:
            yield from _funneled_rank(comm, size)

        level = ThreadLevel.FUNNELED
    elif variant == "multiple":

        def rank_fn(comm: Communicator) -> SimGen:
            yield from _multiple_rank(comm, size)

        level = ThreadLevel.MULTIPLE
    else:
        raise ValueError(f"unknown pipeline variant {variant!r}")
    return run_workload(
        mech_key, rank_fn, nodes=2, seed=seed, thread_level=level
    ).makespan_us


register(
    Scenario(
        name="pipeline",
        title="Producer/consumer pipeline (funneled vs. multiple)",
        description=(
            "Rank 0 produces chunks, rank 1 consumes them; the funneled "
            "variant overlaps with non-blocking calls from a single "
            "thread, the multiple variant runs a dedicated communication "
            "thread per rank.  Axis: chunk size in bytes."
        ),
        axis="chunk bytes",
        sizes=(1024, 8192, 65536),
        quick_sizes=(8192,),
        point=pipeline_point,
        variants=("funneled", "multiple"),
    )
)
