"""The scenario registry: named application-shaped workloads.

A :class:`Scenario` bundles a sweep axis (what the ``size`` column of its
:class:`~repro.util.records.ResultSet` means), optional variants (extra
series beside the mechanism grid, e.g. the pipeline's funneled vs.
multiple split) and a *picklable* point function, so scenario sweeps can
fan out across worker processes exactly like the figure sweeps
(:mod:`repro.bench.parallel`).

Scenario modules call :func:`register` at import time;
:func:`repro.workloads.registry.load_all` imports every built-in scenario
module so ``names()`` is complete.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

#: (mech_key, variant, seed, size) -> simulated makespan in microseconds
PointFn = Callable[[str, str, int, int], float]

#: scenario modules imported by :func:`load_all`
_BUILTIN_MODULES = (
    "repro.workloads.stencil",
    "repro.workloads.bursty",
    "repro.workloads.fanin",
    "repro.workloads.pipeline",
    "repro.workloads.contention",
)


@dataclass(frozen=True)
class Scenario:
    """One registered workload."""

    name: str
    title: str
    description: str
    #: what the sweep axis (the record ``size`` field) measures
    axis: str
    sizes: tuple[int, ...]
    quick_sizes: tuple[int, ...]
    point: PointFn
    #: extra series per mechanism ("" = none); each variant becomes its
    #: own config label, e.g. ``fine/busy/inline [funneled]``
    variants: tuple[str, ...] = ("",)

    def __post_init__(self) -> None:
        if not self.sizes or not self.quick_sizes:
            raise ValueError(f"scenario {self.name!r} needs non-empty sizes")
        if not self.variants:
            raise ValueError(f"scenario {self.name!r} needs >= 1 variant")

    def sweep_sizes(self, quick: bool) -> tuple[int, ...]:
        return self.quick_sizes if quick else self.sizes


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (idempotent re-registration of the
    identical object is allowed; name collisions are errors)."""
    existing = _REGISTRY.get(scenario.name)
    if existing is not None and existing is not scenario:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def load_all() -> None:
    """Import every built-in scenario module (their ``register`` calls
    populate the registry)."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def names() -> list[str]:
    """Registered scenario names, sorted."""
    load_all()
    return sorted(_REGISTRY)


def get(name: str) -> Scenario:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
