"""Entry point: ``python -m repro.workloads``."""

from repro.workloads.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
