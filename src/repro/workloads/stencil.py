"""Halo-exchange stencil workload (compute/communicate phases).

The generalized form of ``examples/hybrid_stencil.py``: a 1-D domain
decomposed across the ranks, each time step exchanging halos through one
communication thread *per neighbour* (legal only under
``MPI_THREAD_MULTIPLE``) and then computing with one slice thread per
core.  The sweep axis is the halo message size — the knob that moves the
scenario between latency-bound (8 B boundary floats, the heat-equation
case) and bandwidth-bound (multi-KB ghost layers of higher-order or
multi-field stencils).

With a real ``field`` the scenario computes actual heat-equation physics
(the example verifies it against a serial reference); workload sweeps run
the synthetic form, identical communication and compute shape without the
numpy payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.madmpi import Communicator
from repro.sim.process import Delay, SimGen
from repro.sim.sync import Semaphore
from repro.workloads.base import WorkloadRun, run_workload, spawn_joinable
from repro.workloads.registry import Scenario, register

#: default scenario shape
RANKS = 4
STEPS = 8
#: simulated cost of one stencil update of one subdomain slice
COMPUTE_NS_PER_SLICE = 2_000
#: explicit-Euler stability factor (dt*alpha/dx^2) for the physics form
ALPHA = 0.4


@dataclass(frozen=True)
class StencilRun:
    """Outcome of one stencil execution."""

    makespan_us: float
    events_run: int
    #: gathered global field (physics form only)
    field: Any = None


def _rank_program(
    comm: Communicator,
    *,
    steps: int,
    halo_bytes: int,
    compute_ns: int,
    u0: np.ndarray | None,
    alpha: float,
) -> SimGen:
    """One rank: per step, concurrent halo threads then compute slices."""
    rank, size = comm.rank, comm.size
    machine = comm.lib.machine
    ncores = machine.ncores
    u = None
    if u0 is not None:
        points = len(u0) // size
        u = u0[rank * points : (rank + 1) * points].copy()

    for step in range(steps):
        halos: dict[str, Any] = {"left": None, "right": None}
        tag = 1_000 + step

        def exchange(direction: str, neighbour: int, boundary: Any) -> SimGen:
            value, _ = yield from comm.Sendrecv(
                neighbour, halo_bytes, neighbour, halo_bytes,
                sendtag=tag, recvtag=tag, payload=boundary,
            )
            halos[direction] = value

        gens = []
        if rank > 0:
            boundary = float(u[0]) if u is not None else None
            gens.append(
                (exchange("left", rank - 1, boundary),
                 f"halo-left-{rank}-{step}", 1 % ncores)
            )
        if rank < size - 1:
            boundary = float(u[-1]) if u is not None else None
            gens.append(
                (exchange("right", rank + 1, boundary),
                 f"halo-right-{rank}-{step}", 2 % ncores)
            )
        join = spawn_joinable(machine, gens)
        yield from join()

        # ---- compute phase: one slice thread per core ----
        if u is not None:
            left = halos["left"] if halos["left"] is not None else u[0]
            right = halos["right"] if halos["right"] is not None else u[-1]
            padded = np.concatenate(([left], u, [right]))
            nxt = u + alpha * (padded[2:] - 2 * u + padded[:-2])
            if rank == 0:
                nxt[0] = u[0]
            if rank == size - 1:
                nxt[-1] = u[-1]

        def compute_slice() -> SimGen:
            yield Delay(compute_ns, "compute")

        compute_sem = Semaphore(machine, 0, name=f"comp{rank}s{step}")

        def slice_thread() -> SimGen:
            yield from compute_slice()
            compute_sem.post()

        for c in range(ncores):
            machine.scheduler.spawn(
                slice_thread(), name=f"slice{rank}-{step}-{c}", core=c,
                bound=True,
            )
        for _ in range(ncores):
            yield from compute_sem.wait()
        if u is not None:
            u = nxt

    if u is not None:
        gathered = yield from comm.Gather(u, root=0)
        if rank == 0:
            return np.concatenate(gathered)
    return None


def run_stencil(
    mech_key: str,
    *,
    seed: int = 0,
    ranks: int = RANKS,
    steps: int = STEPS,
    halo_bytes: int = 8,
    compute_ns: int = COMPUTE_NS_PER_SLICE,
    field: np.ndarray | None = None,
    alpha: float = ALPHA,
) -> StencilRun:
    """Run the stencil under one mechanism; physics form when ``field``
    (the full initial condition, length divisible by ``ranks``) is given."""
    if field is not None and len(field) % ranks:
        raise ValueError(
            f"field length {len(field)} not divisible by {ranks} ranks"
        )

    def rank_fn(comm: Communicator) -> SimGen:
        result = yield from _rank_program(
            comm, steps=steps, halo_bytes=halo_bytes, compute_ns=compute_ns,
            u0=field, alpha=alpha,
        )
        return result

    run: WorkloadRun = run_workload(
        mech_key, rank_fn, nodes=ranks, seed=seed
    )
    return StencilRun(
        makespan_us=run.makespan_us,
        events_run=run.events_run,
        field=run.results[0],
    )


def stencil_point(mech_key: str, variant: str, seed: int, size: int) -> float:
    """Sweep point: makespan (us) with ``size``-byte halo messages."""
    return run_stencil(mech_key, seed=seed, halo_bytes=size).makespan_us


register(
    Scenario(
        name="stencil",
        title="Halo-exchange stencil (compute/communicate phases)",
        description=(
            "1-D domain decomposition over 4 ranks; per step, one "
            "communication thread per neighbour exchanges halos "
            "concurrently (MPI_THREAD_MULTIPLE), then one compute slice "
            "per core runs.  Axis: halo message size in bytes."
        ),
        axis="halo bytes",
        sizes=(8, 256, 4096, 32768),
        quick_sizes=(8, 4096),
        point=stencil_point,
    )
)
