"""Collectives-under-contention workload.

Each rank's main thread runs rounds of ``madmpi.collectives``
(allreduce → bcast → barrier) while background threads on the same ranks
exchange point-to-point ring traffic concurrently — the mixed pattern
real MPI+threads applications produce, where collective progress
contends with application sends on the library's locks and progression
engine.  Only the main thread calls collectives (the MPI ordering
requirement); the background threads use plain user tags, legal under
``MPI_THREAD_MULTIPLE``.

The sweep axis is the background message size: tiny messages stress lock
acquisition rate, large ones stress the rendezvous/progression path.
"""

from __future__ import annotations

from repro.madmpi import Communicator
from repro.sim.process import Delay, SimGen
from repro.workloads.base import run_workload, spawn_joinable
from repro.workloads.registry import Scenario, register

NODES = 4
#: collective rounds per rank
ROUNDS = 4
#: background point-to-point threads per rank
BG_THREADS = 2
#: ring messages each background thread sends (and receives)
BG_MESSAGES = 6
#: simulated compute between collective rounds
ROUND_COMPUTE_NS = 3_000


def _rank_program(comm: Communicator, bg_bytes: int) -> SimGen:
    machine = comm.lib.machine
    ncores = machine.ncores
    me, p = comm.rank, comm.size
    right, left = (me + 1) % p, (me - 1) % p

    def background(thread: int) -> SimGen:
        """Ring exchange: send right / receive left, fixed count."""
        tag = 100 + thread
        for _ in range(BG_MESSAGES):
            rreq = yield from comm.Irecv(left, bg_bytes, tag=tag)
            sreq = yield from comm.Isend(right, bg_bytes, tag=tag)
            yield from comm.Waitall([sreq, rreq])

    gens = [
        (background(t), f"bg{me}.{t}", 1 + t % (ncores - 1))
        for t in range(BG_THREADS)
    ]
    join = spawn_joinable(machine, gens)

    total = 0
    for _ in range(ROUNDS):
        yield Delay(ROUND_COMPUTE_NS, "compute")
        total = yield from comm.Allreduce(me + 1, lambda a, b: a + b)
        value = yield from comm.Bcast(total, root=0)
        assert value == total
        yield from comm.Barrier()
    expect = p * (p + 1) // 2
    if total != expect:
        raise AssertionError(
            f"allreduce under contention produced {total}, expected {expect}"
        )
    yield from join()


def contention_point(mech_key: str, variant: str, seed: int, size: int) -> float:
    """Sweep point: makespan (us) with ``size``-byte background traffic."""

    def rank_fn(comm: Communicator) -> SimGen:
        yield from _rank_program(comm, size)

    return run_workload(mech_key, rank_fn, nodes=NODES, seed=seed).makespan_us


register(
    Scenario(
        name="collectives",
        title="Collectives under point-to-point contention",
        description=(
            "Each rank's main thread runs allreduce/bcast/barrier rounds "
            "while 2 background threads per rank exchange ring traffic "
            "concurrently.  Axis: background message size in bytes."
        ),
        axis="bg bytes",
        sizes=(64, 1024, 16384),
        quick_sizes=(1024,),
        point=contention_point,
    )
)
