"""Bursty many-to-many workload (stochastic arrival processes).

Per-thread traffic shape is the deciding variable for mechanism rankings
(Gillis et al.), so this scenario generates *application-like* traffic:
every sender thread emits messages whose inter-arrival times follow an
exponential (Poisson process) distribution and whose sizes follow a
lognormal, both drawn from the seeded :class:`repro.sim.rng.RngHub`
streams — the whole schedule is materialized **before** the simulation
starts, so the workload is byte-for-byte reproducible for a given seed
regardless of thread interleaving.

Topology: every node runs ``SENDER_THREADS`` sender threads spraying the
other nodes, plus one receiver thread per (peer, sender-thread) pair
draining the scheduled arrivals.  All of it concurrent, under
``MPI_THREAD_MULTIPLE``.
"""

from __future__ import annotations

from repro.madmpi import Communicator
from repro.sim.process import Delay, SimGen
from repro.sim.rng import RngHub
from repro.workloads.base import run_workload, spawn_joinable
from repro.workloads.registry import Scenario, register

NODES = 4
SENDER_THREADS = 2
#: mean inter-arrival time of each sender thread's Poisson process
MEAN_ARRIVAL_NS = 4_000
#: lognormal size distribution (median ~256 B, heavy right tail)
SIZE_MU = 5.5
SIZE_SIGMA = 1.0
MAX_MSG_BYTES = 64 * 1024


def make_schedule(
    seed: int, *, nodes: int, threads: int, messages: int
) -> dict[tuple[int, int], list[tuple[int, int, int]]]:
    """Materialize the traffic: per (node, sender thread), a list of
    ``(wait_ns, dest, size_bytes)`` draws from dedicated rng streams.

    Streams are named per sender thread, so adding a thread (or node)
    never perturbs another thread's sequence.
    """
    hub = RngHub(seed)
    schedule: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    for node in range(nodes):
        peers = [p for p in range(nodes) if p != node]
        for thread in range(threads):
            gen = hub.stream(f"workloads/bursty/node{node}/t{thread}")
            events = []
            for _ in range(messages):
                wait_ns = max(1, int(gen.exponential(MEAN_ARRIVAL_NS)))
                dest = peers[int(gen.integers(len(peers)))]
                size = int(gen.lognormal(SIZE_MU, SIZE_SIGMA))
                size = min(max(size, 1), MAX_MSG_BYTES)
                events.append((wait_ns, dest, size))
            schedule[(node, thread)] = events
    return schedule


def _incoming(
    schedule: dict[tuple[int, int], list[tuple[int, int, int]]],
    dest: int,
) -> dict[tuple[int, int], list[int]]:
    """Per (source node, sender thread): ordered sizes arriving at dest."""
    incoming: dict[tuple[int, int], list[int]] = {}
    for (node, thread), events in sorted(schedule.items()):
        sizes = [size for _, d, size in events if d == dest]
        if sizes:
            incoming[(node, thread)] = sizes
    return incoming


def _rank_program(
    comm: Communicator,
    schedule: dict[tuple[int, int], list[tuple[int, int, int]]],
    threads: int,
) -> SimGen:
    """Senders emit their schedule; receivers drain scheduled arrivals."""
    machine = comm.lib.machine
    ncores = machine.ncores
    me = comm.rank

    def sender(thread: int) -> SimGen:
        pending = []
        for wait_ns, dest, size in schedule[(me, thread)]:
            yield Delay(wait_ns, "compute")
            req = yield from comm.Isend(dest, size, tag=thread)
            pending.append(req)
        yield from comm.Waitall(pending)

    def receiver(src: int, thread: int, sizes: list[int]) -> SimGen:
        for size in sizes:
            yield from comm.Recv(src, size, tag=thread)

    gens = [
        (sender(t), f"burst-tx{me}.{t}", t % ncores)
        for t in range(threads)
    ]
    for i, ((src, thread), sizes) in enumerate(
        sorted(_incoming(schedule, me).items())
    ):
        gens.append(
            (receiver(src, thread, sizes),
             f"burst-rx{me}<{src}.{thread}", (threads + i) % ncores)
        )
    join = spawn_joinable(machine, gens)
    yield from join()


def bursty_point(mech_key: str, variant: str, seed: int, size: int) -> float:
    """Sweep point: makespan (us) with ``size`` messages per sender thread."""
    schedule = make_schedule(
        seed, nodes=NODES, threads=SENDER_THREADS, messages=size
    )

    def rank_fn(comm: Communicator) -> SimGen:
        yield from _rank_program(comm, schedule, SENDER_THREADS)

    return run_workload(mech_key, rank_fn, nodes=NODES, seed=seed).makespan_us


register(
    Scenario(
        name="bursty",
        title="Bursty many-to-many (Poisson arrivals, lognormal sizes)",
        description=(
            "4 nodes x 2 sender threads each; inter-arrival times are "
            "exponential and message sizes lognormal, drawn from seeded "
            "sim.rng streams materialized before the run.  Axis: messages "
            "per sender thread."
        ),
        axis="messages/thread",
        sizes=(4, 8, 16),
        quick_sizes=(4,),
        point=bursty_point,
    )
)
