"""Workload foundations: mechanisms, configuration, and the run harness.

A *mechanism* is one point of the paper's design space — which locking
policy the library uses (§3.1–3.2), how threads wait for completions
(§3.3), and who drives progression (inline from the waiter, PIOMan from
idle loops, or PIOMan plus timer-interrupt backstops).  The workload
subsystem measures application-shaped traffic under every mechanism, the
experiment the paper's microbenchmarks approximate.

A *scenario* (see :mod:`repro.workloads.registry`) provides a picklable
point function ``point(mech_key, variant, seed, size)`` returning the
simulated makespan in microseconds; the harness here turns a mechanism
key into a wired testbed + Mad-MPI world and runs the rank programs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.session import TestBed, build_testbed
from repro.core.waiting import (
    BusyWait,
    FixedSpinWait,
    PassiveWait,
    PiomanBusyWait,
    WaitStrategy,
)
from repro.madmpi import Communicator, ThreadLevel, create_world
from repro.pioman.integration import attach_pioman
from repro.sim.errors import SimTimeLimit
from repro.sim.process import SimGen

#: locking policies a multithreaded workload may run under.  ``"none"``
#: (the paper's thread-unsafe baseline) is deliberately excluded: every
#: scenario drives the library from several threads per rank, which is
#: exactly the usage the paper says requires thread support.
WORKLOAD_POLICIES: tuple[str, ...] = ("coarse", "fine")

#: waiting strategies (paper §3.3) by key
WAIT_FACTORIES: dict[str, Callable[[], WaitStrategy]] = {
    "busy": BusyWait,
    "pioman": PiomanBusyWait,
    "passive": PassiveWait,
    "fixed-spin": FixedSpinWait,
}

#: progression modes: who polls the network while threads compute
PROGRESSION_MODES: tuple[str, ...] = ("inline", "idle", "timer")

#: simulated-time ceiling per scenario run: generous (seconds of simulated
#: time) but finite, so a deadlocked mechanism combination fails loudly
#: instead of spinning the host forever
DEFAULT_MAX_TIME_NS = 30_000_000_000


class WorkloadError(RuntimeError):
    """A scenario failed to complete (deadlock, misconfiguration...)."""


@dataclass(frozen=True)
class Mechanism:
    """One (locking policy, waiting strategy, progression mode) triple."""

    policy: str
    waiting: str
    progression: str

    def __post_init__(self) -> None:
        if self.waiting not in WAIT_FACTORIES:
            raise ValueError(
                f"unknown waiting strategy {self.waiting!r}; "
                f"choose from {sorted(WAIT_FACTORIES)}"
            )
        if self.progression not in PROGRESSION_MODES:
            raise ValueError(
                f"unknown progression mode {self.progression!r}; "
                f"choose from {PROGRESSION_MODES}"
            )

    @property
    def key(self) -> str:
        return f"{self.policy}/{self.waiting}/{self.progression}"

    @classmethod
    def parse(cls, key: str) -> "Mechanism":
        parts = key.split("/")
        if len(parts) != 3:
            raise ValueError(
                f"mechanism key must be policy/waiting/progression, got {key!r}"
            )
        return cls(*parts)

    def valid(self) -> bool:
        """PIOMan-based strategies need PIOMan attached: the inline
        progression mode (nobody polls but the waiter itself) can only
        serve plain busy waiting."""
        if self.waiting in ("pioman", "passive", "fixed-spin"):
            return self.progression != "inline"
        return True

    def wait_factory(self) -> Callable[[], WaitStrategy]:
        return WAIT_FACTORIES[self.waiting]


def mechanism_grid(grid: str = "standard") -> list[Mechanism]:
    """The mechanism set a workload sweep measures.

    ``"standard"`` pairs each waiting strategy with its natural
    progression mode (busy → inline, the PIOMan strategies → idle loops)
    under every workload locking policy — the 8 combinations the paper's
    figures compare.  ``"full"`` is the whole valid cross product,
    including timer-interrupt progression and idle-loop polling behind
    plain busy waiting (18 combinations).
    """
    if grid == "standard":
        pairs = [
            ("busy", "inline"),
            ("pioman", "idle"),
            ("passive", "idle"),
            ("fixed-spin", "idle"),
        ]
        return [
            Mechanism(policy, waiting, progression)
            for policy in WORKLOAD_POLICIES
            for waiting, progression in pairs
        ]
    if grid == "full":
        mechs = [
            Mechanism(policy, waiting, progression)
            for policy, waiting, progression in itertools.product(
                WORKLOAD_POLICIES, sorted(WAIT_FACTORIES), PROGRESSION_MODES
            )
        ]
        return [m for m in mechs if m.valid()]
    raise ValueError(f"unknown mechanism grid {grid!r}; choose standard/full")


def build_workload_bed(
    mech: Mechanism,
    *,
    nodes: int,
    seed: int = 0,
    jitter_ns: int = 0,
) -> TestBed:
    """A testbed wired for ``mech``: locking policy on the library,
    PIOMan attached (idle loops, optionally timers) unless progression
    is inline."""
    if not mech.valid():
        raise WorkloadError(
            f"invalid mechanism {mech.key}: {mech.waiting} waiting needs "
            "a PIOMan (idle or timer progression)"
        )
    bed = build_testbed(
        nodes=nodes, policy=mech.policy, seed=seed, jitter_ns=jitter_ns
    )
    if mech.progression != "inline":
        for node in range(nodes):
            attach_pioman(
                bed.machine(node),
                [bed.lib(node)],
                timers=(mech.progression == "timer"),
            )
    return bed


@dataclass(frozen=True)
class WorkloadRun:
    """Outcome of one scenario execution under one mechanism."""

    makespan_us: float
    events_run: int
    results: list[Any]


def run_workload(
    mech_key: str,
    rank_fn: Callable[[Communicator], SimGen],
    *,
    nodes: int,
    seed: int = 0,
    thread_level: ThreadLevel = ThreadLevel.MULTIPLE,
    max_time_ns: int = DEFAULT_MAX_TIME_NS,
) -> WorkloadRun:
    """Run ``rank_fn`` on every rank of a fresh testbed under ``mech_key``.

    Each rank program runs as one simulated thread (it may spawn more, as
    the scenarios do) with the mechanism's wait strategy as the
    communicator default.  Returns the simulated makespan; raises
    :class:`WorkloadError` when the run hits ``max_time_ns`` without every
    rank finishing — a deadlocked mechanism must fail loudly, never hang.
    """
    mech = Mechanism.parse(mech_key)
    bed = build_workload_bed(mech, nodes=nodes, seed=seed)
    comms = create_world(
        bed, thread_level=thread_level, wait_factory=mech.wait_factory()
    )
    threads = [
        bed.machine(comm.rank).scheduler.spawn(
            rank_fn(comm), name=f"rank{comm.rank}", core=0, bound=True
        )
        for comm in comms
    ]
    try:
        bed.run(
            until=lambda: all(t.done for t in threads), max_time=max_time_ns
        )
    except SimTimeLimit:
        pass
    if not all(t.done for t in threads):
        stuck = [t.name for t in threads if not t.done]
        raise WorkloadError(
            f"workload did not complete under {mech_key} within "
            f"{max_time_ns} ns of simulated time; stuck ranks: {stuck}"
        )
    makespan_us = bed.engine.now / 1_000
    run = WorkloadRun(
        makespan_us=makespan_us,
        events_run=bed.engine.events_run,
        results=[t.result for t in threads],
    )
    bed.shutdown()
    return run


def spawn_joinable(
    machine,
    gens: Sequence[tuple[SimGen, str, int]],
) -> Callable[[], SimGen]:
    """Spawn helper threads and return a generator-joining function.

    ``gens`` is a list of ``(generator, name, core)``; the returned
    ``join()`` generator blocks (on a semaphore, so the core is released
    for idle-loop progression) until every spawned thread finished — the
    recurring spawn-compute-join shape of the scenarios.
    """
    from repro.sim.sync import Semaphore

    sem = Semaphore(machine, 0, name="join")
    threads = [
        machine.scheduler.spawn(gen, name=name, core=core, bound=True)
        for gen, name, core in gens
    ]
    for t in threads:
        t.on_finish(lambda _t: sem.post())

    def join() -> SimGen:
        for _ in threads:
            yield from sem.wait()

    return join
