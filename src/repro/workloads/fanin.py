"""Fan-in reduction workload (thread-count scaling).

All traffic converges on a root rank: every non-root rank runs ``T``
caller threads (the sweep axis, 1–16, all driving MPI concurrently under
``MPI_THREAD_MULTIPLE``), each sending a fixed number of partial-result
messages to the root; the root runs ``T`` matching reducer threads, each
draining its tag stream from every peer.  The incast pattern concentrates
lock and progression pressure on one node — the worst case for
coarse-grain locking, per the paper's Fig. 5 argument.
"""

from __future__ import annotations

from repro.madmpi import Communicator
from repro.sim.process import Delay, SimGen
from repro.workloads.base import run_workload, spawn_joinable
from repro.workloads.registry import Scenario, register

NODES = 4
ROOT = 0
#: messages each caller thread contributes
MESSAGES_PER_THREAD = 4
#: partial-result payload
MSG_BYTES = 512
#: simulated compute producing one partial result
COMPUTE_NS = 1_500


def _rank_program(comm: Communicator, threads: int) -> SimGen:
    machine = comm.lib.machine
    ncores = machine.ncores
    me = comm.rank
    peers = [r for r in range(comm.size) if r != ROOT]

    if me == ROOT:

        def reducer(thread: int) -> SimGen:
            pending = []
            for src in peers:
                for _ in range(MESSAGES_PER_THREAD):
                    req = yield from comm.Irecv(src, MSG_BYTES, tag=thread)
                    pending.append(req)
            yield from comm.Waitall(pending)
            # combining the partials costs compute on the root too
            yield Delay(COMPUTE_NS * len(pending) // 4, "compute")

        gens = [
            (reducer(t), f"fanin-root.{t}", t % ncores)
            for t in range(threads)
        ]
    else:

        def worker(thread: int) -> SimGen:
            for _ in range(MESSAGES_PER_THREAD):
                yield Delay(COMPUTE_NS, "compute")
                yield from comm.Send(ROOT, MSG_BYTES, tag=thread)

        gens = [
            (worker(t), f"fanin{me}.{t}", t % ncores)
            for t in range(threads)
        ]
    join = spawn_joinable(machine, gens)
    yield from join()


def fanin_point(mech_key: str, variant: str, seed: int, size: int) -> float:
    """Sweep point: makespan (us) with ``size`` caller threads per rank."""

    def rank_fn(comm: Communicator) -> SimGen:
        yield from _rank_program(comm, size)

    return run_workload(mech_key, rank_fn, nodes=NODES, seed=seed).makespan_us


register(
    Scenario(
        name="fanin",
        title="Fan-in reduction (concurrent caller threads)",
        description=(
            "3 leaf ranks send partial results to one root; T caller "
            "threads per rank (and T reducer threads on the root) drive "
            "MPI concurrently.  Axis: threads per rank, 1-16."
        ),
        axis="threads/rank",
        sizes=(1, 2, 4, 8, 16),
        quick_sizes=(1, 4),
        point=fanin_point,
    )
)
