"""``python -m repro.workloads`` — run workload scenarios, rank mechanisms.

Examples::

    python -m repro.workloads --list
    python -m repro.workloads --scenario stencil --quick
    python -m repro.workloads --scenario all --workers 8
    python -m repro.workloads --scenario bursty --trace wl.json --metrics

Every run emits one ``ResultSet`` per scenario into ``--out-dir``
(default ``results/workloads/``) as JSON *and* CSV, plus the mechanism
matrix report as ``matrix.txt``.  Runs are deterministic: the same
``--seed`` produces byte-identical JSON, with any ``--workers`` count.
"""

from __future__ import annotations

import argparse
import os

from repro.util.records import ResultSet
from repro.workloads import registry
from repro.workloads.matrix import (
    mechanism_matrix,
    missing_point_count,
    run_scenario,
)


def run_scenarios(
    names: list[str],
    *,
    quick: bool = False,
    seed: int = 0,
    workers: int | None = None,
    grid: str = "standard",
    cache: bool | None = None,
) -> dict[str, ResultSet]:
    """Measure the named scenarios; returns {name: ResultSet} in call
    order."""
    return {
        name: run_scenario(
            name, quick=quick, seed=seed, workers=workers, grid=grid,
            cache=cache,
        )
        for name in names
    }


def save_results(
    results_by_scenario: dict[str, ResultSet], report: str, out_dir: str
) -> list[str]:
    """Write per-scenario JSON + CSV and the matrix report; returns the
    written paths."""
    os.makedirs(out_dir, exist_ok=True)
    written = []
    for name, results in results_by_scenario.items():
        json_path = os.path.join(out_dir, f"{name}.json")
        csv_path = os.path.join(out_dir, f"{name}.csv")
        results.save(json_path)
        results.save_csv(csv_path)
        written += [json_path, csv_path]
    report_path = os.path.join(out_dir, "matrix.txt")
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write(report + "\n")
    written.append(report_path)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Application-level workload generator: run scenarios "
        "across the mechanism matrix (locking x waiting x progression)",
    )
    parser.add_argument(
        "--scenario",
        default="all",
        help="scenario name or 'all' (see --list); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument("--quick", action="store_true", help="reduced sweep")
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per sweep (default: $REPRO_BENCH_WORKERS or "
        "1); results are identical to a sequential run",
    )
    parser.add_argument(
        "--grid",
        choices=("standard", "full"),
        default="standard",
        help="mechanism grid: standard (8 combos) or full (every valid "
        "locking x waiting x progression combination)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental point cache (results/.cache/); "
        "equivalent to REPRO_BENCH_CACHE=0",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="export a Chrome trace-event JSON covering every scenario "
        "testbed (open at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the observability report (locks, core utilization, "
        "PIOMan, overhead decomposition) after the matrix",
    )
    parser.add_argument(
        "--out-dir",
        default=os.path.join("results", "workloads"),
        metavar="DIR",
        help="directory for ResultSet JSON/CSV and the matrix report "
        "(default: results/workloads)",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="do not write result files"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in registry.names():
            sc = registry.get(name)
            print(f"{name:12s} {sc.title}")
            print(f"{'':12s}   axis: {sc.axis}; sizes: {sc.sizes}")
        return 0

    names = registry.names() if args.scenario == "all" else [args.scenario]
    for name in names:
        registry.get(name)  # fail fast on typos, before any measuring

    from repro.bench import cache as point_cache
    from repro.bench import parallel
    from repro.bench.report import provenance_note

    cache = False if args.no_cache else None
    cache_before = point_cache.stats()
    pool_before = parallel.pool_stats()
    observation = None
    if args.trace is not None or args.metrics:
        from repro.obs import capture as obs_capture

        with obs_capture.observe(trace=args.trace is not None) as observation:
            results_by_scenario = run_scenarios(
                names, quick=args.quick, seed=args.seed,
                workers=args.workers, grid=args.grid, cache=cache,
            )
    else:
        results_by_scenario = run_scenarios(
            names, quick=args.quick, seed=args.seed,
            workers=args.workers, grid=args.grid, cache=cache,
        )

    report = mechanism_matrix(results_by_scenario)
    print(report)
    note = provenance_note(
        workers=args.workers,
        cache_delta=point_cache.stats().delta(cache_before),
        pool_delta=parallel.pool_stats_delta(pool_before),
    )
    if note:
        print(f"\n({note})")

    if observation is not None:
        extra_parts = []
        if args.metrics:
            extra_parts.append(observation.metrics_registry().report())
        if args.trace is not None:
            doc = observation.export_chrome(args.trace)
            extra_parts.append(
                f"trace: {len(doc['traceEvents'])} trace events "
                f"({observation.event_count()} scheduler events) -> "
                f"{args.trace}"
            )
        print("\n" + "\n\n".join(extra_parts))

    if not args.no_save:
        written = save_results(results_by_scenario, report, args.out_dir)
        print("\nwrote:")
        for path in written:
            print(f"  {path}")

    holes = missing_point_count(results_by_scenario)
    if holes:
        print(f"\n!! INCOMPLETE MATRIX: {holes} missing point(s)")
        return 1
    return 0
