"""Scenario sweeps and the mechanism matrix report.

:func:`run_scenario` measures one scenario over the whole mechanism grid
(every locking policy × waiting strategy × progression combination the
grid defines, times the scenario's variants) and returns a
:class:`~repro.util.records.ResultSet` whose ``config`` axis is the
mechanism label and whose ``size`` axis is the scenario's sweep axis.
Sweep points are independent (each builds a fresh testbed), so the grid
fans out across worker processes through :mod:`repro.bench.parallel`
with deterministically identical results.

:func:`mechanism_matrix` renders the cross-scenario report: one
figure-style table per scenario plus a per-scenario mechanism ranking
and an overall win count — the workload counterpart of
``python -m repro.bench.figures``.
"""

from __future__ import annotations

from functools import partial

from repro.bench.config import BenchConfig
from repro.bench.report import figure_table
from repro.bench.runner import run_sweep
from repro.util.records import ResultSet
from repro.workloads.base import Mechanism, mechanism_grid
from repro.workloads.registry import Scenario, get


def config_label(mech: Mechanism, variant: str) -> str:
    """The ResultSet config label of one (mechanism, variant) series."""
    return f"{mech.key} [{variant}]" if variant else mech.key


def _extra(axis: str, name: str, size: int) -> dict:
    """Per-record extras: the sweep-axis meaning (deterministic, computed
    parent-side so parallel and sequential runs serialize identically)."""
    return {"axis": axis}


def run_scenario(
    name: str,
    *,
    quick: bool = False,
    seed: int = 0,
    workers: int | None = None,
    grid: str = "standard",
    cache: bool | None = None,
) -> ResultSet:
    """Measure ``name`` across the mechanism grid; deterministic for a
    given seed (two runs serialize to byte-identical JSON, any worker
    count included — and whether points were computed or replayed from
    the incremental cache)."""
    sc = get(name)
    mechs = mechanism_grid(grid)
    configs = {
        config_label(mech, variant): partial(sc.point, mech.key, variant, seed)
        for mech in mechs
        for variant in sc.variants
    }
    cfg = BenchConfig(
        iterations=1,
        warmup=0,
        sizes=sc.sweep_sizes(quick),
        seed=seed,
        workers=workers,
        cache=cache,
    )
    return run_sweep(
        f"workload-{name}", configs, cfg, extra=partial(_extra, sc.axis)
    )


def rank_mechanisms(results: ResultSet) -> list[tuple[str, float]]:
    """Mechanism labels with their mean makespan (us) across the sweep
    axis, fastest first.  Ties break on the label for stable output."""
    means = []
    for config in results.configs():
        series = results.series(config)
        means.append((sum(v for _, v in series) / len(series), config))
    return [(config, mean) for mean, config in sorted(means)]


def ranking_block(results: ResultSet) -> str:
    """The per-scenario ranking rendered as report lines."""
    lines = ["mechanism ranking (mean makespan, us):"]
    ranked = rank_mechanisms(results)
    best = ranked[0][1]
    for i, (config, mean) in enumerate(ranked, start=1):
        slowdown = mean / best if best else float("inf")
        lines.append(f"  {i:2d}. {config:32s} {mean:12.1f}  ({slowdown:.2f}x)")
    return "\n".join(lines)


def scenario_report(sc: Scenario, results: ResultSet) -> str:
    """One scenario's section of the matrix report."""
    title = f"Workload: {sc.name} — {sc.title} (axis: {sc.axis})"
    return "\n".join([figure_table(results, title=title), "", ranking_block(results)])


def mechanism_matrix(results_by_scenario: dict[str, ResultSet]) -> str:
    """The full cross-scenario report text.

    Ends with the win table: how often each mechanism ranked first.
    Incomplete sweeps render loudly (``figure_table`` flags every hole).
    """
    parts = []
    wins: dict[str, int] = {}
    for name, results in results_by_scenario.items():
        sc = get(name)
        parts.append(scenario_report(sc, results))
        winner = rank_mechanisms(results)[0][0]
        # variants of one mechanism count for the mechanism itself
        mech = winner.split(" [", 1)[0]
        wins[mech] = wins.get(mech, 0) + 1
    if len(results_by_scenario) > 1:
        lines = ["mechanism wins across scenarios:"]
        for mech, count in sorted(wins.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {mech:32s} {count}")
        parts.append("\n".join(lines))
    return "\n\n".join(parts)


def missing_point_count(results_by_scenario: dict[str, ResultSet]) -> int:
    """Grid holes across every scenario (0 = every mechanism × size
    measured)."""
    return sum(
        len(results.missing_points())
        for results in results_by_scenario.values()
    )
