"""A miniature live NewMadeleine over real Python threads.

Same three-layer skeleton as :mod:`repro.core` — collect list, transmit,
receive-side matching with an unexpected queue — but running on actual
:mod:`threading` primitives over an in-process loopback link.  Its purpose
is ablation A3: measuring the *real* cost of the coarse/fine/no-locking
policies on the host, GIL and all, next to the calibrated simulation.

Only the eager protocol is implemented (sends complete at transmission);
the live engine is an instrument for lock-path costs, not a second full
library.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.rt.channel import LoopbackLink
from repro.rt.locks import RTLockingPolicy, make_rt_policy
from repro.rt.timing import now_ns


@dataclass
class RTMessage:
    """Wire unit of the live engine.

    ``seq`` is assigned by the sending :class:`RTLibrary` from its own
    per-library counter (not module state): a process-wide counter would
    make ``seq`` values depend on whatever ran earlier in the process,
    so repeated runs — or runs split across worker processes — could not
    be compared message-by-message.
    """

    tag: int
    size: int
    payload: Any = None
    seq: int = 0


class RTRequest:
    """Completion handle (Event-backed for passive waiting)."""

    def __init__(self, tag: int, size: int) -> None:
        self.tag = tag
        self.size = size
        self.payload: Any = None
        self._event = threading.Event()
        self.completed_at_ns: int | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def _complete(self, payload: Any) -> None:
        self.payload = payload
        self.completed_at_ns = now_ns()
        self._event.set()

    def wait_event(self, timeout_s: float | None = None) -> bool:
        return self._event.wait(timeout_s)


class RTLibrary:
    """One endpoint's library instance."""

    def __init__(
        self,
        link: LoopbackLink,
        endpoint: int,
        policy: str | RTLockingPolicy = "none",
    ) -> None:
        self.link = link
        self.endpoint = endpoint
        self.policy = make_rt_policy(policy) if isinstance(policy, str) else policy
        #: per-library send sequence — fresh for every endpoint, so seq
        #: values are reproducible run-to-run and across processes
        self._seq = itertools.count(1)
        self._collect: deque[RTMessage] = deque()
        self._posted: deque[RTRequest] = deque()
        self._unexpected: deque[RTMessage] = deque()
        self.sent = 0
        self.received = 0
        self.unexpected_hits = 0

    # -- send ------------------------------------------------------------------

    def isend(self, tag: int, size: int, payload: Any = None) -> RTRequest:
        """Submit and transmit (eager): one send-section entry, collect
        deposit, tx flush — the same lock points as the simulated library."""
        req = RTRequest(tag, size)
        with self.policy.send_section():
            with self.policy.collect_lock():
                self._collect.append(
                    RTMessage(tag, size, payload, seq=next(self._seq))
                )
            with self.policy.tx_lock():
                while self._collect:
                    msg = self._collect.popleft()
                    self.link.send(self.endpoint, msg)
                    self.sent += 1
        req._complete(payload)  # eager: locally complete at injection
        return req

    # -- receive -----------------------------------------------------------------

    def irecv(self, tag: int) -> RTRequest:
        req = RTRequest(tag, 0)
        with self.policy.rx_lock():
            for msg in list(self._unexpected):
                if msg.tag == tag:
                    self._unexpected.remove(msg)
                    self.unexpected_hits += 1
                    req.size = msg.size
                    req._complete(msg.payload)
                    return req
            self._posted.append(req)
        return req

    def progress(self) -> bool:
        """One pass: poll the link, match or stash.  Returns True on work."""
        with self.policy.rx_lock():
            msg = self.link.poll(self.endpoint)
            if msg is None:
                return False
            self.received += 1
            for req in self._posted:
                if req.tag == msg.tag:
                    self._posted.remove(req)
                    req.size = msg.size
                    req._complete(msg.payload)
                    return True
            self._unexpected.append(msg)
            return True

    # -- waiting -------------------------------------------------------------------

    def wait(self, req: RTRequest, *, mode: str = "busy", timeout_s: float = 30.0) -> None:
        """``busy``: drive progress; ``passive``: block on the event (a
        progression thread must exist); ``fixed``: spin briefly, then block."""
        if mode == "busy":
            import time

            deadline = now_ns() + int(timeout_s * 1e9)
            while not req.done:
                if not self.progress():
                    # yield the GIL between empty polls, or the peer's
                    # thread only runs every switch interval (~5 ms)
                    time.sleep(0)
                if now_ns() > deadline:
                    raise TimeoutError(f"wait timed out after {timeout_s}s")
            return
        if mode == "passive":
            if not req.wait_event(timeout_s):
                raise TimeoutError(f"wait timed out after {timeout_s}s")
            return
        if mode == "fixed":
            spin_deadline = now_ns() + 5_000  # the paper's 5 us window
            while now_ns() < spin_deadline:
                if req.done:
                    return
                self.progress()
            if not req.wait_event(timeout_s):
                raise TimeoutError(f"wait timed out after {timeout_s}s")
            return
        raise ValueError(f"unknown wait mode {mode!r}")


class ProgressionThread:
    """A background thread polling a library — live PIOMan."""

    def __init__(self, lib: RTLibrary, name: str = "rt-pioman") -> None:
        self.lib = lib
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self.passes = 0

    def start(self) -> "ProgressionThread":
        self._thread.start()
        return self

    def _run(self) -> None:
        import time

        while not self._stop.is_set():
            worked = self.lib.progress()
            self.passes += 1
            if not worked:
                time.sleep(0)  # yield the GIL between empty passes

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=10)
        if self._thread.is_alive():  # pragma: no cover - watchdog
            raise RuntimeError("progression thread failed to stop")


def build_rt_pair(
    policy: str = "none", *, wire_latency_ns: int = 0
) -> tuple[RTLibrary, RTLibrary]:
    """Two live libraries over one loopback link."""
    link = LoopbackLink(latency_ns=wire_latency_ns)
    return RTLibrary(link, 0, policy), RTLibrary(link, 1, policy)


def rt_pingpong(
    policy: str = "none",
    *,
    iterations: int = 200,
    size: int = 8,
    mode: str = "busy",
    wire_latency_ns: int = 0,
    warmup: int = 20,
) -> list[int]:
    """Live pingpong; returns steady-state per-iteration RTTs in ns.

    The echo side runs in a real thread; with ``mode="passive"`` each side
    also gets a progression thread, like PIOMan.
    """
    if iterations <= warmup:
        raise ValueError("iterations must exceed warmup")
    lib_a, lib_b = build_rt_pair(policy, wire_latency_ns=wire_latency_ns)
    stop = threading.Event()
    progressions: list[ProgressionThread] = []
    if mode in ("passive", "fixed"):
        progressions = [ProgressionThread(lib_a).start(), ProgressionThread(lib_b).start()]

    def echo() -> None:
        for i in range(iterations):
            if stop.is_set():
                return
            rreq = lib_b.irecv(tag=i)
            lib_b.wait(rreq, mode=mode)
            lib_b.isend(tag=i, size=size, payload=rreq.payload)

    echo_thread = threading.Thread(target=echo, name="rt-echo", daemon=True)
    echo_thread.start()
    rtts: list[int] = []
    try:
        for i in range(iterations):
            t0 = now_ns()
            rreq = lib_a.irecv(tag=i)
            lib_a.isend(tag=i, size=size, payload=i)
            lib_a.wait(rreq, mode=mode)
            rtts.append(now_ns() - t0)
    finally:
        stop.set()
        echo_thread.join(timeout=10)
        for p in progressions:
            p.stop()
    if echo_thread.is_alive():  # pragma: no cover - watchdog
        raise RuntimeError("echo thread failed to stop")
    return rtts[warmup:]


def rt_lock_overhead_ns(policy: str, *, cycles: int = 20_000) -> float:
    """Average cost of one send-path lock traversal (all points), live."""
    if cycles <= 0:
        raise ValueError("cycles must be > 0")
    pol = make_rt_policy(policy)
    t0 = now_ns()
    for _ in range(cycles):
        with pol.send_section():
            with pol.collect_lock():
                pass
            with pol.tx_lock():
                pass
        with pol.rx_lock():
            pass
    return (now_ns() - t0) / cycles


MeasureFn = Callable[[str], float]
