"""Live (real-thread) mini communication engine.

The simulated stack in :mod:`repro.core` reproduces the paper's numbers by
construction; this package lets the same locking-policy comparison run
*for real* on the host — Python threads, real locks, an in-process
loopback link — as ablation A3.  GIL caveats apply: absolute numbers are
Python's, but the relative lock-path costs are genuinely measured.
"""

from repro.rt.channel import LoopbackLink
from repro.rt.engine import (
    ProgressionThread,
    RTLibrary,
    RTMessage,
    RTRequest,
    build_rt_pair,
    rt_lock_overhead_ns,
    rt_pingpong,
)
from repro.rt.locks import (
    InstrumentedLock,
    NullRTLock,
    RTCoarseLocking,
    RTFineLocking,
    RTLockingPolicy,
    RTNoLocking,
    make_rt_policy,
)
from repro.rt.timing import now_ns, spin_until, time_call_ns, timer_overhead_ns

__all__ = [
    "LoopbackLink",
    "ProgressionThread",
    "RTLibrary",
    "RTMessage",
    "RTRequest",
    "build_rt_pair",
    "rt_lock_overhead_ns",
    "rt_pingpong",
    "InstrumentedLock",
    "NullRTLock",
    "RTCoarseLocking",
    "RTFineLocking",
    "RTLockingPolicy",
    "RTNoLocking",
    "make_rt_policy",
    "now_ns",
    "spin_until",
    "time_call_ns",
    "timer_overhead_ns",
]
