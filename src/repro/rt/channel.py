"""In-process loopback links for the live engine.

A :class:`LoopbackLink` is a pair of one-directional queues ("wires")
between two endpoints.  An optional emulated wire latency gates message
visibility: a message enqueued at *t* can be popped only after
*t + latency* — enough to exercise the same poll-until-arrival code path
as a real network without sockets (and deterministic under load).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.rt.timing import now_ns


class _Wire:
    """One direction: thread-safe timestamped FIFO."""

    def __init__(self, latency_ns: int) -> None:
        self.latency_ns = latency_ns
        self._items: deque[tuple[int, Any]] = deque()
        self._lock = threading.Lock()
        self.pushed = 0
        self.popped = 0

    def push(self, item: Any) -> None:
        with self._lock:
            self._items.append((now_ns() + self.latency_ns, item))
            self.pushed += 1

    def pop(self) -> Any | None:
        """The oldest *visible* message, or None."""
        with self._lock:
            if not self._items:
                return None
            ready_at, item = self._items[0]
            if now_ns() < ready_at:
                return None
            self._items.popleft()
            self.popped += 1
            return item

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._items)


class LoopbackLink:
    """Bidirectional link between endpoints 0 and 1."""

    def __init__(self, latency_ns: int = 0) -> None:
        if latency_ns < 0:
            raise ValueError("latency_ns must be >= 0")
        self._wires = (_Wire(latency_ns), _Wire(latency_ns))

    def send(self, from_endpoint: int, item: Any) -> None:
        """Push ``item`` toward the other endpoint."""
        self._check(from_endpoint)
        self._wires[from_endpoint].push(item)

    def poll(self, endpoint: int) -> Any | None:
        """Pop the oldest visible message addressed to ``endpoint``."""
        self._check(endpoint)
        return self._wires[1 - endpoint].pop()

    def pending(self, endpoint: int) -> int:
        self._check(endpoint)
        return self._wires[1 - endpoint].pending

    @staticmethod
    def _check(endpoint: int) -> None:
        if endpoint not in (0, 1):
            raise ValueError(f"endpoint must be 0 or 1, got {endpoint}")

    @property
    def traffic(self) -> int:
        return self._wires[0].pushed + self._wires[1].pushed
