"""Instrumented real locks and the three locking policies, live.

Mirrors :mod:`repro.core.locking` with actual :class:`threading.Lock`
objects so the paper's coarse/fine/no-locking comparison can also be run
on the host machine (GIL-bound, but the relative ordering of lock-path
costs is measurable).
"""

from __future__ import annotations

import threading


class InstrumentedLock:
    """A real lock that counts acquisitions and contentions."""

    is_null = False

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self._lock = threading.Lock()
        self.acquisitions = 0
        self.contentions = 0

    def acquire(self) -> None:
        # try-fast-path first so contention is observable
        if not self._lock.acquire(blocking=False):
            self.contentions += 1
            self._lock.acquire()
        self.acquisitions += 1

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self.name!r} acq={self.acquisitions}>"


class NullRTLock:
    """The no-locking baseline: context-manager compatible, free."""

    is_null = True

    def __init__(self, name: str = "null") -> None:
        self.name = name
        self.acquisitions = 0
        self.contentions = 0

    def acquire(self) -> None:
        return None

    def release(self) -> None:
        return None

    def __enter__(self) -> "NullRTLock":
        return self

    def __exit__(self, *exc) -> None:
        return None


class RTLockingPolicy:
    """Live equivalent of :class:`repro.core.locking.LockingPolicy`."""

    name = "abstract"

    def send_section(self):
        raise NotImplementedError

    def collect_lock(self):
        raise NotImplementedError

    def tx_lock(self):
        raise NotImplementedError

    def rx_lock(self):
        raise NotImplementedError

    def lock_objects(self) -> list:
        raise NotImplementedError


class RTNoLocking(RTLockingPolicy):
    name = "none"

    def __init__(self) -> None:
        self._null = NullRTLock()

    def send_section(self):
        return self._null

    def collect_lock(self):
        return self._null

    def tx_lock(self):
        return self._null

    def rx_lock(self):
        return self._null

    def lock_objects(self) -> list:
        return []


class RTCoarseLocking(RTLockingPolicy):
    """One library-wide lock; inner points covered."""

    name = "coarse"

    def __init__(self) -> None:
        self.library_lock = InstrumentedLock("rt-library")
        self._null = NullRTLock("covered")

    def send_section(self):
        return self.library_lock

    def collect_lock(self):
        return self._null

    def tx_lock(self):
        return self._null

    def rx_lock(self):
        return self.library_lock

    def lock_objects(self) -> list:
        return [self.library_lock]


class RTFineLocking(RTLockingPolicy):
    """Separate collect/tx/rx locks."""

    name = "fine"

    def __init__(self) -> None:
        self._collect = InstrumentedLock("rt-collect")
        self._tx = InstrumentedLock("rt-tx")
        self._rx = InstrumentedLock("rt-rx")
        self._null = NullRTLock("no-outer")

    def send_section(self):
        return self._null

    def collect_lock(self):
        return self._collect

    def tx_lock(self):
        return self._tx

    def rx_lock(self):
        return self._rx

    def lock_objects(self) -> list:
        return [self._collect, self._tx, self._rx]


def make_rt_policy(name: str) -> RTLockingPolicy:
    if name == "none":
        return RTNoLocking()
    if name == "coarse":
        return RTCoarseLocking()
    if name == "fine":
        return RTFineLocking()
    raise ValueError(f"unknown policy {name!r}; choose none/coarse/fine")
