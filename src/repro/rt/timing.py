"""Wall-clock timing helpers for the live (real-thread) engine.

Everything here uses ``time.perf_counter_ns``; the measurement loop
follows the guide's advice — measure, don't guess — and reports the timer
overhead so callers can judge resolution.
"""

from __future__ import annotations

import time
from typing import Callable


def now_ns() -> int:
    return time.perf_counter_ns()


def timer_overhead_ns(samples: int = 1000) -> float:
    """Median cost of one timestamp pair (the measurement floor)."""
    if samples <= 0:
        raise ValueError("samples must be > 0")
    costs = []
    for _ in range(samples):
        t0 = time.perf_counter_ns()
        t1 = time.perf_counter_ns()
        costs.append(t1 - t0)
    costs.sort()
    return float(costs[len(costs) // 2])


def time_call_ns(fn: Callable[[], None], repeats: int = 100) -> list[int]:
    """Per-call wall-clock samples of ``fn`` (ns)."""
    if repeats <= 0:
        raise ValueError("repeats must be > 0")
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - t0)
    return samples


def spin_until(predicate: Callable[[], bool], timeout_s: float = 10.0) -> bool:
    """Busy-wait (with GIL-release hints) until ``predicate`` or timeout."""
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0)  # yield the GIL
    return True
