"""Benchmark analysis: statistics, constant-overhead extraction, and the
competitive analysis of spin-then-block waiting."""

from repro.analysis.competitive import (
    EmpiricalEvaluation,
    balance_threshold_ns,
    best_threshold,
    competitive_ratio,
    evaluate_threshold,
    offline_optimum_ns,
    strategy_cost_ns,
    worst_case_ratio,
)
from repro.analysis.decompose import Decomposition, decompose_message, decomposition_table
from repro.analysis.fit import OffsetFit, constant_offset, offset_flatness, ratio_series
from repro.analysis.stats import (
    Summary,
    confidence_interval_95,
    speedup,
    summarize,
    trimmed_mean,
)

__all__ = [
    "EmpiricalEvaluation",
    "balance_threshold_ns",
    "best_threshold",
    "competitive_ratio",
    "evaluate_threshold",
    "offline_optimum_ns",
    "strategy_cost_ns",
    "worst_case_ratio",
    "Decomposition",
    "decompose_message",
    "decomposition_table",
    "OffsetFit",
    "constant_offset",
    "offset_flatness",
    "ratio_series",
    "Summary",
    "confidence_interval_95",
    "speedup",
    "summarize",
    "trimmed_mean",
]
