"""Competitive analysis of spin-then-block waiting (Karlin et al. 1991).

The paper's §3.3 bases its fixed-spin waiting on "a fixed spin algorithm
[7] that mixes active and passive waiting".  The underlying theory: when a
thread waits for an event of unknown arrival time and a context switch
costs *C*,

* spinning exactly *C* before blocking is **2-competitive**: its cost is
  at most twice the offline optimum (which knows the arrival time) for
  every arrival time;
* no deterministic online strategy does better than 2-competitive.

This module provides the cost model, the bound, and empirical evaluation
against arrival samples, so the simulator's measured behaviour (E9) can be
checked against the theory it implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def strategy_cost_ns(spin_ns: int, arrival_ns: int, switch_cost_ns: int) -> int:
    """Cost a spin-then-block strategy pays for one wait.

    Spin up to ``spin_ns``; if the event arrived by then the cost is the
    time spun (CPU burnt); otherwise the thread blocks and additionally
    pays the context-switch round trip on top of the spin it wasted.
    """
    if spin_ns < 0 or arrival_ns < 0 or switch_cost_ns < 0:
        raise ValueError("times must be >= 0")
    if arrival_ns <= spin_ns:
        return arrival_ns
    return spin_ns + switch_cost_ns


def offline_optimum_ns(arrival_ns: int, switch_cost_ns: int) -> int:
    """Cost of the clairvoyant strategy: spin if the event is near,
    block immediately otherwise."""
    if arrival_ns < 0 or switch_cost_ns < 0:
        raise ValueError("times must be >= 0")
    return min(arrival_ns, switch_cost_ns)


def competitive_ratio(spin_ns: int, arrival_ns: int, switch_cost_ns: int) -> float:
    """Cost ratio of the online strategy over the offline optimum."""
    opt = offline_optimum_ns(arrival_ns, switch_cost_ns)
    cost = strategy_cost_ns(spin_ns, arrival_ns, switch_cost_ns)
    if opt == 0:
        return 1.0 if cost == 0 else float("inf")
    return cost / opt


def worst_case_ratio(spin_ns: int, switch_cost_ns: int) -> float:
    """Worst competitive ratio of a spin threshold over all arrival times.

    The adversary's best move is an arrival just after the spin window
    (forcing spin + switch) or, for windows beyond the switch cost, it is
    bounded by the spin wasted relative to an immediate block.
    """
    if switch_cost_ns <= 0:
        raise ValueError("switch_cost_ns must be > 0")
    if spin_ns < 0:
        raise ValueError("spin_ns must be >= 0")
    # arrival epsilon after the window: cost = spin + C; optimum:
    #   min(arrival, C) -> for spin < C, optimum = arrival ~= spin is not
    #   worst; adversary picks arrival -> infinity? cost fixed spin+C,
    #   optimum saturates at C  =>  ratio (spin + C) / min(spin_eps, C)
    # the classic worst cases:
    just_after = (spin_ns + switch_cost_ns) / max(min(spin_ns, switch_cost_ns), 1)
    at_infinity = (spin_ns + switch_cost_ns) / switch_cost_ns
    return max(just_after, at_infinity)


def balance_threshold_ns(switch_cost_ns: int) -> int:
    """Karlin's 2-competitive threshold: spin exactly the switch cost."""
    if switch_cost_ns <= 0:
        raise ValueError("switch_cost_ns must be > 0")
    return switch_cost_ns


@dataclass(frozen=True)
class EmpiricalEvaluation:
    """Aggregate cost of a threshold over a sample of arrival times."""

    spin_ns: int
    switch_cost_ns: int
    mean_cost_ns: float
    mean_optimum_ns: float
    empirical_ratio: float
    nsamples: int


def evaluate_threshold(
    spin_ns: int,
    arrivals_ns: Sequence[int],
    switch_cost_ns: int,
) -> EmpiricalEvaluation:
    """Average the strategy/optimum costs over measured arrival times."""
    if not arrivals_ns:
        raise ValueError("need at least one arrival sample")
    costs = [strategy_cost_ns(spin_ns, a, switch_cost_ns) for a in arrivals_ns]
    opts = [offline_optimum_ns(a, switch_cost_ns) for a in arrivals_ns]
    mean_cost = sum(costs) / len(costs)
    mean_opt = sum(opts) / len(opts)
    ratio = mean_cost / mean_opt if mean_opt > 0 else 1.0
    return EmpiricalEvaluation(
        spin_ns=spin_ns,
        switch_cost_ns=switch_cost_ns,
        mean_cost_ns=mean_cost,
        mean_optimum_ns=mean_opt,
        empirical_ratio=ratio,
        nsamples=len(arrivals_ns),
    )


def best_threshold(
    arrivals_ns: Sequence[int],
    switch_cost_ns: int,
    candidates_ns: Sequence[int] | None = None,
) -> int:
    """Offline-tuned threshold: the candidate with the lowest mean cost.

    With no candidate list, the distinct arrival values plus 0 and the
    switch cost are tried (the optimum always lies on one of these)."""
    if candidates_ns is None:
        candidates_ns = sorted({0, switch_cost_ns, *arrivals_ns})
    best, best_cost = None, None
    for cand in candidates_ns:
        ev = evaluate_threshold(cand, arrivals_ns, switch_cost_ns)
        if best_cost is None or ev.mean_cost_ns < best_cost:
            best, best_cost = cand, ev.mean_cost_ns
    assert best is not None
    return best
