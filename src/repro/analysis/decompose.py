"""Latency decomposition: where one message's nanoseconds go.

The paper's method statement: "we aim at decomposing each step of thread
support and we analyze precisely the cost and the benefits of each part"
(§1).  This module runs one instrumented message through a testbed and
splits its one-way latency into the stages the request timeline records:

* **submit** — ``nm_isend`` entry to NIC injection (collect + optimizer +
  locks + host send overheads);
* **transit** — injection to rx-DMA completion at the receiving NIC
  (NIC engine occupancy + wire + rx gap);
* **detection** — DMA completion to the receiver's matching (polling
  quantisation + poll cost + locks);
* **delivery** — matching to receive-request completion (payload
  bookkeeping, completion firing).

Comparing decompositions across locking policies shows exactly which stage
each policy taxes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.session import TestBed, build_testbed
from repro.core.waiting import BusyWait
from repro.util.tables import render_table

STAGES = ("submit", "transit", "detection", "delivery")


@dataclass(frozen=True)
class Decomposition:
    """One message's stage breakdown (ns)."""

    policy: str
    size: int
    submit: int
    transit: int
    detection: int
    delivery: int

    @property
    def total(self) -> int:
        return self.submit + self.transit + self.detection + self.delivery

    def as_row(self) -> list:
        return [
            self.policy,
            self.submit,
            self.transit,
            self.detection,
            self.delivery,
            self.total,
        ]


def decompose_message(
    policy: str = "none",
    size: int = 8,
    *,
    bed: TestBed | None = None,
    warmup_messages: int = 2,
) -> Decomposition:
    """Send one message 0→1 (after warmup) and decompose its latency."""
    bed = bed or build_testbed(policy=policy)
    state: dict = {}
    total = warmup_messages + 1

    def sender():
        lib = bed.lib(0)
        for i in range(total):
            req = yield from lib.isend(1, 30 + i, size)
            yield from lib.wait(req, BusyWait())
            state[f"send{i}"] = req

    def receiver():
        lib = bed.lib(1)
        for i in range(total):
            req = yield from lib.irecv(0, 30 + i, size)
            yield from lib.wait(req, BusyWait())
            state[f"recv{i}"] = req

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0, bound=True)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0, bound=True)
    bed.run(until=lambda: ts.done and tr.done)

    sreq = state[f"send{warmup_messages}"]
    rreq = state[f"recv{warmup_messages}"]
    t = {**sreq.timeline, **{f"rx_{k}": v for k, v in rreq.timeline.items()}}
    for needed in ("submitted", "injected", "rx_arrived", "rx_matched", "rx_completed"):
        if needed not in t:
            raise RuntimeError(f"timeline missing {needed!r}: {t}")
    return Decomposition(
        policy=policy,
        size=size,
        submit=t["injected"] - t["submitted"],
        transit=t["rx_arrived"] - t["injected"],
        detection=t["rx_matched"] - t["rx_arrived"],
        delivery=t["rx_completed"] - t["rx_matched"],
    )


def decomposition_table(size: int = 8, policies=("none", "coarse", "fine")) -> str:
    """Figure-style table: stage costs per policy for one message size."""
    rows = [decompose_message(policy, size).as_row() for policy in policies]
    return render_table(
        ["policy", "submit", "transit", "detection", "delivery", "total"],
        rows,
        title=f"One-way latency decomposition, {size} B message (ns)",
    )
