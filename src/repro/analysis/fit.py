"""Curve comparison: extracting the paper's constant overheads.

The paper's analysis style is "curve B sits a constant N nanoseconds above
curve A, independent of message size".  :func:`constant_offset` recovers
that constant from two measured series, and :func:`offset_flatness`
quantifies how constant it really is (Fig. 3's "no impact on bandwidth"
claim is equivalent to a flat offset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class OffsetFit:
    """Result of comparing two latency series."""

    offset_ns: float
    min_ns: float
    max_ns: float
    spread_ns: float
    npoints: int

    @property
    def is_constant(self) -> bool:
        """Heuristic flatness check: spread within 20 % of the offset or
        under 100 ns, whichever is looser."""
        return self.spread_ns <= max(abs(self.offset_ns) * 0.4, 100.0)


def _paired(
    base: Sequence[tuple[int, float]], other: Sequence[tuple[int, float]]
) -> tuple[np.ndarray, np.ndarray]:
    base_map = dict(base)
    other_map = dict(other)
    sizes = sorted(set(base_map) & set(other_map))
    if not sizes:
        raise ValueError("series share no sizes")
    return (
        np.array([base_map[s] for s in sizes], dtype=float),
        np.array([other_map[s] for s in sizes], dtype=float),
    )


def constant_offset(
    base: Sequence[tuple[int, float]],
    other: Sequence[tuple[int, float]],
) -> OffsetFit:
    """Median per-size difference ``other - base`` over shared sizes.

    Series are ``(size, latency)`` pairs in any order; latencies may be in
    any unit (the offset comes back in the same unit).
    """
    b, o = _paired(base, other)
    diffs = o - b
    return OffsetFit(
        offset_ns=float(np.median(diffs)),
        min_ns=float(diffs.min()),
        max_ns=float(diffs.max()),
        spread_ns=float(diffs.max() - diffs.min()),
        npoints=diffs.size,
    )


def offset_flatness(fit: OffsetFit) -> float:
    """Spread-to-offset ratio; ~0 for a perfectly constant overhead."""
    if fit.offset_ns == 0:
        return float("inf") if fit.spread_ns else 0.0
    return fit.spread_ns / abs(fit.offset_ns)


def ratio_series(
    base: Sequence[tuple[int, float]],
    other: Sequence[tuple[int, float]],
) -> list[tuple[int, float]]:
    """Per-size ``other / base`` ratios (for the Fig. 5 '2x' claim)."""
    base_map = dict(base)
    other_map = dict(other)
    sizes = sorted(set(base_map) & set(other_map))
    if not sizes:
        raise ValueError("series share no sizes")
    out = []
    for s in sizes:
        if base_map[s] <= 0:
            raise ValueError(f"non-positive baseline at size {s}")
        out.append((s, other_map[s] / base_map[s]))
    return out
