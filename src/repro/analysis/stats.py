"""Summary statistics for benchmark samples.

The simulator is deterministic by default, so most samples are degenerate;
these helpers exist for jitter-enabled runs and for the real-thread engine
(:mod:`repro.rt`), whose timings are genuinely noisy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one sample."""

    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.3f} median={self.median:.3f} "
            f"std={self.std:.3f} min={self.minimum:.3f} max={self.maximum:.3f} "
            f"p95={self.p95:.3f}"
        )


def summarize(sample: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; rejects empty samples loudly."""
    if len(sample) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(sample, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError("sample contains non-finite values")
    return Summary(
        n=arr.size,
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p95=float(np.percentile(arr, 95)),
    )


def trimmed_mean(sample: Sequence[float], trim: float = 0.1) -> float:
    """Mean after dropping the ``trim`` fraction at each tail (robust to
    warmup stragglers in rt measurements)."""
    if not 0 <= trim < 0.5:
        raise ValueError("trim must be in [0, 0.5)")
    if len(sample) == 0:
        raise ValueError("cannot average an empty sample")
    arr = np.sort(np.asarray(sample, dtype=float))
    k = int(math.floor(arr.size * trim))
    kept = arr[k : arr.size - k] if arr.size - 2 * k > 0 else arr
    return float(kept.mean())


def confidence_interval_95(sample: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95 % CI of the mean."""
    s = summarize(sample)
    if s.n < 2:
        return (s.mean, s.mean)
    half = 1.96 * s.std / math.sqrt(s.n)
    return (s.mean - half, s.mean + half)


def speedup(baseline: float, improved: float) -> float:
    """baseline/improved; >1 means ``improved`` is faster."""
    if improved <= 0:
        raise ValueError("improved time must be > 0")
    return baseline / improved
