"""Optimization-layer scheduling strategies.

NewMadeleine's optimization layer "applies dynamic scheduling optimizations
on multiple communication flows such as packet reordering, coalescing,
multirail distribution" (paper §2).  A :class:`Strategy` decides, each time
a NIC becomes idle, how to turn the collect layer's pending messages into
packets:

* :class:`DefaultStrategy` — one message per packet, first rail;
* :class:`AggregatingStrategy` — coalesces several small eager messages to
  the same peer into one packet (ablation A1);
* :class:`MultirailStrategy` — splits large rendezvous payloads across all
  rails to a peer (ablation A2);
* :class:`FullStrategy` — aggregation + multirail combined.

Strategies only *assemble*; the library pushes the returned packets through
the transfer layer under the policy's locks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.packets import Chunk, Packet, data_packet, rts_packet
from repro.core.requests import ReqState, SendRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import NewMadeleine
    from repro.net.drivers.base import Driver

Plan = list[tuple["Driver", Packet]]


class Strategy:
    """Packet assembly policy of the optimization layer."""

    name: str = "abstract"

    def assemble(self, lib: "NewMadeleine", peer: int, rails: list["Driver"]) -> Plan:
        """Pop pending sends for ``peer`` from the collect layer and build
        packets for idle rails.  May return an empty plan (nothing pending,
        or no rail idle)."""
        raise NotImplementedError

    def make_rdv_data(
        self, lib: "NewMadeleine", req: SendRequest, rails: list["Driver"]
    ) -> Plan:
        """Build the zero-copy data packet(s) of a rendezvous send whose CTS
        arrived."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    @staticmethod
    def _full_chunk(lib: "NewMadeleine", req: SendRequest) -> Chunk:
        return Chunk(
            src_node=lib.node_id,
            send_req_id=req.req_id,
            tag=req.tag,
            msg_size=req.size,
            offset=0,
            length=req.size,
            payload=req.payload,
        )

    @staticmethod
    def _eager_packet(lib: "NewMadeleine", peer: int, reqs: list[SendRequest]) -> Packet:
        chunks = tuple(Strategy._full_chunk(lib, r) for r in reqs)
        return data_packet(
            lib.node_id, peer, chunks, header_bytes=lib.costs.header_bytes, eager=True
        )

    @staticmethod
    def _rts(lib: "NewMadeleine", req: SendRequest) -> Packet:
        req.state = ReqState.RTS_SENT
        return rts_packet(
            lib.node_id,
            req.peer,
            req.req_id,
            req.tag,
            req.size,
            header_bytes=lib.costs.header_bytes,
        )

    def __repr__(self) -> str:
        return f"<Strategy {self.name}>"


class DefaultStrategy(Strategy):
    """One packet per message on the peer's primary rail; no reshaping.

    Eager data and rendezvous announcements always use the *primary* rail
    (rails[0]): a flow's small messages and control packets must stay on
    one FIFO path or they could overtake each other across rails and break
    MPI's non-overtaking guarantee.  Only rendezvous *payload* chunks (which
    carry offsets and need no ordering) may spread over other rails.
    """

    name = "default"

    def assemble(self, lib: "NewMadeleine", peer: int, rails: list["Driver"]) -> Plan:
        rail = rails[0]
        if not rail.tx_idle:
            return []  # NIC-driven: wait for the primary rail
        plan: Plan = []
        while lib.collect.pending(peer):
            req = lib.collect.pop(peer)
            if req.eager:
                plan.append((rail, self._eager_packet(lib, peer, [req])))
            else:
                plan.append((rail, self._rts(lib, req)))
        return plan

    def make_rdv_data(
        self, lib: "NewMadeleine", req: SendRequest, rails: list["Driver"]
    ) -> Plan:
        packet = data_packet(
            lib.node_id,
            req.peer,
            (self._full_chunk(lib, req),),
            header_bytes=lib.costs.header_bytes,
            eager=False,
        )
        return [(rails[0], packet)]


class AggregatingStrategy(DefaultStrategy):
    """Coalesce small eager messages to the same peer into one packet.

    Aggregation triggers when several sends accumulated while the NIC was
    busy — exactly the situation the collect layer exists for.  Messages
    join the aggregate while the packet payload stays under
    ``max_bytes`` (default: the cost model's ``aggregation_max_bytes``).
    """

    name = "aggregating"

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self.max_bytes = max_bytes
        self.aggregated_messages = 0
        self.aggregate_packets = 0

    def assemble(self, lib: "NewMadeleine", peer: int, rails: list["Driver"]) -> Plan:
        rail = rails[0]  # primary rail only: see DefaultStrategy.assemble
        if not rail.tx_idle:
            return []
        limit = self.max_bytes if self.max_bytes is not None else lib.costs.aggregation_max_bytes
        plan: Plan = []
        batch: list[SendRequest] = []
        batch_bytes = 0

        def flush_batch() -> None:
            nonlocal batch, batch_bytes
            if batch:
                if len(batch) > 1:
                    self.aggregated_messages += len(batch)
                    self.aggregate_packets += 1
                plan.append((rail, self._eager_packet(lib, peer, batch)))
                batch = []
                batch_bytes = 0

        while lib.collect.pending(peer):
            head = lib.collect.peek(peer)
            if not head.eager:
                flush_batch()
                plan.append((rail, self._rts(lib, lib.collect.pop(peer))))
                continue
            if batch and batch_bytes + head.size > limit:
                flush_batch()
            lib.collect.pop(peer)
            batch.append(head)
            batch_bytes += head.size
        flush_batch()
        return plan


class MultirailStrategy(DefaultStrategy):
    """Split rendezvous payloads across every rail to the peer.

    Small (eager) traffic keeps using the first rail: splitting tiny
    messages costs more in per-packet overhead than it gains.
    ``min_split_bytes`` guards against splitting payloads too small to
    amortise a second rail.
    """

    name = "multirail"

    def __init__(self, min_split_bytes: int = 8_192) -> None:
        if min_split_bytes < 2:
            raise ValueError("min_split_bytes must be >= 2")
        self.min_split_bytes = min_split_bytes
        self.split_messages = 0

    def make_rdv_data(
        self, lib: "NewMadeleine", req: SendRequest, rails: list["Driver"]
    ) -> Plan:
        nrails = len(rails)
        if nrails == 1 or req.size < self.min_split_bytes:
            return super().make_rdv_data(lib, req, rails)
        self.split_messages += 1
        base = req.size // nrails
        plan: Plan = []
        offset = 0
        for i, rail in enumerate(rails):
            length = base if i < nrails - 1 else req.size - offset
            chunk = Chunk(
                src_node=lib.node_id,
                send_req_id=req.req_id,
                tag=req.tag,
                msg_size=req.size,
                offset=offset,
                length=length,
                payload=req.payload if offset == 0 else None,
            )
            plan.append(
                (
                    rail,
                    data_packet(
                        lib.node_id,
                        req.peer,
                        (chunk,),
                        header_bytes=lib.costs.header_bytes,
                        eager=False,
                    ),
                )
            )
            offset += length
        return plan


class WeightedMultirailStrategy(MultirailStrategy):
    """Multirail splitting proportional to each rail's wire bandwidth.

    NewMadeleine's multirail distribution supports *heterogeneous* rails
    (e.g. one Myri-10G port plus one InfiniBand port); splitting a message
    evenly would finish when the slow rail does.  Weighting each chunk by
    the rail's byte rate makes all rails finish together, which is what
    minimises the transfer time.
    """

    name = "weighted-multirail"

    def make_rdv_data(
        self, lib: "NewMadeleine", req: SendRequest, rails: list["Driver"]
    ) -> Plan:
        nrails = len(rails)
        if nrails == 1 or req.size < self.min_split_bytes:
            return DefaultStrategy.make_rdv_data(self, lib, req, rails)
        self.split_messages += 1
        # weight by byte rate: 1 / ns_per_byte
        rates = [1.0 / max(rail.model.ns_per_byte, 1e-9) for rail in rails]
        total_rate = sum(rates)
        plan: Plan = []
        offset = 0
        for i, rail in enumerate(rails):
            if i < nrails - 1:
                length = int(req.size * rates[i] / total_rate)
            else:
                length = req.size - offset
            if length <= 0:
                continue
            chunk = Chunk(
                src_node=lib.node_id,
                send_req_id=req.req_id,
                tag=req.tag,
                msg_size=req.size,
                offset=offset,
                length=length,
                payload=req.payload if offset == 0 else None,
            )
            plan.append(
                (
                    rail,
                    data_packet(
                        lib.node_id,
                        req.peer,
                        (chunk,),
                        header_bytes=lib.costs.header_bytes,
                        eager=False,
                    ),
                )
            )
            offset += length
        return plan


class FullStrategy(AggregatingStrategy):
    """Aggregation for small messages + multirail for large ones."""

    name = "full"

    def __init__(
        self, max_bytes: int | None = None, min_split_bytes: int = 8_192
    ) -> None:
        super().__init__(max_bytes)
        self._multirail = MultirailStrategy(min_split_bytes)

    @property
    def split_messages(self) -> int:
        return self._multirail.split_messages

    def make_rdv_data(
        self, lib: "NewMadeleine", req: SendRequest, rails: list["Driver"]
    ) -> Plan:
        return self._multirail.make_rdv_data(lib, req, rails)
