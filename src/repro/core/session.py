"""Testbed assembly: build connected multi-node sessions in one call.

Mirrors the paper's experimental setup — "a set of quad-core 3.16 GHz Xeon
X5460 boxes ... interconnected through Myricom Myri-10G NICs" — as a
:class:`TestBed` value object: one shared engine, one machine + library per
node, point-to-point rails between every node pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Type

from repro.core.costmodel import CostModel
from repro.core.library import NewMadeleine
from repro.core.strategies import DefaultStrategy, Strategy
from repro.net.drivers.base import Driver
from repro.net.drivers.mx import MXDriver
from repro.net.fabric import Fabric, wire_pair
from repro.obs import capture as obs_capture
from repro.sim.costs import SimCosts
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.rng import RngHub
from repro.sim.topology import CacheTopology, quad_xeon_x5460


@dataclass
class TestBed:
    """A fully-wired simulated cluster."""

    engine: Engine
    fabric: Fabric
    machines: list[Machine]
    libs: list[NewMadeleine]
    costs: CostModel
    drivers: dict[tuple[int, int], list[Driver]] = field(default_factory=dict)

    def lib(self, node: int) -> NewMadeleine:
        return self.libs[node]

    def machine(self, node: int) -> Machine:
        return self.machines[node]

    def run(self, until: Callable[[], bool], *, max_time: int | None = None) -> None:
        """Run the engine, then surface any simulated-thread failure."""
        try:
            self.engine.run(until=until, max_time=max_time)
        finally:
            for machine in self.machines:
                machine.check_failures()

    def shutdown(self) -> None:
        for machine in self.machines:
            machine.shutdown()


def add_rail_pair(
    bed: TestBed,
    node_a: int,
    node_b: int,
    driver_cls: Type[Driver],
    *,
    name: str | None = None,
) -> tuple[Driver, Driver]:
    """Wire an extra (possibly heterogeneous) rail between two nodes of an
    existing testbed — e.g. adding an InfiniBand port next to the MX one,
    the multirail scenario NewMadeleine's optimization layer targets."""
    if node_a == node_b:
        raise ValueError("need two distinct nodes")
    if name is None:
        existing = len(bed.drivers.get((node_a, node_b), []))
        name = f"{driver_cls.__name__.lower()}-{node_a}{node_b}x{existing}"
    drv_a, drv_b = wire_pair(
        bed.fabric, bed.machine(node_a), bed.machine(node_b), driver_cls, name=name
    )
    bed.lib(node_a).add_rail(node_b, drv_a)
    bed.lib(node_b).add_rail(node_a, drv_b)
    bed.drivers.setdefault((node_a, node_b), []).append(drv_a)
    bed.drivers.setdefault((node_b, node_a), []).append(drv_b)
    return drv_a, drv_b


def build_testbed(
    *,
    nodes: int = 2,
    policy: str = "none",
    topology_factory: Callable[[], CacheTopology] = quad_xeon_x5460,
    driver_cls: Type[Driver] = MXDriver,
    rails: int = 1,
    costs: CostModel | None = None,
    strategy_factory: Callable[[], Strategy] = DefaultStrategy,
    sim_costs: SimCosts | None = None,
    seed: int = 0,
    jitter_ns: int = 0,
) -> TestBed:
    """Create ``nodes`` machines, fully connected with ``rails`` rails per
    pair, each running a :class:`NewMadeleine` with the given policy.

    Every library gets its *own* strategy instance (strategies carry
    statistics), hence the factory.
    """
    if nodes < 2:
        raise ValueError("a testbed needs at least 2 nodes")
    if rails < 1:
        raise ValueError("rails must be >= 1")
    costs = costs or (CostModel(sim=sim_costs) if sim_costs else CostModel())
    engine = Engine()
    fabric = Fabric()
    rng = RngHub(seed)
    machines = [
        Machine(
            engine,
            topology_factory(),
            costs=costs.sim,
            name=f"node{chr(ord('A') + i)}",
            rng=rng,
            jitter_ns=jitter_ns,
        )
        for i in range(nodes)
    ]
    per_node_drivers: dict[int, list[Driver]] = {i: [] for i in range(nodes)}
    pair_drivers: dict[tuple[int, int], list[Driver]] = {}
    for a in range(nodes):
        for b in range(a + 1, nodes):
            for r in range(rails):
                name = f"{driver_cls.__name__.lower()}-{a}{b}r{r}"
                drv_a, drv_b = wire_pair(
                    fabric, machines[a], machines[b], driver_cls, name=name
                )
                per_node_drivers[a].append(drv_a)
                per_node_drivers[b].append(drv_b)
                pair_drivers.setdefault((a, b), []).append(drv_a)
                pair_drivers.setdefault((b, a), []).append(drv_b)
    libs = [
        NewMadeleine(
            machines[i],
            per_node_drivers[i],
            policy=policy,
            costs=costs,
            strategy=strategy_factory(),
            node_id=i,
        )
        for i in range(nodes)
    ]
    for a in range(nodes):
        for b in range(nodes):
            if a != b:
                libs[a].add_peer(b, pair_drivers[(a, b)])
    bed = TestBed(
        engine=engine,
        fabric=fabric,
        machines=machines,
        libs=libs,
        costs=costs,
        drivers=pair_drivers,
    )
    # observability: while an observation context is active (repro.obs),
    # every testbed registers itself so traces/metrics cover the whole run
    observation = obs_capture.active()
    if observation is not None:
        observation.on_testbed(bed)
    return bed
