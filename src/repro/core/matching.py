"""Tag matching: posted receives and the unexpected queue.

Arrived chunks are matched against posted receives by (source node, tag)
in FIFO posting order, MPI-style.  Chunks (and rendezvous RTS handshakes)
that arrive before a matching receive is posted are stashed on the
*unexpected* queue and re-examined when a new receive is posted.

The posted-receive list is consumed only by the progress engine; posting
is modelled as a lock-free MPSC append (cost
:attr:`repro.core.costmodel.CostModel.recv_post_ns`, no lock cycle —
matching MX's lock-free posted-receive list).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.packets import Chunk
from repro.core.requests import RecvRequest


@dataclass
class UnexpectedRts:
    """A rendezvous announcement waiting for its receive to be posted."""

    src_node: int
    req_id: int
    tag: int
    size: int


class MatchingTable:
    """Posted receives plus unexpected chunks/handshakes for one library."""

    def __init__(self) -> None:
        self._posted: deque[RecvRequest] = deque()
        self._unexpected_chunks: deque[Chunk] = deque()
        self._unexpected_rts: deque[UnexpectedRts] = deque()
        # matched-but-incomplete receives (multi-chunk / multirail), by
        # (src_node, send_req_id)
        self._in_progress: dict[tuple[int, int], RecvRequest] = {}
        self.unexpected_hits = 0

    # -- posting ------------------------------------------------------------

    def post(self, req: RecvRequest) -> None:
        self._posted.append(req)

    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected_chunks) + len(self._unexpected_rts)

    @property
    def has_unexpected(self) -> bool:
        return bool(self._unexpected_chunks or self._unexpected_rts)

    def unexpected_chunks(self) -> tuple[Chunk, ...]:
        """Read-only view of the stashed data chunks (for probing)."""
        return tuple(self._unexpected_chunks)

    def unexpected_rts(self) -> tuple[UnexpectedRts, ...]:
        """Read-only view of the stashed rendezvous announcements."""
        return tuple(self._unexpected_rts)

    # -- matching ------------------------------------------------------------

    def _find_posted(self, src_node: int, tag: int) -> RecvRequest | None:
        for req in self._posted:
            if req.peer == src_node and req.matches(tag):
                self._posted.remove(req)
                return req
        return None

    def match_chunk(self, chunk: Chunk) -> RecvRequest | None:
        """Find the receive a data chunk belongs to.

        Multi-chunk messages stay associated through ``_in_progress`` until
        every byte has arrived.  Returns None (and stashes the chunk) when
        no receive matches yet.
        """
        key = (chunk.src_node, chunk.send_req_id)
        req = self._in_progress.get(key)
        if req is None:
            req = self._find_posted(chunk.src_node, chunk.tag)
            if req is None:
                self._unexpected_chunks.append(chunk)
                return None
            if req.size < chunk.msg_size:
                raise RuntimeError(
                    f"receive {req.req_id} buffer ({req.size} B) smaller than "
                    f"incoming message ({chunk.msg_size} B)"
                )
            if chunk.length < chunk.msg_size:
                self._in_progress[key] = req
        return req

    def finish_chunk(self, chunk: Chunk, req: RecvRequest) -> bool:
        """Account a delivered chunk; returns True when the message is whole."""
        if chunk.payload is not None:
            req.payload = chunk.payload
        req.add_bytes(chunk.length)
        if req.bytes_done >= chunk.msg_size:
            self._in_progress.pop((chunk.src_node, chunk.send_req_id), None)
            return True
        return False

    def remove_posted(self, req: RecvRequest) -> bool:
        """Withdraw a posted receive (cancellation). Returns False when the
        request is no longer in the posted list (already matching)."""
        try:
            self._posted.remove(req)
            return True
        except ValueError:
            return False

    def register_in_progress(self, src_node: int, send_req_id: int, req: RecvRequest) -> None:
        """Associate a partially-arrived / rendezvous message with its receive."""
        self._in_progress[(src_node, send_req_id)] = req

    def match_rts(self, src_node: int, req_id: int, tag: int, size: int) -> RecvRequest | None:
        """Match a rendezvous announcement; stash it when nothing is posted."""
        req = self._find_posted(src_node, tag)
        if req is None:
            self._unexpected_rts.append(UnexpectedRts(src_node, req_id, tag, size))
            return None
        if req.size < size:
            raise RuntimeError(
                f"receive {req.req_id} buffer ({req.size} B) smaller than "
                f"announced rendezvous ({size} B)"
            )
        self._in_progress[(src_node, req_id)] = req
        return req

    # -- unexpected replay ------------------------------------------------------

    def take_unexpected_chunks(self, req_filter: RecvRequest) -> list[Chunk]:
        """Pop stashed chunks that the newly-posted receive matches."""
        taken: list[Chunk] = []
        keep: deque[Chunk] = deque()
        matched_key: tuple[int, int] | None = None
        for chunk in self._unexpected_chunks:
            key = (chunk.src_node, chunk.send_req_id)
            same_message = matched_key is not None and key == matched_key
            if same_message or (
                matched_key is None
                and req_filter.peer == chunk.src_node
                and req_filter.matches(chunk.tag)
            ):
                if matched_key is None:
                    matched_key = key
                taken.append(chunk)
                self.unexpected_hits += 1
            else:
                keep.append(chunk)
        self._unexpected_chunks = keep
        return taken

    def take_unexpected_rts(self, req_filter: RecvRequest) -> UnexpectedRts | None:
        """Pop the oldest stashed RTS that the newly-posted receive matches."""
        for rts in self._unexpected_rts:
            if req_filter.peer == rts.src_node and req_filter.matches(rts.tag):
                self._unexpected_rts.remove(rts)
                self.unexpected_hits += 1
                return rts
        return None
