"""The transfer layer: per-driver outgoing packet lists.

Bottom of the three layers (Fig. 1): the optimization layer deposits
assembled packets here; a driver drains its own list when its NIC is idle.
These are the second set of shared lists the paper's fine-grain analysis
names: "the lists of packets to send through the network in the transfer
layer (one list per driver)".
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.packets import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.drivers.base import Driver


class TransferLayer:
    """Per-driver FIFO queues of packets awaiting injection."""

    def __init__(self, drivers: list["Driver"]) -> None:
        if not drivers:
            raise ValueError("transfer layer needs at least one driver")
        self._queues: dict[str, deque[Packet]] = {d.name: deque() for d in drivers}
        self.enqueued_total = 0

    def add_driver(self, driver: "Driver") -> None:
        """Register a driver added after construction (extra rail)."""
        if driver.name in self._queues:
            raise ValueError(f"driver {driver.name!r} already registered")
        self._queues[driver.name] = deque()

    def push(self, driver: "Driver", packet: Packet) -> None:
        """Queue ``packet`` on ``driver`` (caller holds the tx lock)."""
        try:
            self._queues[driver.name].append(packet)
        except KeyError:
            raise LookupError(f"unknown driver {driver.name!r}") from None
        self.enqueued_total += 1

    def pop(self, driver: "Driver") -> Packet | None:
        """Take the next packet for ``driver`` (caller holds the tx lock)."""
        queue = self._queues.get(driver.name)
        if queue is None:
            raise LookupError(f"unknown driver {driver.name!r}")
        return queue.popleft() if queue else None

    def pending(self, driver: "Driver") -> int:
        queue = self._queues.get(driver.name)
        if queue is None:
            raise LookupError(f"unknown driver {driver.name!r}")
        return len(queue)

    @property
    def has_pending(self) -> bool:
        return any(self._queues.values())

    def pending_total(self) -> int:
        return sum(len(q) for q in self._queues.values())
