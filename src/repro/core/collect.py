"""The collect layer: per-peer lists of submitted messages.

Topmost of NewMadeleine's three layers (Fig. 1): the application's
``nm_isend`` deposits messages here, and the optimization layer later pulls
them to assemble packets when a NIC becomes idle.  The per-peer lists are
exactly the shared state the paper identifies for the fine-grain analysis:
"the lists of packets to schedule in the collect layer (one list per peer)".
"""

from __future__ import annotations

from collections import deque

from repro.core.requests import SendRequest


class CollectLayer:
    """Per-peer FIFO queues of pending send requests."""

    def __init__(self) -> None:
        self._queues: dict[int, deque[SendRequest]] = {}
        self.submitted_total = 0
        #: live entry count across all queues — the doorbell checks of
        #: every progress pass read :attr:`has_pending`, so it must be O(1)
        self._count = 0

    def submit(self, req: SendRequest) -> None:
        """Append a send request to its peer's list (caller holds the
        collect lock as required by the active policy)."""
        self._queues.setdefault(req.peer, deque()).append(req)
        self.submitted_total += 1
        self._count += 1

    def pending(self, peer: int) -> int:
        queue = self._queues.get(peer)
        return len(queue) if queue else 0

    def pending_total(self) -> int:
        return self._count

    @property
    def has_pending(self) -> bool:
        return self._count > 0

    def peers_with_pending(self) -> list[int]:
        return [peer for peer, q in self._queues.items() if q]

    def peek(self, peer: int) -> SendRequest | None:
        queue = self._queues.get(peer)
        return queue[0] if queue else None

    def pop(self, peer: int) -> SendRequest:
        """Remove and return the oldest pending send for ``peer``."""
        queue = self._queues.get(peer)
        if not queue:
            raise LookupError(f"no pending sends for peer {peer}")
        self._count -= 1
        return queue.popleft()

    def drain_upto(self, peer: int, max_requests: int) -> list[SendRequest]:
        """Pop up to ``max_requests`` sends for ``peer`` (aggregation)."""
        if max_requests <= 0:
            raise ValueError("max_requests must be > 0")
        out: list[SendRequest] = []
        queue = self._queues.get(peer)
        while queue and len(out) < max_requests:
            out.append(queue.popleft())
        self._count -= len(out)
        return out
