"""NewMadeleine: the paper's communication library, reimplemented.

Public surface:

* :class:`NewMadeleine` — the library (``isend``/``irecv``/``wait``/
  ``test``/``progress`` as simulated-thread generators);
* :func:`build_testbed` / :class:`TestBed` — one-call cluster assembly;
* locking policies (:func:`make_policy`), wait strategies
  (:mod:`repro.core.waiting`), optimization strategies
  (:mod:`repro.core.strategies`), and the calibrated :class:`CostModel`.
"""

from repro.core.collect import CollectLayer
from repro.core.costmodel import CostModel
from repro.core.library import NewMadeleine
from repro.core.locking import (
    POLICY_NAMES,
    CoarseLocking,
    FineLocking,
    LockingPolicy,
    NoLocking,
    make_policy,
)
from repro.core.matching import MatchingTable
from repro.core.packets import Chunk, Packet, PacketKind, cts_packet, data_packet, rts_packet
from repro.core.requests import ANY_TAG, RecvRequest, ReqState, Request, SendRequest
from repro.core.session import TestBed, add_rail_pair, build_testbed
from repro.core.strategies import (
    AggregatingStrategy,
    WeightedMultirailStrategy,
    DefaultStrategy,
    FullStrategy,
    MultirailStrategy,
    Strategy,
)
from repro.core.transfer import TransferLayer
from repro.core.waiting import (
    BusyWait,
    FixedSpinWait,
    PassiveWait,
    PiomanBusyWait,
    WaitError,
    WaitStrategy,
)

__all__ = [
    "CollectLayer",
    "CostModel",
    "NewMadeleine",
    "POLICY_NAMES",
    "CoarseLocking",
    "FineLocking",
    "LockingPolicy",
    "NoLocking",
    "make_policy",
    "MatchingTable",
    "Chunk",
    "Packet",
    "PacketKind",
    "cts_packet",
    "data_packet",
    "rts_packet",
    "ANY_TAG",
    "RecvRequest",
    "ReqState",
    "Request",
    "SendRequest",
    "TestBed",
    "add_rail_pair",
    "build_testbed",
    "AggregatingStrategy",
    "DefaultStrategy",
    "FullStrategy",
    "MultirailStrategy",
    "WeightedMultirailStrategy",
    "Strategy",
    "TransferLayer",
    "BusyWait",
    "FixedSpinWait",
    "PassiveWait",
    "PiomanBusyWait",
    "WaitError",
    "WaitStrategy",
]
