"""Locking policies: none, coarse-grain, fine-grain (paper §3.1-§3.2).

Every policy exposes the same three *lock points*, taken by the library at
fixed structural places; what differs is which lock object sits at each
point:

================  ==================  ==================  =================
lock point        none                coarse              fine
================  ==================  ==================  =================
``send_section``  NullLock            the library lock    NullLock
``collect_lock``  NullLock            NullLock (covered)  collect spinlock
``tx_lock(d)``    NullLock            NullLock (covered)  per-driver tx
``rx_lock(d)``    NullLock            the library lock    per-driver rx
================  ==================  ==================  =================

*Coarse* (Fig. 2): one library-wide spinlock, held across each *entry* into
the library — the submission entry (collect + optimize + transmit under one
acquisition) and the arrival-processing entry.  Two acquire/release cycles
per message: **2 × 70 ns = 140 ns**, and everything the library does is
serialised — the cause of the 2× latency in the concurrent pingpong
(Fig. 5).

*Fine* (Fig. 4): the paper identifies the shared state precisely — the
collect-layer lists (one per peer, guarded globally because the packet
scheduler iterates across them) and the transfer-layer lists (one per
driver).  We split the driver lock into tx/rx halves (the NIC is
full-duplex), giving three cycles per message plus the deeper list
indirection: **3 × 70 + 20 = 230 ns**, but unrelated operations proceed in
parallel.

*None*: every point is a :class:`~repro.sim.sync.NullLock` — the unsafe
single-threaded baseline of Fig. 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.sync import NullLock, SpinLock, _LockBase

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.drivers.base import Driver
    from repro.sim.costs import SimCosts

POLICY_NAMES = ("none", "coarse", "fine")


class LockingPolicy:
    """Maps the library's lock points to lock objects."""

    name: str = "abstract"
    #: extra per-message bookkeeping charged on submission (fine only)
    per_message_extra_ns: int = 0

    def send_section(self) -> _LockBase:
        """Outer lock of the whole submission entry
        (collect + optimize + transmit)."""
        raise NotImplementedError

    def collect_lock(self) -> _LockBase:
        """Lock of the collect-layer lists (global: the scheduler iterates
        across per-peer lists)."""
        raise NotImplementedError

    def tx_lock(self, driver: "Driver") -> _LockBase:
        """Lock of one driver's outgoing packet list."""
        raise NotImplementedError

    def rx_lock(self, driver: "Driver") -> _LockBase:
        """Lock serialising arrival processing on one driver."""
        raise NotImplementedError

    def poll_needs_lock(self, driver: "Driver") -> bool:
        """Must even an *empty* poll of this driver hold the rx lock?

        Coarse-grain locking answers yes regardless — a poll is a library
        entry, and every entry takes the library lock (which is what
        serialises concurrent waiters, Fig. 5).  The finer policies only
        lock polls of thread-unsafe drivers ("similar actions should still
        be performed under mutual exclusion, e.g. polling a thread-unsafe
        network", §3.2); arrival *processing* is always locked.
        """
        return not driver.caps.thread_safe_poll

    def lock_objects(self) -> list[_LockBase]:
        """Every distinct lock object (for stats)."""
        raise NotImplementedError

    def lock_stats(self) -> list[dict[str, object]]:
        """Per-lock counter snapshot consumed by :mod:`repro.obs`.

        One row per distinct lock object: acquisitions, contentions, and
        the hold-time statistics the scheduler records on grant/release.
        """
        rows: list[dict[str, object]] = []
        for lock in self.lock_objects():
            rows.append(
                {
                    "name": lock.name,
                    "acquisitions": lock.acquisitions,
                    "contentions": lock.contentions,
                    "holds": lock.holds,
                    "hold_ns_total": lock.hold_ns_total,
                    "hold_max_ns": lock.hold_max_ns,
                    "hold_hist": dict(lock.hold_hist),
                }
            )
        return rows

    def __repr__(self) -> str:
        return f"<LockingPolicy {self.name}>"


class NoLocking(LockingPolicy):
    """The thread-unsafe baseline: a single shared NullLock everywhere."""

    name = "none"

    def __init__(self) -> None:
        self._null = NullLock("none")

    def send_section(self) -> _LockBase:
        return self._null

    def collect_lock(self) -> _LockBase:
        return self._null

    def tx_lock(self, driver: "Driver") -> _LockBase:
        return self._null

    def rx_lock(self, driver: "Driver") -> _LockBase:
        return self._null

    def lock_objects(self) -> list[_LockBase]:
        return []


class CoarseLocking(LockingPolicy):
    """One library-wide spinlock held across each library entry."""

    name = "coarse"

    def __init__(self, costs: "SimCosts") -> None:
        self.library_lock = SpinLock("nm-library", costs=costs)
        self._null = NullLock("covered-by-library-lock")

    def send_section(self) -> _LockBase:
        return self.library_lock

    def collect_lock(self) -> _LockBase:
        return self._null

    def tx_lock(self, driver: "Driver") -> _LockBase:
        return self._null

    def rx_lock(self, driver: "Driver") -> _LockBase:
        return self.library_lock

    def poll_needs_lock(self, driver: "Driver") -> bool:
        return True  # every library entry takes the library-wide lock

    def lock_objects(self) -> list[_LockBase]:
        return [self.library_lock]


class FineLocking(LockingPolicy):
    """Per-structure spinlocks: collect lists + per-driver tx/rx."""

    name = "fine"

    def __init__(self, costs: "SimCosts", extra_ns: int = 20) -> None:
        self._costs = costs
        self.per_message_extra_ns = extra_ns
        self._collect = SpinLock("nm-collect", costs=costs)
        self._null = NullLock("fine-no-outer")
        self._tx: dict[str, SpinLock] = {}
        self._rx: dict[str, SpinLock] = {}

    def send_section(self) -> _LockBase:
        return self._null

    def collect_lock(self) -> _LockBase:
        return self._collect

    def tx_lock(self, driver: "Driver") -> _LockBase:
        lock = self._tx.get(driver.name)
        if lock is None:
            lock = SpinLock(f"nm-tx-{driver.name}", costs=self._costs)
            self._tx[driver.name] = lock
        return lock

    def rx_lock(self, driver: "Driver") -> _LockBase:
        lock = self._rx.get(driver.name)
        if lock is None:
            lock = SpinLock(f"nm-rx-{driver.name}", costs=self._costs)
            self._rx[driver.name] = lock
        return lock

    def lock_objects(self) -> list[_LockBase]:
        return [self._collect, *self._tx.values(), *self._rx.values()]


def make_policy(name: str, costs: "SimCosts", *, fine_extra_ns: int = 20) -> LockingPolicy:
    """Factory: ``"none"`` | ``"coarse"`` | ``"fine"``."""
    if name == "none":
        return NoLocking()
    if name == "coarse":
        return CoarseLocking(costs)
    if name == "fine":
        return FineLocking(costs, extra_ns=fine_extra_ns)
    raise ValueError(f"unknown locking policy {name!r}; choose from {POLICY_NAMES}")
