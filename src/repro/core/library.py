"""NewMadeleine: the communication library under study.

The structure follows the paper's Figure 1 exactly:

* the application submits messages to the **collect layer**
  (:class:`~repro.core.collect.CollectLayer`, per-peer lists);
* when a NIC is idle, the **optimization layer** (a
  :class:`~repro.core.strategies.Strategy`) assembles the best packet —
  aggregating, splitting, distributing over rails — and pushes it to
* the **transfer layer** (:class:`~repro.core.transfer.TransferLayer`,
  per-driver lists), drained into the NIC drivers.

Thread-safety is pluggable via :class:`~repro.core.locking.LockingPolicy`
(none / coarse / fine — §3.1-3.2), waiting via
:mod:`repro.core.waiting` (busy / passive / fixed-spin — §3.3), and the
submission path can be offloaded to other cores via
:mod:`repro.pioman.offload` (§4.2).

Lock discipline (one message, the common path):

* submission — ``send_section`` outer (coarse: the library lock), then
  ``collect_lock`` across deposit *and* the optimizer pass that reads the
  per-peer lists (fine: 1 cycle), then ``tx_lock`` across transfer-push and
  NIC drain (fine: 1 cycle);
* arrival — ``rx_lock`` across poll and matching (coarse: the library
  lock; fine: 1 cycle).

Hence coarse = 2 × 70 ns = 140 ns and fine = 3 × 70 + 20 ns = 230 ns per
message, the constants of Figure 3.

All public methods are generator functions: they run on whatever simulated
thread invokes them, so the same code executes in an application thread, a
PIOMan idle hook, or a tasklet — placement is the experiment.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING

from repro.core.collect import CollectLayer
from repro.core.costmodel import CostModel
from repro.core.locking import LockingPolicy, make_policy
from repro.core.matching import MatchingTable
from repro.core.packets import Packet, PacketKind, cts_packet
from repro.core.requests import ReqState, RecvRequest, SendRequest
from repro.core.strategies import DefaultStrategy, Plan, Strategy
from repro.core.transfer import TransferLayer
from repro.sim.machine import Machine
from repro.sim.process import Acquire, Delay, Release, SimGen, TryAcquire, WhereAmI

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.drivers.base import Driver

_node_ids = itertools.count(0)


class NewMadeleine:
    """One node's communication library instance.

    Args:
        machine: the node this library runs on.
        drivers: local drivers (NIC ports) the library may use.
        policy: locking policy name (``"none"``/``"coarse"``/``"fine"``) or
            a :class:`LockingPolicy` instance.
        costs: library cost calibration.
        strategy: optimization-layer strategy (default:
            :class:`~repro.core.strategies.DefaultStrategy`).
        node_id: explicit node id (auto-assigned when omitted).
    """

    def __init__(
        self,
        machine: Machine,
        drivers: list["Driver"],
        *,
        policy: str | LockingPolicy = "fine",
        costs: CostModel | None = None,
        strategy: Strategy | None = None,
        node_id: int | None = None,
    ) -> None:
        if not drivers:
            raise ValueError("NewMadeleine needs at least one driver")
        self.machine = machine
        self.drivers = list(drivers)
        self.costs = costs or CostModel()
        if isinstance(policy, str):
            policy = make_policy(
                policy, self.costs.sim, fine_extra_ns=self.costs.fine_extra_ns
            )
        self.policy = policy
        self.strategy = strategy or DefaultStrategy()
        self.node_id = next(_node_ids) if node_id is None else node_id

        self.collect = CollectLayer()
        self.transfer = TransferLayer(self.drivers)
        self.matching = MatchingTable()

        #: peer node id -> rails (subset of self.drivers) reaching it
        self._peers: dict[int, list[Driver]] = {}
        #: in-flight sends by request id (needed to complete on post / CTS)
        self._send_reqs: dict[int, SendRequest] = {}
        #: CTS control messages owed to peers: (dst_node, send_req_id)
        self._pending_cts: deque[tuple[int, int]] = deque()
        #: rendezvous sends whose CTS arrived, awaiting data-packet assembly
        self._pending_rdv_data: deque[int] = deque()
        #: progression engine attached by repro.pioman (optional)
        self.pioman = None
        #: submission-offload mode attached by repro.pioman.offload
        #: (None = inline submission)
        self.submit_offload = None

        # statistics
        self.isend_count = 0
        self.irecv_count = 0
        self.packets_posted = {k: 0 for k in PacketKind}
        self.progress_passes = 0

        # reusable effect objects for the fixed-cost yields of the progress
        # and submission paths.  The scheduler only reads effects, and the
        # lock points are structurally fixed per policy, so one instance of
        # each serves every pass — this removes an allocation per yield from
        # the hottest generator loops.
        self._eff_doorbell = Delay(self.costs.doorbell_ns, "poll")
        self._eff_sched_scan = Delay(self.costs.sched_scan_ns, "poll")
        self._eff_match = Delay(self.costs.match_ns, "overhead")
        self._eff_complete = Delay(self.costs.complete_ns, "overhead")
        self._eff_optimizer = Delay(self.costs.optimizer_pass_ns, "overhead")
        self._eff_submit = Delay(
            self.costs.submit_ns + self.policy.per_message_extra_ns, "overhead"
        )
        self._eff_recv_post = Delay(self.costs.recv_post_ns, "overhead")
        self._acq_send = Acquire(self.policy.send_section())
        self._rel_send = Release(self.policy.send_section())
        self._acq_collect = Acquire(self.policy.collect_lock())
        self._rel_collect = Release(self.policy.collect_lock())
        #: per-driver (Acquire, Release) pairs for the rx/tx lock points
        self._rx_eff: dict[str, tuple[Acquire, Release]] = {}
        self._tx_eff: dict[str, tuple[Acquire, Release]] = {}

    def _rx_lock_eff(self, driver: "Driver") -> tuple[Acquire, Release]:
        eff = self._rx_eff.get(driver.name)
        if eff is None:
            lock = self.policy.rx_lock(driver)
            eff = (Acquire(lock), Release(lock))
            self._rx_eff[driver.name] = eff
        return eff

    def _tx_lock_eff(self, driver: "Driver") -> tuple[Acquire, Release]:
        eff = self._tx_eff.get(driver.name)
        if eff is None:
            lock = self.policy.tx_lock(driver)
            eff = (Acquire(lock), Release(lock))
            self._tx_eff[driver.name] = eff
        return eff

    # ------------------------------------------------------------------ wiring

    def add_peer(self, node_id: int, rails: list["Driver"]) -> None:
        """Declare that ``rails`` reach the library of ``node_id``."""
        if node_id == self.node_id:
            raise ValueError("a node cannot peer with itself")
        if not rails:
            raise ValueError("need at least one rail to a peer")
        for rail in rails:
            if rail not in self.drivers:
                raise ValueError(f"driver {rail.name!r} does not belong to this library")
        self._peers[node_id] = list(rails)

    def add_rail(self, peer: int, driver: "Driver") -> None:
        """Attach an additional rail to an existing peer (e.g. a second,
        heterogeneous NIC added after construction)."""
        if peer not in self._peers:
            raise LookupError(f"unknown peer {peer}")
        if driver not in self.drivers:
            self.drivers.append(driver)
            self.transfer.add_driver(driver)
        self._peers[peer].append(driver)

    def rails(self, peer: int) -> list["Driver"]:
        try:
            return self._peers[peer]
        except KeyError:
            raise LookupError(f"unknown peer {peer} (known: {sorted(self._peers)})") from None

    @property
    def peers(self) -> list[int]:
        return sorted(self._peers)

    # ------------------------------------------------------------------ helpers

    def _is_eager(self, peer: int, size: int) -> bool:
        rail = self.rails(peer)[0]
        return size <= min(self.costs.rdv_threshold_bytes, rail.caps.eager_max_bytes)

    def has_work(self) -> bool:
        """Lock-free doorbell check: is there anything a progress pass would
        do right now?  (Real drivers read a completion counter without
        taking any lock.)"""
        if self._pending_cts or self._pending_rdv_data:
            return True
        if any(d.rx_pending for d in self.drivers):
            return True
        if self.collect.has_pending and any(d.tx_idle for d in self.drivers):
            return True
        return any(
            d.tx_idle and self.transfer.pending(d) for d in self.drivers
        )

    def pending_incomplete(self) -> int:
        """Unfinished send requests the library still tracks."""
        return len(self._send_reqs)

    def has_pending_requests(self) -> bool:
        """Any request (send or posted/partial receive) still in flight?"""
        return bool(
            self._send_reqs
            or self.matching.posted_count
            or self.matching._in_progress
        )

    # ------------------------------------------------------------------ API

    def isend(self, peer: int, tag: int, size: int, *, payload=None) -> SimGen:
        """Non-blocking send (``nm_isend``): returns a
        :class:`SendRequest`.

        The message is deposited in the collect layer; with inline
        submission (the default) the same library entry runs the optimizer
        and transmits, which is the paper's coarse-grain accounting of one
        submission entry per message.

        ``payload`` optionally attaches an application object that the
        matching receive will surface (costs are driven by ``size`` only).
        """
        rails = self.rails(peer)
        req = SendRequest(
            self.machine, peer, tag, size, eager=self._is_eager(peer, size)
        )
        req.payload = payload
        self._send_reqs[req.req_id] = req
        self.isend_count += 1
        req.stamp("submitted")
        req.submit_core = yield WhereAmI()
        inline = self.submit_offload is None or self.submit_offload.inline
        yield self._acq_send
        yield self._acq_collect
        yield self._eff_submit
        self.collect.submit(req)
        if inline and any(d.tx_idle for d in rails):
            yield self._eff_optimizer
            plan = self.strategy.assemble(self, peer, rails)
            if plan:
                # the transfer push nests inside the collect hold
                # (collect -> tx order everywhere): two concurrent flushers
                # must not invert the pop order on the wire
                yield from self._push_and_drain(plan)
        yield self._rel_collect
        yield self._rel_send
        if not inline:
            yield from self.submit_offload.after_submit(self, peer)
        return req

    def irecv(self, peer: int, tag: int, size: int, *, tag_bounds=None) -> SimGen:
        """Non-blocking receive (``nm_irecv``): returns a
        :class:`RecvRequest`.

        Posting is lock-free (MPSC posted-receive list).  Unexpected
        arrivals stashed earlier are claimed immediately; an unexpected
        rendezvous announcement queues its CTS for the next progress pass.
        ``tag_bounds`` confines a wildcard tag to a range (communicator
        context isolation).
        """
        self.rails(peer)
        req = RecvRequest(self.machine, peer, tag, size, tag_bounds=tag_bounds)
        req.stamp("posted")
        self.irecv_count += 1
        yield self._eff_recv_post
        if self.matching.has_unexpected:
            matched = yield from self._claim_unexpected(req)
            if matched:
                return req
        self.matching.post(req)
        return req

    def progress(self, early_exit=None) -> SimGen:
        """One pass of the progression engine; returns True if it did work.

        Structure per pass: (1) lock-free doorbell read; (2) flush of fresh
        submissions; (3) arrival processing per driver, polls locked per
        the policy; (4) the scheduler scan and remaining send-side work.

        ``early_exit`` is the waiter's fast path: ``nm_wait`` re-checks its
        own request between the pass's sections and leaves the engine as
        soon as the request is visibly complete, instead of finishing the
        full scan first.
        """
        self.progress_passes += 1
        yield self._eff_doorbell
        did = False
        # fresh submissions first: an offloaded isend sits in the collect
        # layer, and flushing it before the (expensive) poll keeps the
        # idle-core submission path short (§4.2)
        if self.collect.has_pending and any(d.tx_idle for d in self.drivers):
            yield self._acq_send
            sent = yield from self._send_side_pass()
            yield self._rel_send
            did = did or sent
        for driver in self.drivers:
            # under coarse locking even an empty poll is a library entry
            # and takes the library lock — the serialisation of Fig. 5.
            # Finer policies probe thread-safe NICs lock-free; the pop and
            # the processing always share one rx-lock hold, so concurrent
            # pollers can never process arrivals out of order.
            locked_poll = self.policy.poll_needs_lock(driver)
            probed = False
            if not locked_poll and not driver.rx_pending:
                pending = yield from driver.probe()  # lock-free fast path
                if not pending:
                    continue
                probed = True
            acq, rel = self._rx_lock_eff(driver)
            yield acq
            packet = yield from driver.poll(after_probe=probed)
            if packet is not None:
                yield from self._handle_packet(packet)
                did = True
            yield rel
            if did and early_exit is not None and early_exit():
                return True
        # the scheduler scan every entry performs (walking peer/driver
        # lists); reading the list heads is lock-free
        yield self._eff_sched_scan
        if self._send_work_pending():
            yield self._acq_send
            sent = yield from self._send_side_pass()
            yield self._rel_send
            did = did or sent
        return did

    def try_progress_inline(self) -> SimGen:
        """Interrupt-context progress pass (timer / context-switch hooks).

        Restricted to the inline effect vocabulary
        (:func:`repro.sim.process.run_inline`): locks are only *tried*, and
        the pass bails out on contention instead of spinning — a real
        scheduler cannot spin inside an interrupt.  Handles arrivals only
        (the latency-critical work); send-side flushing stays with the
        ordinary passes.

        Returns True if an arrival was processed.
        """
        did = False
        for driver in self.drivers:
            if not driver.rx_pending:
                continue
            lock = self.policy.rx_lock(driver)
            got = yield TryAcquire(lock)
            if not got:
                continue
            packet = yield from driver.poll()
            if packet is not None:
                yield from self._handle_packet(packet)
                did = True
            yield Release(lock)
        return did

    def flush(self) -> SimGen:
        """Run send-side work only (offloaded submission entry point)."""
        if not self._send_work_pending():
            return False
        yield self._acq_send
        did = yield from self._send_side_pass()
        yield self._rel_send
        return did

    def wait(self, req, strategy=None) -> SimGen:
        """Block until ``req`` completes (``nm_wait``).

        ``strategy`` is a :class:`repro.core.waiting.WaitStrategy`; the
        default busy-waits by driving :meth:`progress`.
        """
        if strategy is None:
            strategy = _DEFAULT_BUSY_WAIT
        yield from strategy.wait(self, req)
        return req

    def test(self, req) -> SimGen:
        """Non-blocking completion check (``nm_test``): one progress pass,
        then report whether the request is visibly complete."""
        core = yield WhereAmI()
        if req.completion.visible(core):
            return True
        yield from self.progress()
        return req.completion.visible(core)

    def cancel_recv(self, req: RecvRequest) -> SimGen:
        """Cancel a posted receive that has not started matching.

        Succeeds (returns True) only while the request still sits unmatched
        in the posted list; a receive whose data (or rendezvous handshake)
        already began cannot be cancelled — MPI_Cancel semantics.  A
        cancelled request completes immediately with ``cancelled=True``.
        """
        if not isinstance(req, RecvRequest):
            raise TypeError("cancel_recv takes a RecvRequest")
        core = yield WhereAmI()
        yield Delay(self.costs.match_ns, "overhead")
        if req.done or req.state is not ReqState.PENDING:
            return False
        removed = self.matching.remove_posted(req)
        if not removed:
            return False
        req.cancelled = True
        yield Delay(self.costs.complete_ns, "overhead")
        req.complete(core=core)
        return True

    def probe(self, peer: int, tag: int) -> SimGen:
        """Non-blocking probe: has a matching message arrived that no
        posted receive claimed yet?  Returns ``(found, size)``.

        Checks both stashed eager data and pending rendezvous
        announcements; runs one progress pass first so freshly-delivered
        packets are visible (``MPI_Iprobe`` semantics).
        """
        self.rails(peer)
        yield from self.progress()
        yield Delay(self.costs.match_ns, "overhead")
        for chunk in self.matching.unexpected_chunks():
            if chunk.src_node == peer and (tag == -1 or chunk.tag == tag):
                if chunk.offset == 0:
                    return True, chunk.msg_size
        for rts in self.matching.unexpected_rts():
            if rts.src_node == peer and (tag == -1 or rts.tag == tag):
                return True, rts.size
        return False, None

    # ------------------------------------------------------------ receive path

    def _claim_unexpected(self, req: RecvRequest) -> SimGen:
        """Match a fresh receive against stashed arrivals.  Returns True when
        the request was satisfied or its rendezvous is now underway."""
        rts = self.matching.take_unexpected_rts(req)
        if rts is not None:
            yield Delay(self.costs.match_ns, "overhead")
            if req.size < rts.size:
                raise RuntimeError(
                    f"receive buffer ({req.size} B) smaller than announced "
                    f"rendezvous ({rts.size} B)"
                )
            self.matching.register_in_progress(rts.src_node, rts.req_id, req)
            req.state = ReqState.IN_TRANSIT
            self._pending_cts.append((rts.src_node, rts.req_id))
            self._poke_progress()
            return True
        chunks = self.matching.take_unexpected_chunks(req)
        if chunks:
            core = yield WhereAmI()
            done = False
            for chunk in chunks:
                yield Delay(self.costs.match_ns, "overhead")
                if self.matching.finish_chunk(chunk, req):
                    done = True
            if done:
                yield Delay(self.costs.complete_ns, "overhead")
                req.complete(core=core)
            else:
                req.state = ReqState.IN_TRANSIT
                first = chunks[0]
                self.matching.register_in_progress(
                    first.src_node, first.send_req_id, req
                )
            return True
        return False

    def _handle_packet(self, packet: Packet) -> SimGen:
        """Process one arrived packet (caller holds the rx lock)."""
        core = yield WhereAmI()
        if packet.kind is PacketKind.DATA:
            for chunk in packet.chunks:
                yield self._eff_match
                req = self.matching.match_chunk(chunk)
                if req is None:
                    continue  # stashed as unexpected
                if packet.arrived_at is not None:
                    req.stamp("arrived", packet.arrived_at)
                req.stamp("matched")
                if req.state is ReqState.PENDING:
                    req.state = ReqState.IN_TRANSIT
                if self.matching.finish_chunk(chunk, req):
                    yield self._eff_complete
                    req.complete(core=core)
        elif packet.kind is PacketKind.RTS:
            yield self._eff_match
            req = self.matching.match_rts(
                packet.src_node, packet.rdv_req_id, packet.rdv_tag, packet.rdv_size
            )
            if req is not None:
                req.state = ReqState.IN_TRANSIT
                self._pending_cts.append((packet.src_node, packet.rdv_req_id))
        elif packet.kind is PacketKind.CTS:
            if packet.rdv_req_id not in self._send_reqs:
                raise RuntimeError(
                    f"CTS for unknown send request {packet.rdv_req_id}"
                )
            self._pending_rdv_data.append(packet.rdv_req_id)
        else:  # pragma: no cover - enum is exhaustive
            raise RuntimeError(f"unhandled packet kind {packet.kind}")

    # ------------------------------------------------------------ send path

    def _send_work_pending(self) -> bool:
        if self._pending_cts or self._pending_rdv_data:
            return True
        if self.collect.has_pending and any(d.tx_idle for d in self.drivers):
            return True
        return any(d.tx_idle and self.transfer.pending(d) for d in self.drivers)

    def _send_side_pass(self) -> SimGen:
        """Flush owed control packets, assemble data packets, drain the
        transfer queues (caller holds the policy's send section)."""
        plan: Plan = []
        # 1. owed CTS responses
        while self._pending_cts:
            dst, req_id = self._pending_cts.popleft()
            packet = cts_packet(
                self.node_id, dst, req_id, header_bytes=self.costs.header_bytes
            )
            plan.append((self.rails(dst)[0], packet))
        # 2. rendezvous data whose CTS arrived
        while self._pending_rdv_data:
            req_id = self._pending_rdv_data.popleft()
            req = self._send_reqs[req_id]
            yield self._eff_optimizer
            plan.extend(self.strategy.make_rdv_data(self, req, self.rails(req.peer)))
        did = bool(plan)
        if plan:
            yield from self._push_and_drain(plan)
            plan = []
        # 3. optimizer over peers with pending collect entries (the packet
        #    scheduler iterates the per-peer lists under the collect lock;
        #    the transfer push nests inside the hold so concurrent flushers
        #    cannot invert the wire order)
        if self.collect.has_pending:
            yield self._acq_collect
            for peer in self.collect.peers_with_pending():
                rails = self.rails(peer)
                if not any(d.tx_idle for d in rails):
                    continue
                yield self._eff_optimizer
                plan.extend(self.strategy.assemble(self, peer, rails))
            if plan:
                did = True
                yield from self._push_and_drain(plan)
            yield self._rel_collect
        # 4. leftover transfer-queue entries (queued while the NIC was busy)
        for driver in self.drivers:
            if self.transfer.pending(driver) and driver.tx_idle:
                acq, rel = self._tx_lock_eff(driver)
                yield acq
                while driver.tx_idle:
                    packet = self.transfer.pop(driver)
                    if packet is None:
                        break
                    yield from self._post_packet(driver, packet)
                    did = True
                yield rel
        return did

    def _push_and_drain(self, plan: Plan) -> SimGen:
        """Queue assembled packets and push them through to the NIC — one
        tx-lock cycle per driver touched.  Freshly-assembled packets are
        posted unconditionally (the submission entry transmits its own
        message, spinning for a NIC credit if needed); anything already
        queued behind them drains too."""
        by_driver: dict[str, tuple["Driver", list[Packet]]] = {}
        for driver, packet in plan:
            by_driver.setdefault(driver.name, (driver, []))[1].append(packet)
        for driver, packets in by_driver.values():
            acq, rel = self._tx_lock_eff(driver)
            yield acq
            for packet in packets:
                self.transfer.push(driver, packet)
            while True:
                packet = self.transfer.pop(driver)
                if packet is None:
                    break
                yield from self._post_packet(driver, packet)
            yield rel

    def _descriptor_transfer_ns(self, packet: Packet, core: int) -> int:
        """Cache-transfer price of posting a packet whose send was submitted
        on another core (paper §4.2: ~400 ns across an L2 boundary)."""
        req_id = None
        if packet.kind is PacketKind.DATA and packet.chunks:
            req_id = packet.chunks[0].send_req_id
        elif packet.kind is PacketKind.RTS:
            req_id = packet.rdv_req_id
        if req_id is None:
            return 0
        sreq = self._send_reqs.get(req_id)
        if sreq is None or sreq.submit_core is None:
            return 0
        return self.machine.transfer_ns(sreq.submit_core, core)

    def _post_packet(self, driver: "Driver", packet: Packet) -> SimGen:
        """Inject one packet and complete the sends it finishes (caller
        holds the tx lock)."""
        core = yield WhereAmI()
        transfer = self._descriptor_transfer_ns(packet, core)
        if transfer:
            self.machine.transfer_charged_ns += transfer
            yield Delay(transfer, "overhead")
        yield from driver.post_send(packet)
        self.packets_posted[packet.kind] += 1
        if packet.kind is not PacketKind.DATA:
            return
        for chunk in packet.chunks:
            sreq = self._send_reqs.get(chunk.send_req_id)
            if sreq is None:
                raise RuntimeError(f"posting chunk of unknown send {chunk.send_req_id}")
            sreq.stamp("injected")
            sreq.add_bytes(chunk.length)
            if sreq.state in (ReqState.PENDING, ReqState.RTS_SENT):
                sreq.state = ReqState.IN_TRANSIT
            if sreq.all_bytes_done:
                yield self._eff_complete
                sreq.complete(core=core)
                del self._send_reqs[sreq.req_id]

    # ------------------------------------------------------------ progression

    def _poke_progress(self) -> None:
        """Nudge whatever background progression exists (idle loops)."""
        self.machine.scheduler.poke_idle()

    def __repr__(self) -> str:
        return (
            f"<NewMadeleine node={self.node_id} policy={self.policy.name} "
            f"strategy={self.strategy.name} drivers={[d.name for d in self.drivers]}>"
        )


# imported at the bottom to dodge the module cycle; BusyWait is stateless,
# so every default nm_wait shares one instance
from repro.core.waiting import BusyWait as _BusyWait  # noqa: E402

_DEFAULT_BUSY_WAIT = _BusyWait()
