"""Send and receive requests.

Requests are what ``nm_isend``/``nm_irecv`` hand back to the application;
``nm_wait``/``nm_test`` operate on them.  Completion is a
:class:`repro.sim.sync.Completion`, which carries the inter-core
cache-visibility semantics of Fig. 8: a request completed by a progression
thread on core *k* becomes visible to a waiter on core *c* only after the
topology's transfer cost.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.sim.sync import Completion

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

#: wildcard receive tag
ANY_TAG = -1


class ReqState(enum.Enum):
    PENDING = "pending"  # created, not yet picked up by the optimizer
    RTS_SENT = "rts-sent"  # rendezvous send: waiting for CTS
    IN_TRANSIT = "in-transit"  # data packets posted / partially arrived
    DONE = "done"


class Request:
    """Base class: identity, progress bookkeeping, completion flag."""

    _counter = 0

    def __init__(self, machine: "Machine", peer: int, tag: int, size: int) -> None:
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        if tag < ANY_TAG:
            raise ValueError(f"tag must be >= 0 (or ANY_TAG for receives), got {tag}")
        Request._counter += 1
        self.req_id = Request._counter
        self.machine = machine
        self.peer = peer
        self.tag = tag
        self.size = size
        self.state = ReqState.PENDING
        #: plain attribute (set by :meth:`complete`), not a property — the
        #: progression engine and PIOMan's reap path poll it per pass
        self.done = False
        self.completion = Completion(machine, name=f"req{self.req_id}")
        #: bytes handed to / received from the network so far
        self.bytes_done = 0
        #: simulated time of completion (for latency accounting)
        self.completed_at: int | None = None
        #: application object riding along with the message (sends carry
        #: it out; receives surface what arrived)
        self.payload: object | None = None
        #: True when the request completed by cancellation, not by data
        self.cancelled = False
        #: lifecycle timestamps (ns) for latency decomposition:
        #: sends record "submitted"/"injected"/"completed"; receives record
        #: "posted"/"arrived"/"matched"/"completed"
        self.timeline: dict[str, int] = {}
        #: completion callbacks (lazy; most requests have none) — PIOMan's
        #: reap path subscribes here so its poll ticks never rescan the
        #: whole request list
        self._done_cbs: list | None = None

    def on_done(self, cb) -> None:
        """Run ``cb(request)`` at completion (immediately if already done).

        Callbacks run synchronously inside :meth:`complete` and must not
        yield effects — they are host-side bookkeeping hooks.
        """
        if self.done:
            cb(self)
        elif self._done_cbs is None:
            self._done_cbs = [cb]
        else:
            self._done_cbs.append(cb)

    def stamp(self, event: str, time_ns: int | None = None) -> None:
        """Record the first occurrence of a lifecycle event."""
        when = self.machine.engine.now if time_ns is None else time_ns
        self.timeline.setdefault(event, when)

    def add_bytes(self, n: int) -> None:
        if n < 0:
            raise ValueError("byte count must be >= 0")
        self.bytes_done += n
        if self.bytes_done > self.size:
            raise RuntimeError(
                f"request {self.req_id}: {self.bytes_done} bytes exceed size {self.size}"
            )

    @property
    def all_bytes_done(self) -> bool:
        return self.bytes_done >= self.size

    def complete(self, *, core: int | None = None) -> None:
        """Mark done and fire the completion from ``core``."""
        if self.done:
            raise RuntimeError(f"request {self.req_id} completed twice")
        self.state = ReqState.DONE
        self.done = True
        self.completed_at = self.machine.engine.now
        self.stamp("completed")
        self.completion.fire(self, core=core)
        cbs = self._done_cbs
        if cbs is not None:
            self._done_cbs = None
            for cb in cbs:
                cb(self)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} #{self.req_id} peer={self.peer} tag={self.tag} "
            f"size={self.size} {self.state.value}>"
        )


class SendRequest(Request):
    """An ``nm_isend`` in flight.

    Eager sends complete at local injection; rendezvous sends complete when
    the data packets have been posted after the CTS arrived.
    """

    def __init__(
        self, machine: "Machine", peer: int, tag: int, size: int, *, eager: bool
    ) -> None:
        if tag == ANY_TAG:
            raise ValueError("sends require a concrete tag")
        super().__init__(machine, peer, tag, size)
        self.eager = eager
        #: core that ran ``nm_isend``; posting from another core pays the
        #: descriptor cache transfer (paper §4.2)
        self.submit_core: int | None = None


class RecvRequest(Request):
    """An ``nm_irecv`` in flight; completes when every byte has arrived.

    ``tag=ANY_TAG`` matches any tag from the peer within the optional
    wildcard bounds (``tag_bounds``) — higher layers use the bounds to
    confine a wildcard to one communicator's tag space.
    """

    ANY_TAG = ANY_TAG

    def __init__(
        self,
        machine: "Machine",
        peer: int,
        tag: int,
        size: int,
        *,
        tag_bounds: tuple[int, int] | None = None,
    ) -> None:
        super().__init__(machine, peer, tag, size)
        if tag_bounds is not None:
            lo, hi = tag_bounds
            if lo > hi:
                raise ValueError(f"empty tag_bounds {tag_bounds}")
        self.tag_bounds = tag_bounds

    def matches(self, tag: int) -> bool:
        if self.tag != ANY_TAG:
            return self.tag == tag
        if self.tag_bounds is None:
            return True
        lo, hi = self.tag_bounds
        return lo <= tag <= hi
