"""Waiting strategies: busy, passive, and fixed-spin (paper §3.3).

How ``nm_wait`` passes the time is the subject of Figures 6 and 7:

* :class:`BusyWait` — the classic approach: keep calling the progress
  engine until the request completes.  Fastest alone, wasteful with many
  threads.
* :class:`PiomanBusyWait` — same, but polling goes through PIOMan's
  request lists; costs the +200 ns management overhead of Fig. 6.
* :class:`PassiveWait` — block on the request's completion; PIOMan polls
  from the scheduler hooks and wakes the thread.  Pays the 750 ns context
  switch round trip of Fig. 7 but frees the core.
* :class:`FixedSpinWait` — Karlin et al.'s competitive spinning: poll for
  a bounded interval (default 5 µs), then block.  The switch is avoided
  whenever the event arrives within the spin window, and amortised
  otherwise.

Busy strategies poll *visibility* (:meth:`Completion.visible`), so a
completion produced on a remote core is seen only after the cache-transfer
delay — the Fig. 8 effect applies to spinners and blockers alike.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.process import Delay, SimGen, WhereAmI

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import NewMadeleine
    from repro.core.requests import Request


class WaitError(RuntimeError):
    """A wait strategy's requirements are not met (e.g. no PIOMan)."""


class WaitStrategy:
    """Base class; ``wait`` runs on the waiting thread."""

    name: str = "abstract"

    def wait(self, lib: "NewMadeleine", req: "Request") -> SimGen:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<WaitStrategy {self.name}>"


class BusyWait(WaitStrategy):
    """Drive the library's progress engine until the request is visible."""

    name = "busy"

    def wait(self, lib: "NewMadeleine", req: "Request") -> SimGen:
        core = yield WhereAmI()
        visible = lambda: req.completion.visible(core)  # noqa: E731
        while not visible():
            yield from lib.progress(early_exit=visible)


class FlagSpinWait(WaitStrategy):
    """Spin on the request's completion flag without entering the library.

    The Fig. 8 instrument: the bound application thread does *no* polling
    itself — all progression is delegated (to PIOMan on a chosen core) —
    and simply re-reads the completion word.  The flag becomes visible
    after the poller-to-waiter cache transfer, so the measured latency
    delta between polling cores is exactly the cache distance.

    Requires someone else to actually poll; spinning forever otherwise.
    """

    name = "flag-spin"

    #: price of one flag re-read (a cached load + pause)
    SPIN_CHECK_NS = 30

    def wait(self, lib: "NewMadeleine", req: "Request") -> SimGen:
        if lib.pioman is None:
            raise WaitError(
                "FlagSpinWait requires a PIOMan: nobody else would poll"
            )
        core = yield WhereAmI()
        yield from lib.pioman.register(req)
        while not req.completion.visible(core):
            yield Delay(self.SPIN_CHECK_NS, "poll")


class PiomanBusyWait(WaitStrategy):
    """Busy waiting through PIOMan's request management (Fig. 6).

    The request is registered with the I/O manager and every poll goes
    through its lists; the +200 ns per message is the register/complete
    bookkeeping.
    """

    name = "pioman-busy"

    def wait(self, lib: "NewMadeleine", req: "Request") -> SimGen:
        if lib.pioman is None:
            raise WaitError("PiomanBusyWait requires a PIOMan attached to the library")
        core = yield WhereAmI()
        yield from lib.pioman.register(req)
        visible = lambda: req.completion.visible(core)  # noqa: E731
        while not visible():
            yield from lib.pioman.poll(early_exit=visible)


class PassiveWait(WaitStrategy):
    """Block on the completion; PIOMan polls from the scheduler hooks.

    Requires idle loops (or timers) to be running, otherwise nobody makes
    progress while the thread sleeps.
    """

    name = "passive"

    def wait(self, lib: "NewMadeleine", req: "Request") -> SimGen:
        if lib.pioman is None:
            raise WaitError("PassiveWait requires a PIOMan attached to the library")
        yield from lib.pioman.register(req)
        if req.completion.fired:
            return
        yield from req.completion.wait()


class FixedSpinWait(WaitStrategy):
    """Spin for a fixed interval, then block (competitive spinning).

    ``spin_ns=None`` uses the cost model's threshold (5 µs, the paper's
    example value).
    """

    name = "fixed-spin"

    def __init__(self, spin_ns: int | None = None) -> None:
        if spin_ns is not None and spin_ns < 0:
            raise ValueError("spin_ns must be >= 0")
        self.spin_ns = spin_ns
        #: diagnostics: how often each path resolved the wait
        self.resolved_spinning = 0
        self.resolved_blocking = 0

    def wait(self, lib: "NewMadeleine", req: "Request") -> SimGen:
        core = yield WhereAmI()
        spin_ns = self.spin_ns if self.spin_ns is not None else lib.costs.fixed_spin_ns
        deadline = lib.machine.engine.now + spin_ns
        while lib.machine.engine.now < deadline:
            if req.completion.visible(core):
                self.resolved_spinning += 1
                return
            yield from lib.progress()
        if req.completion.visible(core):
            self.resolved_spinning += 1
            return
        self.resolved_blocking += 1
        yield from PassiveWait().wait(lib, req)
