"""Calibrated costs of the communication library.

Companion to :class:`repro.sim.costs.SimCosts` (machine substrate prices);
this model holds the *library-level* prices: bookkeeping on the message
path, PIOMan management, protocol thresholds.  Together the two models are
calibrated against the constants the paper measures:

==========================  =========  ===============================
quantity                    paper       where it comes from here
==========================  =========  ===============================
coarse-grain lock overhead  140 ns     2 spin cycles x 70 ns
                                       (submission entry + arrival entry)
fine-grain lock overhead    230 ns     3 spin cycles x 70 ns
                                       (collect + tx + rx locks)
                                       + ``fine_extra_ns`` = 20 ns
PIOMan management           200 ns     ``pioman_register_ns`` +
                                       ``pioman_complete_ns``
semaphore context switches  750 ns     2 x ``SimCosts.ctx_switch_ns``
fixed-spin threshold        5 us       ``fixed_spin_ns``
tasklet offload             ~2 us      tasklet schedule+invoke (1.6 us)
                                       + 400 ns cache transfer
idle-core offload           ~400 ns    cache transfer alone
==========================  =========  ===============================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.costs import SimCosts


@dataclass(frozen=True)
class CostModel:
    """Library-level nanosecond prices and protocol thresholds."""

    #: substrate (scheduler/lock/tasklet) prices
    sim: SimCosts = SimCosts()

    # -- message path bookkeeping ------------------------------------------
    #: appending a request to the collect layer's per-peer list
    submit_ns: int = 100
    #: posting a receive into the matching table (lock-free posted list)
    recv_post_ns: int = 80
    #: one optimizer pass: choosing/assembling the next packet for a peer
    optimizer_pass_ns: int = 80
    #: matching one arrived chunk against the posted-receive table
    match_ns: int = 60
    #: completing a request (status propagation)
    complete_ns: int = 60
    #: reading the drivers' doorbells once in a progress pass that finds
    #: nothing to do (the lock-free fast path of the busy-wait loop)
    doorbell_ns: int = 40
    #: the scheduler scan every progress entry performs: walking the
    #: per-peer/per-driver lists and evaluating the strategy machinery.
    #: Together with the driver poll this makes a progress pass ~1 us, as
    #: on the real system — the span whose serialisation under the global
    #: lock produces the Fig. 5 doubling
    sched_scan_ns: int = 350
    #: extra per-message price of the fine-grain structure (paper: the
    #: measured 230 ns exceeds 3 x 70 ns by the deeper list indirection)
    fine_extra_ns: int = 20

    # -- PIOMan (paper Fig. 6: +200 ns) ---------------------------------------
    pioman_register_ns: int = 100
    pioman_complete_ns: int = 100
    #: base price of one PIOMan polling pass over its request lists
    pioman_pass_ns: int = 40

    # -- waiting strategies (paper §3.3) -----------------------------------------
    #: fixed-spin threshold before blocking (Karlin et al.: ~5 us)
    fixed_spin_ns: int = 5_000

    # -- protocols ------------------------------------------------------------------
    #: per-packet wire header (NewMadeleine packet framing)
    header_bytes: int = 40
    #: payloads above the driver's eager limit use rendezvous (RTS/CTS)
    #: [the effective threshold is min() of this and the driver capability]
    rdv_threshold_bytes: int = 4_096
    #: maximum aggregated packet payload for the coalescing strategy
    aggregation_max_bytes: int = 4_096

    def __post_init__(self) -> None:
        for field in (
            "submit_ns",
            "recv_post_ns",
            "optimizer_pass_ns",
            "match_ns",
            "complete_ns",
            "doorbell_ns",
            "sched_scan_ns",
            "fine_extra_ns",
            "pioman_register_ns",
            "pioman_complete_ns",
            "pioman_pass_ns",
            "fixed_spin_ns",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be >= 0")
        if self.rdv_threshold_bytes <= 0 or self.aggregation_max_bytes <= 0:
            raise ValueError("protocol thresholds must be > 0")

    @property
    def pioman_per_message_ns(self) -> int:
        """PIOMan's per-message management price (paper: 200 ns)."""
        return self.pioman_register_ns + self.pioman_complete_ns
