"""Packets and chunks: NewMadeleine's wire units.

The *collect* layer stores application messages; the *optimization* layer
assembles them into :class:`Packet` objects — possibly **aggregating**
several small messages bound for the same peer into one packet, or
**splitting** one large message into several chunks spread over multiple
rails (multirail).  A :class:`Chunk` is the slice of one message carried by
one packet.

Three packet kinds implement the protocols:

* ``DATA`` — carries chunks (eager payload copied on both hosts, or
  zero-copy rendezvous payload);
* ``RTS`` (request-to-send) / ``CTS`` (clear-to-send) — the rendezvous
  handshake for large messages, tiny control packets.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class PacketKind(enum.Enum):
    DATA = "data"
    RTS = "rts"
    CTS = "cts"


@dataclass(frozen=True)
class Chunk:
    """One message slice carried inside a packet.

    ``payload`` optionally carries the application object the message
    represents (attached to the offset-0 chunk only); the simulator prices
    transfers by byte counts, and the payload rides along so higher layers
    (Mad-MPI, the examples) can exchange real values.
    """

    src_node: int
    send_req_id: int
    tag: int
    msg_size: int
    offset: int
    length: int
    payload: object | None = None

    def __post_init__(self) -> None:
        if self.msg_size < 0 or self.length < 0 or self.offset < 0:
            raise ValueError("chunk geometry must be non-negative")
        if self.offset + self.length > self.msg_size:
            raise ValueError(
                f"chunk [{self.offset}, {self.offset + self.length}) exceeds "
                f"message size {self.msg_size}"
            )

    @property
    def is_full_message(self) -> bool:
        return self.offset == 0 and self.length == self.msg_size


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A wire unit produced by the optimization layer.

    ``eager`` data packets are copied through host memory on both sides;
    rendezvous data packets (``eager=False``) are zero-copy.  Control
    packets (RTS/CTS) carry no payload.
    """

    kind: PacketKind
    src_node: int
    dst_node: int
    header_bytes: int
    chunks: tuple[Chunk, ...] = ()
    eager: bool = True
    #: for RTS/CTS: the send request the handshake is about
    rdv_req_id: int | None = None
    #: for RTS: metadata the receiver needs to match
    rdv_tag: int | None = None
    rdv_size: int | None = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: stamped by the receiving NIC when the rx DMA completes
    arrived_at: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind is PacketKind.DATA:
            if not self.chunks:
                raise ValueError("DATA packet needs at least one chunk")
        else:
            if self.chunks:
                raise ValueError(f"{self.kind.value} packet must not carry chunks")
            if self.rdv_req_id is None:
                raise ValueError(f"{self.kind.value} packet needs rdv_req_id")
            if self.kind is PacketKind.RTS and (self.rdv_tag is None or self.rdv_size is None):
                raise ValueError("RTS packet needs rdv_tag and rdv_size")

    @property
    def payload_bytes(self) -> int:
        return sum(c.length for c in self.chunks)

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: framing header plus payload."""
        return self.header_bytes + self.payload_bytes

    @property
    def host_copy_bytes(self) -> int:
        """Bytes memcpy'd per host side: eager payloads only."""
        return self.payload_bytes if self.eager else 0

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.kind.value} "
            f"{self.src_node}->{self.dst_node} {self.payload_bytes}B "
            f"x{len(self.chunks)}chunks>"
        )


def data_packet(
    src_node: int,
    dst_node: int,
    chunks: tuple[Chunk, ...],
    *,
    header_bytes: int,
    eager: bool,
) -> Packet:
    return Packet(
        PacketKind.DATA,
        src_node,
        dst_node,
        header_bytes,
        chunks=tuple(chunks),
        eager=eager,
    )


def rts_packet(
    src_node: int, dst_node: int, req_id: int, tag: int, size: int, *, header_bytes: int
) -> Packet:
    return Packet(
        PacketKind.RTS,
        src_node,
        dst_node,
        header_bytes,
        rdv_req_id=req_id,
        rdv_tag=tag,
        rdv_size=size,
    )


def cts_packet(src_node: int, dst_node: int, req_id: int, *, header_bytes: int) -> Packet:
    return Packet(PacketKind.CTS, src_node, dst_node, header_bytes, rdv_req_id=req_id)
