"""Tasklets: softirq-style deferred execution (paper §4.2).

The paper's earlier PIOMan designs offloaded communication processing to
other cores with Linux-style *tasklets* ("I'll do it later", Wilcox 2003):
a tasklet is scheduled from anywhere, cheaply, and later executed by the
softirq machinery of a chosen core.  Figure 9 shows the price of that
convenience: ~2 µs per offloaded submission, attributed to "the complex
locking mechanism involved when a tasklet is invoked" — versus ~400 ns when
an idle core picks the work up directly through scheduler hooks.

The model charges :attr:`~repro.sim.costs.SimCosts.tasklet_schedule_ns` on
the scheduling core and :attr:`~repro.sim.costs.SimCosts.tasklet_invoke_ns`
on the executing core (state checks, the tasklet spinlock, softirq entry);
the remaining 400 ns of the paper's 2 µs emerges from the inter-core cache
transfer, which the offloaded work pays anyway.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, TYPE_CHECKING

from repro.sim.errors import SimProtocolError
from repro.sim.process import Delay, SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Core, Machine

TaskletFn = Callable[["Core"], SimGen]


class TaskletState(enum.Enum):
    IDLE = "idle"
    SCHEDULED = "scheduled"
    RUNNING = "running"


class Tasklet:
    """A deferrable unit of work.

    ``fn(core)`` is a generator function run in full effect context on the
    core that executes the tasklet.
    """

    def __init__(self, fn: TaskletFn, name: str = "tasklet") -> None:
        self.fn = fn
        self.name = name
        self.state = TaskletState.IDLE
        self.runs = 0
        self.rescheduled_while_running = False

    def __repr__(self) -> str:
        return f"<Tasklet {self.name!r} {self.state.value} runs={self.runs}>"


class TaskletEngine:
    """Per-machine tasklet scheduler, driven from the idle loops.

    Machines create one automatically; its softirq hook registers *first*
    in the hook registry so deferred work runs before ordinary idle polling,
    like real softirqs preempt the idle loop.
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._pending: list[deque[Tasklet]] = [deque() for _ in machine.cores]
        self.scheduled_total = 0
        self.executed_total = 0
        machine.hooks.register_idle(self._softirq_hook)
        machine.hooks.register_demand(self._demand)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, tasklet: Tasklet, core_index: int) -> SimGen:
        """Generator: schedule ``tasklet`` for execution on ``core_index``.

        Charges the schedule-side protocol cost to the calling core.
        Scheduling an already-scheduled tasklet is a no-op (Linux
        semantics); scheduling a *running* one marks it for re-run.
        """
        yield Delay(self.machine.costs.tasklet_schedule_ns, "lock")
        self.schedule_from_event(tasklet, core_index)

    def schedule_from_event(self, tasklet: Tasklet, core_index: int) -> None:
        """Cost-free scheduling entry point for non-thread contexts."""
        if not (0 <= core_index < self.machine.ncores):
            raise ValueError(f"no such core: {core_index}")
        if tasklet.state is TaskletState.SCHEDULED:
            return
        if tasklet.state is TaskletState.RUNNING:
            tasklet.rescheduled_while_running = True
            return
        tasklet.state = TaskletState.SCHEDULED
        self.scheduled_total += 1
        self._pending[core_index].append(tasklet)
        self.machine.scheduler.poke_idle(core_index)

    def pending_count(self, core_index: int | None = None) -> int:
        if core_index is None:
            return sum(len(q) for q in self._pending)
        return len(self._pending[core_index])

    def _demand(self) -> bool:
        return any(self._pending)

    # -- execution --------------------------------------------------------------

    def _softirq_hook(self, core: "Core") -> SimGen:
        """Idle hook: drain this core's pending tasklets."""
        queue = self._pending[core.index]
        ran = False
        while queue:
            tasklet = queue.popleft()
            if tasklet.state is not TaskletState.SCHEDULED:
                raise SimProtocolError(
                    f"tasklet {tasklet.name!r} in queue with state {tasklet.state.value}"
                )
            tasklet.state = TaskletState.RUNNING
            # softirq entry, tasklet state machine and its spinlock
            yield Delay(self.machine.costs.tasklet_invoke_ns, "lock")
            yield from tasklet.fn(core)
            tasklet.runs += 1
            self.executed_total += 1
            ran = True
            if tasklet.rescheduled_while_running:
                tasklet.rescheduled_while_running = False
                tasklet.state = TaskletState.SCHEDULED
                queue.append(tasklet)
            else:
                tasklet.state = TaskletState.IDLE
        return ran
