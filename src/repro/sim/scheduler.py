"""Marcel: the two-level thread scheduler of the PM2 suite, simulated.

The real Marcel is a user-level thread package that schedules many
lightweight threads over the machine's cores and exposes hooks (idle
loop, context switch, timer) that PIOMan uses to make communication
progress.  This module reproduces that behaviour on the discrete-event
engine:

* every core runs at most one simulated thread at a time;
* threads are cooperatively scheduled (Marcel threads mostly yield at
  synchronisation points — preemption is modelled only through timers
  kicking idle cores, see :mod:`repro.sim.timer`);
* context switches between *different* threads cost
  :attr:`~repro.sim.costs.SimCosts.ctx_switch_ns` (375 ns — half of the
  750 ns semaphore round trip the paper measures in §3.3);
* when a core has nothing to run it executes an *idle thread* that
  invokes the registered idle hooks — this is how PIOMan polls the
  network from idle cores (§4.1).

The scheduler interprets the effect vocabulary of
:mod:`repro.sim.process`; spinning on a held :class:`~repro.sim.sync.SpinLock`
keeps the core occupied and is accounted as ``"spin"`` time.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.errors import SimDeadlock, SimProtocolError, SimThreadError
from repro.sim.machine import Core, Machine
from repro.sim.process import (
    Acquire,
    Block,
    Delay,
    Release,
    SimGen,
    SimThread,
    Sleep,
    ThreadState,
    TryAcquire,
    WhereAmI,
    WhoAmI,
    YieldCore,
    run_inline,
)


# ---------------------------------------------------------------- dispatch table
#
# ``_advance`` is the simulator's hottest function after the engine loop
# itself: it classifies one effect per thread step.  A dict lookup on the
# concrete effect class replaces the isinstance chain; effect *subclasses*
# (allowed by the protocol) resolve through the chain once and are then
# cached, so steady state is a single dict hit per effect.

_EFF_INVALID = 0
_EFF_WHERE = 1
_EFF_WHO = 2
_EFF_DELAY = 3
_EFF_ACQUIRE = 4
_EFF_RELEASE = 5
_EFF_TRY = 6
_EFF_BLOCK = 7
_EFF_SLEEP = 8
_EFF_YIELD = 9

#: isinstance fallback, in the original chain order (subclass support)
_EFFECT_BASES: tuple[tuple[type, int], ...] = (
    (WhereAmI, _EFF_WHERE),
    (WhoAmI, _EFF_WHO),
    (Delay, _EFF_DELAY),
    (Acquire, _EFF_ACQUIRE),
    (Release, _EFF_RELEASE),
    (TryAcquire, _EFF_TRY),
    (Block, _EFF_BLOCK),
    (Sleep, _EFF_SLEEP),
    (YieldCore, _EFF_YIELD),
)

#: concrete class -> code cache, pre-seeded with the primitive effects
_EFFECT_CODES: dict[type, int] = {cls: code for cls, code in _EFFECT_BASES}


def _resolve_effect_code(eff: Any) -> int:
    """Slow path: classify an effect subclass (or reject a non-effect) and
    cache the verdict for its class."""
    for base, code in _EFFECT_BASES:
        if isinstance(eff, base):
            break
    else:
        code = _EFF_INVALID
    _EFFECT_CODES[type(eff)] = code
    return code


class Marcel:
    """The per-machine thread scheduler."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.engine = machine.engine
        self.costs = machine.costs
        #: number of thread-to-different-thread switches performed
        self.ctx_switches = 0
        self._live_threads = 0

    # ------------------------------------------------------------------ spawn

    def spawn(
        self,
        gen: SimGen,
        *,
        name: str = "thread",
        core: int | None = None,
        bound: bool = False,
    ) -> SimThread:
        """Create a thread running ``gen`` and make it runnable now.

        Args:
            gen: the generator to drive (a *called* generator function).
            core: preferred core index; with ``bound=True`` the thread never
                migrates off it.
        """
        if core is not None and not (0 <= core < self.machine.ncores):
            raise ValueError(f"no such core: {core}")
        if not isinstance(gen, Generator):
            raise TypeError(
                "spawn expects a generator (call your generator function first)"
            )
        thread = SimThread(gen, name, core=core, bound=bound)
        thread.state = ThreadState.READY
        self._live_threads += 1
        thread.on_finish(self._on_thread_finished)
        self._enqueue(thread)
        return thread

    def _on_thread_finished(self, thread: SimThread) -> None:
        self._live_threads -= 1

    def spawn_idle(self, core: Core) -> SimThread:
        """Create ``core``'s idle thread (runs only when the run queue is
        empty; drives the idle hooks)."""
        if core.idle_thread is not None:
            raise SimProtocolError(f"core {core.index} already has an idle thread")
        thread = SimThread(
            self._idle_loop(core),
            f"{self.machine.name}/idle{core.index}",
            core=core.index,
            bound=True,
            is_idle=True,
        )
        thread.state = ThreadState.READY
        thread.placed_on = core.index
        core.idle_thread = thread
        if core.current is None:
            self.engine.call_after(0, self._dispatch, core)
        return thread

    # ---------------------------------------------------------------- placement

    def _place(self, thread: SimThread) -> Core:
        """Pick a core for a runnable thread (sticky once placed)."""
        if thread.placed_on is not None and (thread.bound or thread.core is None):
            return self.machine.cores[thread.placed_on]
        if thread.core is not None:
            core = self.machine.cores[thread.core]
        elif thread.placed_on is not None:
            core = self.machine.cores[thread.placed_on]
        else:
            core = min(
                self.machine.cores,
                key=lambda c: (
                    len(c.runq) + (0 if c.current is None or c.current.is_idle else 1),
                    c.index,
                ),
            )
        thread.placed_on = core.index
        return core

    def _enqueue(self, thread: SimThread) -> None:
        core = self._place(thread)
        core.runq.append(thread)
        if self.machine.tracer is not None:
            self.machine._trace("runq", thread, core.index, str(len(core.runq)))
        if core.current is None:
            # dispatch through the event queue: spawn/wake never run the
            # target thread reentrantly inside the caller's stack
            self.engine.call_after(0, self._dispatch, core)
        elif core.current.is_idle:
            # a real thread appeared: get the idle loop out of its nap
            self.kick(core.current)

    # ---------------------------------------------------------------- dispatch

    def _dispatch(self, core: Core) -> None:
        """If the core is free, start its next thread (or the idle thread)."""
        if core.current is not None:
            return
        if core.runq:
            thread = core.runq.popleft()
            if self.machine.tracer is not None:
                self.machine._trace("runq", thread, core.index, str(len(core.runq)))
        elif (
            core.idle_thread is not None
            and not core.idle_thread.done
            and core.idle_thread.state is ThreadState.READY
        ):
            thread = core.idle_thread
        else:
            return
        core.current = thread
        thread.placed_on = core.index
        thread.state = ThreadState.RUNNING
        switch_ns = 0
        traced = self.machine.tracer is not None
        if core.last_thread is not None and core.last_thread is not thread:
            self.ctx_switches += 1
            switch_ns = self.costs.ctx_switch_ns
            switch_ns += self._run_inline_hooks("ctx_switch", core)
            if traced:
                self.machine._trace(
                    "switch", thread, core.index, f"from {core.last_thread.name}"
                )
        elif traced:
            self.machine._trace("dispatch", thread, core.index)
        if switch_ns:
            core.account("ctxswitch", switch_ns)
            self.engine.call_after(switch_ns, self._advance, thread)
        else:
            self._advance(thread)

    def _run_inline_hooks(self, kind: str, core: Core) -> int:
        """Run interrupt-context hooks; returns their total cost in ns."""
        total = 0
        for fn in self.machine.hooks.inline_hooks(kind):
            ns, _ = run_inline(fn(core), core_index=core.index)
            total += ns
        return total

    # ---------------------------------------------------------------- execution

    def _advance(self, thread: SimThread, value: Any = None) -> None:
        """Drive ``thread`` until its next non-inline effect."""
        if thread.done:
            return
        machine = self.machine
        core = machine.cores[thread.placed_on]
        assert core.current is thread, f"{thread} advanced while not current on {core}"
        send = value if value is not None else thread._resume_value
        thread._resume_value = None
        gen_send = thread.gen.send
        effect_codes = _EFFECT_CODES
        call_after = self.engine.call_after
        busy = core._busy
        while True:
            try:
                eff = gen_send(send)
            except StopIteration as stop:
                self._retire(core, thread, stop.value, None)
                return
            except BaseException as exc:  # noqa: BLE001 - deliberate fail-fast
                self._retire(core, thread, None, exc)
                raise SimThreadError(thread, f"thread {thread.name!r} raised") from exc
            send = None

            code = effect_codes.get(type(eff))
            if code is None:
                code = _resolve_effect_code(eff)
            if code == _EFF_DELAY:
                ns = eff.ns
                if ns == 0:
                    continue
                category = eff.category
                busy[category] = busy.get(category, 0) + ns
                call_after(ns, self._advance, thread)
                return
            if code == _EFF_WHERE:
                send = core.index
                continue
            if code == _EFF_WHO:
                send = thread
                continue
            if code == _EFF_ACQUIRE:
                lock = eff.lock
                if lock.is_null:
                    continue
                ns = lock.acquire_ns
                if ns:
                    busy["lock"] = busy.get("lock", 0) + ns
                call_after(ns, self._acquire_attempt, thread, lock)
                return
            if code == _EFF_RELEASE:
                lock = eff.lock
                if lock.is_null:
                    continue
                ns = lock.release_ns
                if ns:
                    busy["lock"] = busy.get("lock", 0) + ns
                call_after(ns, self._do_release, thread, lock)
                return
            if code == _EFF_TRY:
                lock = eff.lock
                if lock.is_null:
                    send = True
                    continue
                ns = lock.acquire_ns
                if ns:
                    busy["lock"] = busy.get("lock", 0) + ns
                call_after(ns, self._try_attempt, thread, lock)
                return
            if code == _EFF_BLOCK:
                if eff.queue is not None:
                    eff.queue.append(thread)
                thread.state = ThreadState.BLOCKED
                if machine.tracer is not None:
                    machine._trace("block", thread, core.index, eff.reason)
                self._leave_core(core, thread)
                return
            if code == _EFF_SLEEP:
                thread.state = ThreadState.SLEEPING
                if machine.tracer is not None and not thread.is_idle:
                    machine._trace("sleep", thread, core.index)
                if eff.ns is not None:
                    thread._sleep_handle = self.engine.schedule(
                        eff.ns, self._sleep_done, thread
                    )
                self._leave_core(core, thread)
                return
            if code == _EFF_YIELD:
                if thread.is_idle:
                    thread.state = ThreadState.READY
                    self._leave_core(core, thread)
                    return
                if core.runq:
                    thread.state = ThreadState.READY
                    core.runq.append(thread)
                    if machine.tracer is not None:
                        machine._trace(
                            "runq", thread, core.index, str(len(core.runq))
                        )
                    self._leave_core(core, thread)
                    return
                # nobody to yield to: go through the event queue so that
                # same-timestamp events interleave, then continue
                call_after(0, self._advance, thread)
                return
            raise SimProtocolError(f"thread {thread.name!r} yielded invalid effect {eff!r}")

    def _leave_core(self, core: Core, thread: SimThread) -> None:
        core.last_thread = thread
        core.current = None
        self._dispatch(core)

    def _retire(self, core: Core, thread: SimThread, result: Any, exc: BaseException | None) -> None:
        if self.machine.tracer is not None:
            self.machine._trace("retire", thread, core.index, "failed" if exc else "")
        if exc is not None:
            self.machine._record_failure(thread)
        thread._finish(result, exc)
        self._leave_core(core, thread)

    # ---------------------------------------------------------------- spinlocks

    def _acquire_attempt(self, thread: SimThread, lock: Any) -> None:
        if lock.owner is None:
            lock._grant(thread)
            lock._granted_at = self.engine.now
            self._advance(thread)
            return
        # contended: spin in place, keeping the core occupied
        owner = lock.owner
        core = self.machine.cores[thread.placed_on]
        if (
            owner.placed_on == core.index
            and owner.bound
            and owner is not thread
        ):
            raise SimDeadlock(
                f"{thread.name!r} spins on {lock.name!r} whose owner "
                f"{owner.name!r} is bound to the same core {core.index}"
            )
        if owner is thread:
            raise SimDeadlock(f"{thread.name!r} re-acquires non-recursive {lock.name!r}")
        lock.contentions += 1
        lock.spinners.append(thread)
        thread.state = ThreadState.SPINNING
        thread._spin_since = self.engine.now
        if self.machine.tracer is not None:
            self.machine._trace("spin-begin", thread, core.index, lock.name)

    def _do_release(self, thread: SimThread, lock: Any) -> None:
        if lock.owner is not thread:
            raise SimProtocolError(
                f"{thread.name!r} releases {lock.name!r} owned by "
                f"{lock.owner.name if lock.owner else None!r}"
            )
        lock.record_hold(self.engine.now)
        lock.owner = None
        if lock.spinners:
            nxt = lock.spinners.popleft()
            lock._grant(nxt)
            lock._granted_at = self.engine.now
            ncore = self.machine.cores[nxt.placed_on]
            spun = self.engine.now - nxt._spin_since
            ncore.account("spin", spun)
            nxt._spin_since = None
            nxt.state = ThreadState.RUNNING
            if self.machine.tracer is not None:
                self.machine._trace("spin-end", nxt, ncore.index, lock.name)
            handoff = self.costs.spin_handoff_ns
            ncore.account("lock", handoff)
            self.engine.call_after(handoff, self._advance, nxt)
        self._advance(thread)

    def _try_attempt(self, thread: SimThread, lock: Any) -> None:
        if lock.owner is None:
            lock._grant(thread)
            lock._granted_at = self.engine.now
            self._advance(thread, value=True)
        else:
            # sentinel needed: _advance treats None as "no value"
            thread._resume_value = False
            self._advance(thread)

    # ---------------------------------------------------------------- wake/kick

    def wake(self, thread: SimThread, value: Any = None, *, delay_ns: int = 0) -> None:
        """Make a BLOCKED thread runnable, optionally after ``delay_ns``
        (used to charge cross-core completion-transfer costs)."""
        if thread.done:
            return
        if thread.state is not ThreadState.BLOCKED:
            raise SimProtocolError(
                f"wake on {thread.name!r} in state {thread.state.value} (must be blocked)"
            )
        # mark in transit so a double wake is caught
        thread.state = ThreadState.READY
        if self.machine.tracer is not None:
            self.machine._trace("wake", thread, thread.placed_on, f"delay={delay_ns}")
        if delay_ns:
            self.engine.call_after(delay_ns, self._wake_now, thread, value)
        else:
            self._wake_now(thread, value)

    def _wake_now(self, thread: SimThread, value: Any) -> None:
        thread._resume_value = value
        self._enqueue(thread)

    def kick(self, thread: SimThread) -> None:
        """Interrupt a SLEEPING thread early (its Sleep resumes with False).

        Kicking a thread that is not sleeping is a no-op — the race where a
        sleeper wakes just before the kick is benign.
        """
        if thread.state is not ThreadState.SLEEPING:
            return
        if thread._sleep_handle is not None:
            thread._sleep_handle.cancel()
            thread._sleep_handle = None
        thread.state = ThreadState.READY
        thread._resume_value = False
        if self.machine.tracer is not None and not thread.is_idle:
            self.machine._trace("kick", thread, thread.placed_on)
        self._enqueue(thread)

    def poke_idle(self, core_index: int | None = None) -> None:
        """Wake napping idle threads so they re-check hooks/demand."""
        cores = (
            self.machine.cores
            if core_index is None
            else [self.machine.cores[core_index]]
        )
        for core in cores:
            t = core.idle_thread
            if t is not None and t.state is ThreadState.SLEEPING:
                self.kick(t)

    def _sleep_done(self, thread: SimThread) -> None:
        if thread.state is not ThreadState.SLEEPING:
            return
        thread._sleep_handle = None
        thread.state = ThreadState.READY
        thread._resume_value = True
        self._enqueue(thread)

    # ---------------------------------------------------------------- join

    def join(self, thread: SimThread) -> SimGen:
        """Generator: block until ``thread`` finishes; returns its result."""
        if thread.done:
            return thread.result
        box: list[SimThread] = []

        def finished(done_thread: SimThread) -> None:
            for waiter in box:
                self.wake(waiter, done_thread.result)
            box.clear()

        thread.on_finish(finished)
        value = yield Block(queue=box, reason=f"join:{thread.name}")
        return value

    # ---------------------------------------------------------------- idle loop

    def _idle_loop(self, core: Core) -> SimGen:
        costs = self.costs
        machine = self.machine
        hooks = machine.hooks
        while machine.active:
            if core.runq:
                yield YieldCore()
                continue
            yield Delay(costs.idle_loop_ns, "idle")
            ran = yield from hooks.run_idle(core)
            if not machine.active or core.runq:
                continue
            if ran:
                continue
            if hooks.idle_demand():
                yield Sleep(costs.idle_tick_ns)
            else:
                yield Sleep(None)

    # ---------------------------------------------------------------- stats

    @property
    def live_threads(self) -> int:
        """Number of spawned, unfinished (non-idle) threads."""
        return self._live_threads
