"""Cache topologies and inter-core transfer costs.

Section 4.1 of the paper shows that the cost of delegating polling to
another core is a function of *cache distance*: free on the same core,
+400 ns across a shared L2, +1.2 µs across caches on the quad-core Xeon
X5460, and +400 ns / +2.3 µs / +3.1 µs on the dual quad-core machine.
A :class:`CacheTopology` captures exactly that function.

The Xeon X5460 ("Harpertown"-class) is a quad-core built from two dual-core
dies: cores {0,1} share an L2 and cores {2,3} share an L2, matching the
paper's observation that CPU 1 shares a cache with CPU 0 while CPUs 2-3 do
not.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheTopology:
    """Hierarchy of cores → shared-L2 groups → chips, with transfer costs.

    Attributes:
        name: human-readable identifier.
        l2_groups: partition of core indices into shared-L2 sets.
        chips: partition of core indices into packages.
        same_core_ns / shared_l2_ns / same_chip_ns / cross_chip_ns:
            cache-line (completion-notification) transfer cost between two
            cores at that distance.
    """

    name: str
    l2_groups: tuple[tuple[int, ...], ...]
    chips: tuple[tuple[int, ...], ...]
    same_core_ns: int = 0
    shared_l2_ns: int = 400
    same_chip_ns: int = 1_200
    cross_chip_ns: int = 3_100
    _l2_of: dict[int, int] = field(init=False, repr=False, compare=False, default_factory=dict)
    _chip_of: dict[int, int] = field(init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        for gi, group in enumerate(self.l2_groups):
            for c in group:
                if c in self._l2_of:
                    raise ValueError(f"core {c} appears in two L2 groups")
                self._l2_of[c] = gi
        for pi, chip in enumerate(self.chips):
            for c in chip:
                if c in self._chip_of:
                    raise ValueError(f"core {c} appears in two chips")
                self._chip_of[c] = pi
        if set(self._l2_of) != set(self._chip_of):
            raise ValueError("l2_groups and chips must cover the same cores")
        if set(self._l2_of) != set(range(self.ncores)):
            raise ValueError("core indices must be contiguous from 0")
        for group in self.l2_groups:
            chips = {self._chip_of[c] for c in group}
            if len(chips) > 1:
                raise ValueError(f"L2 group {group} spans chips {chips}")

    @property
    def ncores(self) -> int:
        return len(self._l2_of)

    def _check(self, core: int) -> None:
        if core not in self._l2_of:
            raise ValueError(f"no such core: {core} (topology {self.name!r} has {self.ncores})")

    def shares_l2(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        return self._l2_of[a] == self._l2_of[b]

    def same_chip(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        return self._chip_of[a] == self._chip_of[b]

    def distance(self, a: int, b: int) -> str:
        """Symbolic cache distance: ``same-core`` | ``shared-l2`` |
        ``same-chip`` | ``cross-chip``."""
        if a == b:
            self._check(a)
            return "same-core"
        if self.shares_l2(a, b):
            return "shared-l2"
        if self.same_chip(a, b):
            return "same-chip"
        return "cross-chip"

    def transfer_ns(self, a: int, b: int) -> int:
        """Cost of moving a completion notification from core ``a`` to ``b``."""
        return {
            "same-core": self.same_core_ns,
            "shared-l2": self.shared_l2_ns,
            "same-chip": self.same_chip_ns,
            "cross-chip": self.cross_chip_ns,
        }[self.distance(a, b)]


def single_core() -> CacheTopology:
    """One core — the degenerate machine used in unit tests."""
    return CacheTopology("single-core", ((0,),), ((0,),))


def quad_xeon_x5460() -> CacheTopology:
    """The paper's main testbed node: quad-core 3.16 GHz Xeon X5460.

    Two dual-core dies; polling from the shared-L2 sibling costs +400 ns and
    from the other die +1.2 µs (paper §4.1, Fig. 8).
    """
    return CacheTopology(
        "quad-xeon-x5460",
        l2_groups=((0, 1), (2, 3)),
        chips=((0, 1, 2, 3),),
        shared_l2_ns=400,
        same_chip_ns=1_200,
        cross_chip_ns=3_100,  # unreachable on one chip; kept for uniformity
    )


def dual_quad_xeon() -> CacheTopology:
    """The paper's dual quad-core Xeon node (§4.1, in-text results).

    Shared cache +400 ns, same chip / separate cache +2.3 µs, other chip
    +3.1 µs.
    """
    return CacheTopology(
        "dual-quad-xeon",
        l2_groups=((0, 1), (2, 3), (4, 5), (6, 7)),
        chips=((0, 1, 2, 3), (4, 5, 6, 7)),
        shared_l2_ns=400,
        same_chip_ns=2_300,
        cross_chip_ns=3_100,
    )


def uniform(ncores: int, transfer_ns: int = 0) -> CacheTopology:
    """A flat machine where every remote core is the same distance away."""
    if ncores < 1:
        raise ValueError(f"ncores must be >= 1, got {ncores}")
    cores = tuple(range(ncores))
    return CacheTopology(
        f"uniform-{ncores}",
        l2_groups=tuple((c,) for c in cores),
        chips=(cores,),
        shared_l2_ns=transfer_ns,
        same_chip_ns=transfer_ns,
        cross_chip_ns=transfer_ns,
    )
