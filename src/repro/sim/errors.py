"""Exception hierarchy for the discrete-event simulator."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator errors."""


class SimDeadlock(SimError):
    """The simulation can make no further progress.

    Raised when the event queue drains while threads are still blocked, or
    when a spinlock acquisition can provably never succeed (e.g. the owner
    is runnable only on the spinning core).
    """


class SimTimeLimit(SimError):
    """``run`` hit its ``max_time`` / ``max_events`` safety limit."""


class SimThreadError(SimError):
    """A simulated thread raised an exception.

    The original exception is attached as ``__cause__`` and the offending
    thread as :attr:`thread`.
    """

    def __init__(self, thread: object, message: str) -> None:
        super().__init__(message)
        self.thread = thread


class SimProtocolError(SimError):
    """A simulated thread yielded an invalid effect or misused a primitive
    (e.g. releasing a lock it does not own)."""
