"""Simulated threads and the effect protocol they speak.

A simulated thread is a Python generator.  Each ``yield`` hands the scheduler
an *effect* — "compute for 200 ns", "acquire this spinlock", "block until
woken" — and the generator is resumed once the effect completes, receiving
the effect's result.  Library code composes with ``yield from``, so the whole
NewMadeleine/PIOMan stack is written as ordinary generator functions.

The primitive effects are deliberately few; higher-level synchronisation
(semaphores, conditions) is built on top in :mod:`repro.sim.sync`.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterable

SimGen = Generator["Effect", Any, Any]
"""Type alias for a simulated-code generator."""


class Effect:
    """Base class of everything a simulated thread may yield."""

    __slots__ = ()


class Delay(Effect):
    """Occupy the current core for ``ns`` nanoseconds.

    ``category`` tags the time for per-core accounting: ``"compute"``,
    ``"poll"``, ``"lock"``, ``"overhead"``...  (see
    :meth:`repro.sim.machine.Core.busy_ns`).
    """

    __slots__ = ("ns", "category")

    def __init__(self, ns: int, category: str = "compute") -> None:
        if ns < 0:
            raise ValueError(f"Delay must be >= 0, got {ns}")
        self.ns = int(ns)
        self.category = category

    def __repr__(self) -> str:
        return f"Delay({self.ns}, {self.category!r})"


class YieldCore(Effect):
    """Voluntarily yield the core; requeue at the back of the run queue."""

    __slots__ = ()


class Acquire(Effect):
    """Acquire a spin lock (see :class:`repro.sim.sync.SpinLock`).

    If the lock is held the thread spins: the core stays occupied and the
    elapsed time is accounted as ``"spin"``.
    """

    __slots__ = ("lock",)

    def __init__(self, lock: Any) -> None:
        self.lock = lock


class Release(Effect):
    """Release a spin lock previously acquired by this thread."""

    __slots__ = ("lock",)

    def __init__(self, lock: Any) -> None:
        self.lock = lock


class TryAcquire(Effect):
    """Non-blocking spinlock attempt; resumes with True/False."""

    __slots__ = ("lock",)

    def __init__(self, lock: Any) -> None:
        self.lock = lock


class Block(Effect):
    """Deschedule the thread until someone calls ``scheduler.wake`` on it.

    If ``queue`` is given the scheduler appends the thread to it before
    descheduling, making "enqueue self and sleep" atomic at event
    granularity.  The value passed to ``wake`` becomes the result of the
    ``yield``.
    """

    __slots__ = ("queue", "reason")

    def __init__(self, queue: Any | None = None, reason: str = "") -> None:
        self.queue = queue
        self.reason = reason


class Sleep(Effect):
    """Release the core for ``ns`` nanoseconds (timed block).

    Unlike :class:`Delay` the core is free to run other threads meanwhile.
    ``ns=None`` sleeps until kicked.  Resumes with True if the full duration
    elapsed, False if the sleep was interrupted by ``scheduler.kick``.
    """

    __slots__ = ("ns",)

    def __init__(self, ns: int | None) -> None:
        if ns is not None:
            if ns < 0:
                raise ValueError(f"Sleep must be >= 0, got {ns}")
            ns = int(ns)
        self.ns = ns


class WhereAmI(Effect):
    """Resume immediately with the index of the core the thread runs on.

    Communication code uses it to tag completions with the core that
    produced them, which prices the inter-core notification (Fig. 8).
    """

    __slots__ = ()


class WhoAmI(Effect):
    """Resume immediately with the running :class:`SimThread` itself
    (thread identity, e.g. for MPI thread-level enforcement)."""

    __slots__ = ()


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    SPINNING = "spinning"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    DONE = "done"
    FAILED = "failed"


class SimThread:
    """A simulated thread: a generator plus scheduling state.

    Create via :meth:`repro.sim.scheduler.Marcel.spawn`; never instantiate
    directly in user code.

    ``__slots__``: concurrent benchmarks create one SimThread per flow per
    iteration, so the per-instance dict is measurable allocation traffic.
    """

    __slots__ = (
        "tid",
        "gen",
        "name",
        "state",
        "done",
        "core",
        "bound",
        "is_idle",
        "placed_on",
        "result",
        "exc",
        "_finish_cbs",
        "_sleep_handle",
        "_spin_since",
        "_resume_value",
    )

    _counter = 0

    def __init__(
        self,
        gen: SimGen,
        name: str,
        *,
        core: int | None = None,
        bound: bool = False,
        is_idle: bool = False,
    ) -> None:
        SimThread._counter += 1
        self.tid = SimThread._counter
        self.gen = gen
        self.name = name
        self.state = ThreadState.NEW
        #: plain attribute, not a property: the `until` predicates of every
        #: benchmark poll it once per event, so the attribute read matters
        self.done = False
        #: preferred/bound core index (None = any)
        self.core = core
        #: if True the thread never migrates off :attr:`core`
        self.bound = bound
        self.is_idle = is_idle
        #: core index the thread is currently placed on (set by scheduler)
        self.placed_on: int | None = None
        self.result: Any = None
        self.exc: BaseException | None = None
        #: callbacks run when the thread finishes (completion, joins)
        self._finish_cbs: list[Callable[["SimThread"], None]] = []
        # scheduler bookkeeping
        self._sleep_handle: Any = None
        self._spin_since: int | None = None
        self._resume_value: Any = None

    @property
    def failed(self) -> bool:
        return self.state is ThreadState.FAILED

    def on_finish(self, cb: Callable[["SimThread"], None]) -> None:
        """Register ``cb(thread)`` to run when the thread completes."""
        if self.done:
            cb(self)
        else:
            self._finish_cbs.append(cb)

    def _finish(self, result: Any, exc: BaseException | None) -> None:
        self.result = result
        self.exc = exc
        self.state = ThreadState.FAILED if exc is not None else ThreadState.DONE
        self.done = True
        cbs, self._finish_cbs = self._finish_cbs, []
        for cb in cbs:
            cb(self)

    def __repr__(self) -> str:
        return f"<SimThread {self.tid} {self.name!r} {self.state.value}>"


def run_inline(gen: SimGen, *, core_index: int | None = None) -> tuple[int, Any]:
    """Drive a generator to completion *outside* the scheduler.

    Only non-blocking effects are allowed — this is the restricted
    execution context of interrupt-style hooks (context-switch and timer
    hooks), which must not block or spin:

    * :class:`Delay` — durations are summed into the returned total;
    * :class:`TryAcquire` / :class:`Release` — non-blocking lock attempts;
    * :class:`WhereAmI` — answered with ``core_index`` (the interrupted
      core, supplied by the caller).

    Returns ``(total_delay_ns, return_value)``.

    Raises:
        repro.sim.errors.SimProtocolError: on any blocking effect.
    """
    from repro.sim.errors import SimProtocolError

    total = 0
    try:
        eff = next(gen)
        while True:
            if isinstance(eff, Delay):
                total += eff.ns
                eff = gen.send(None)
            elif isinstance(eff, TryAcquire):
                ok = eff.lock.try_acquire_inline()
                total += eff.lock.acquire_ns
                eff = gen.send(ok)
            elif isinstance(eff, Release):
                eff.lock.release_inline()
                total += eff.lock.release_ns
                eff = gen.send(None)
            elif isinstance(eff, WhereAmI):
                eff = gen.send(core_index)
            else:
                raise SimProtocolError(
                    f"effect {eff!r} is not allowed in inline (interrupt) context"
                )
    except StopIteration as stop:
        return total, stop.value


def sequence(effects: Iterable[Effect]) -> SimGen:
    """A generator yielding the given effects in order (testing helper)."""
    result = None
    for eff in effects:
        result = yield eff
    return result
