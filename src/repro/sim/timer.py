"""Per-core timer interrupts.

Marcel exposes a timer-interrupt hook (paper §3.3) so PIOMan can poll the
network even while every core runs compute threads.  The model is *soft*:
a tick charges its overhead to the core, runs the registered timer hooks in
interrupt context (inline, non-blocking — see
:func:`repro.sim.process.run_inline`), and pokes the core's idle thread.
Running compute generators are not split mid-``Delay``; for the paper's
experiments the idle-core path dominates and the timer is a liveness
backstop, which this model preserves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import EventHandle
from repro.sim.process import run_inline

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class TimerSystem:
    """Recurring per-core ticks driving the timer hooks."""

    def __init__(self, machine: "Machine", period_ns: int | None = None) -> None:
        self.machine = machine
        self.period_ns = period_ns if period_ns is not None else machine.costs.timer_period_ns
        if self.period_ns <= 0:
            raise ValueError(f"timer period must be > 0, got {self.period_ns}")
        self._handles: dict[int, EventHandle] = {}
        self.ticks = 0

    @property
    def running(self) -> bool:
        return bool(self._handles)

    def start(self, cores: list[int] | None = None) -> None:
        """Start ticking on the given cores (default: all)."""
        indices = range(self.machine.ncores) if cores is None else cores
        for idx in indices:
            if idx not in self._handles:
                self._handles[idx] = self.machine.engine.schedule(
                    self.period_ns, self._tick, idx
                )

    def stop(self) -> None:
        for handle in self._handles.values():
            handle.cancel()
        self._handles.clear()

    def _tick(self, core_index: int) -> None:
        if core_index not in self._handles or not self.machine.active:
            return
        self.ticks += 1
        core = self.machine.cores[core_index]
        cost = self.machine.costs.timer_overhead_ns
        for fn in self.machine.hooks.inline_hooks("timer"):
            ns, _ = run_inline(fn(core), core_index=core.index)
            cost += ns
        core.account("timer", cost)
        # give napping idle loops a chance to notice new work
        self.machine.scheduler.poke_idle(core_index)
        self._handles[core_index] = self.machine.engine.schedule(
            self.period_ns, self._tick, core_index
        )
