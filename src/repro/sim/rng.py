"""Deterministic per-component random streams.

The simulator is fully deterministic by default: every cost is a fixed
calibrated constant.  Optional measurement jitter (to make the synthetic
curves look like measured ones, and to exercise the statistics code on
non-degenerate samples) is drawn from named streams so that adding a
consumer never perturbs another component's sequence.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngHub:
    """A factory of independent, reproducibly-seeded random generators."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence,
        regardless of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def jitter_ns(self, name: str, scale_ns: float) -> int:
        """A non-negative jitter sample: half-normal with the given scale.

        ``scale_ns == 0`` short-circuits to 0 without consuming randomness,
        so fully deterministic runs stay deterministic even if streams were
        created.
        """
        if scale_ns < 0:
            raise ValueError(f"scale_ns must be >= 0, got {scale_ns}")
        if scale_ns == 0:
            return 0
        return int(abs(self.stream(name).normal(0.0, scale_ns)))
