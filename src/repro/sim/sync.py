"""Simulated synchronisation primitives with calibrated costs.

Three families, matching the mechanisms §3 of the paper compares:

* :class:`SpinLock` — the paper's choice for the very short critical
  sections of the communication library ("for such very short critical
  sections, spinlocks are more efficient than plain mutex").  An
  uncontended acquire/release cycle costs 70 ns; contention burns core
  time actively (no context switch), accounted as ``"spin"``.
* :class:`NullLock` — the "no locking" baseline; free, for single-threaded
  configurations and for structurally-unneeded lock points under a given
  locking policy.
* :class:`Semaphore` / :class:`Condition` — blocking primitives.  Blocking
  releases the core (a context switch, 375 ns each way — the 750 ns round
  trip of Fig. 7) and lets the idle loop poll.

:class:`Completion` is the one-shot completion flag used by communication
requests; it models *cache visibility*: a completion fired from core *k*
becomes visible to core *c* only after ``topology.transfer_ns(k, c)`` —
the effect measured by Fig. 8.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.costs import SimCosts
from repro.sim.machine import Machine
from repro.sim.process import Acquire, Block, Delay, Release, SimGen, SimThread


class _LockBase:
    """Common interface consumed by the scheduler.

    ``__slots__``: every lock-point acquire/release crosses these objects,
    and fine-grained policies create one lock per point — the per-instance
    dict is measurable allocation and lookup traffic.
    """

    __slots__ = (
        "name",
        "acquire_ns",
        "release_ns",
        "owner",
        "spinners",
        "acquisitions",
        "contentions",
        "holds",
        "hold_ns_total",
        "hold_max_ns",
        "hold_hist",
        "_granted_at",
    )

    is_null = False

    def __init__(self, name: str, acquire_ns: int, release_ns: int) -> None:
        self.name = name
        self.acquire_ns = acquire_ns
        self.release_ns = release_ns
        self.owner: SimThread | None = None
        self.spinners: deque[SimThread] = deque()
        self.acquisitions = 0
        self.contentions = 0
        #: hold-time statistics (scheduler-granted holds; inline-context
        #: holds have no clock and stay untracked)
        self.holds = 0
        self.hold_ns_total = 0
        self.hold_max_ns = 0
        #: log2-bucket histogram: bucket b counts holds of [2^(b-1), 2^b) ns
        self.hold_hist: dict[int, int] = {}
        self._granted_at: int | None = None

    def _grant(self, thread: SimThread) -> None:
        self.owner = thread
        self.acquisitions += 1

    def record_hold(self, now_ns: int) -> None:
        """Close the hold opened at the last scheduler grant (no-op when
        the grant time is unknown, e.g. inline-context grants)."""
        if self._granted_at is None:
            return
        held = now_ns - self._granted_at
        self._granted_at = None
        self.holds += 1
        self.hold_ns_total += held
        if held > self.hold_max_ns:
            self.hold_max_ns = held
        bucket = held.bit_length()
        self.hold_hist[bucket] = self.hold_hist.get(bucket, 0) + 1

    @property
    def held(self) -> bool:
        return self.owner is not None

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else None
        return f"<{type(self).__name__} {self.name!r} owner={owner!r}>"


class NullLock(_LockBase):
    """A lock that costs nothing and excludes nobody.

    Locking policies install it at every lock point they do not need, so the
    library code paths are identical across policies — only the price of the
    lock objects differs, exactly like compiling the real library with a
    no-op lock macro.
    """

    __slots__ = ()

    is_null = True

    def __init__(self, name: str = "null") -> None:
        super().__init__(name, 0, 0)

    # inline context helpers (TryAcquire in interrupt hooks)
    def try_acquire_inline(self) -> bool:
        return True

    def release_inline(self) -> None:
        return None


class SpinLock(_LockBase):
    """A costed test-and-set spinlock.

    Acquire with ``yield Acquire(lock)``, release with ``yield
    Release(lock)``; the scheduler charges :attr:`acquire_ns` /
    :attr:`release_ns` (35 ns each by default — a 70 ns cycle) and makes
    contending threads spin in place.
    """

    __slots__ = ()

    def __init__(
        self,
        name: str = "spinlock",
        *,
        costs: SimCosts | None = None,
        acquire_ns: int | None = None,
        release_ns: int | None = None,
    ) -> None:
        costs = costs or SimCosts()
        super().__init__(
            name,
            costs.spin_acquire_ns if acquire_ns is None else acquire_ns,
            costs.spin_release_ns if release_ns is None else release_ns,
        )

    # inline context helpers (used by interrupt-style hooks via TryAcquire)
    def try_acquire_inline(self) -> bool:
        if self.owner is None:
            self._grant_inline()
            return True
        self.contentions += 1
        return False

    def _grant_inline(self) -> None:
        self.owner = _INLINE_OWNER
        self.acquisitions += 1

    def release_inline(self) -> None:
        if self.owner is not _INLINE_OWNER:
            from repro.sim.errors import SimProtocolError

            raise SimProtocolError(f"inline release of {self.name!r} not inline-owned")
        self.owner = None


class _InlineOwner:
    """Sentinel owner for locks taken from interrupt context."""

    name = "<interrupt>"
    placed_on = None
    bound = False

    def __repr__(self) -> str:  # pragma: no cover
        return "<interrupt-context>"


_INLINE_OWNER: Any = _InlineOwner()


def with_lock(lock: _LockBase, body: SimGen) -> SimGen:
    """Run a generator under ``lock`` (acquire → body → release).

    The release is *not* exception-safe by design: a simulated thread dying
    with a held lock is a bug we want loud, mirroring the real library.
    """
    yield Acquire(lock)
    result = yield from body
    yield Release(lock)
    return result


class Semaphore:
    """Counting semaphore with blocking waiters.

    ``wait``/``signal`` are generator methods (they charge the fast-path
    cost); :meth:`post` is a plain function for completion paths that run
    outside a simulated thread (e.g. straight from a NIC delivery event).
    """

    __slots__ = ("machine", "value", "name", "waiters")

    def __init__(self, machine: Machine, value: int = 0, name: str = "sem") -> None:
        if value < 0:
            raise ValueError(f"semaphore value must be >= 0, got {value}")
        self.machine = machine
        self.value = value
        self.name = name
        self.waiters: deque[SimThread] = deque()

    def wait(self) -> SimGen:
        """Decrement, blocking while the count is zero."""
        yield Delay(self.machine.costs.sem_fast_ns, "overhead")
        if self.value > 0:
            self.value -= 1
            return
        yield Block(queue=self.waiters, reason=f"sem:{self.name}")

    def try_wait(self) -> SimGen:
        """Non-blocking decrement; returns True on success."""
        yield Delay(self.machine.costs.sem_fast_ns, "overhead")
        if self.value > 0:
            self.value -= 1
            return True
        return False

    def signal(self, count: int = 1) -> SimGen:
        """Increment, waking blocked waiters first."""
        yield Delay(self.machine.costs.sem_fast_ns, "overhead")
        self.post(count)

    def post(self, count: int = 1, *, wake_delay_ns: int = 0) -> None:
        """Signal callable from any context.

        Waking a blocked thread pays the scheduler's wake-up path
        (:attr:`~repro.sim.costs.SimCosts.wake_latency_ns`) on top of any
        caller-supplied delay.
        """
        for _ in range(count):
            if self.waiters:
                waiter = self.waiters.popleft()
                self.machine.scheduler.wake(
                    waiter,
                    delay_ns=wake_delay_ns + self.machine.costs.wake_latency_ns,
                )
            else:
                self.value += 1


class Condition:
    """Condition variable used with an external :class:`SpinLock`.

    ``wait`` releases the lock, blocks, and re-acquires before returning —
    the classic monitor protocol.
    """

    __slots__ = ("machine", "lock", "name", "waiters")

    def __init__(self, machine: Machine, lock: _LockBase, name: str = "cond") -> None:
        self.machine = machine
        self.lock = lock
        self.name = name
        self.waiters: deque[SimThread] = deque()

    def wait(self) -> SimGen:
        yield Release(self.lock)
        yield Block(queue=self.waiters, reason=f"cond:{self.name}")
        yield Acquire(self.lock)

    def notify(self, count: int = 1) -> None:
        """Wake up to ``count`` waiters (plain function; caller holds the
        lock by convention)."""
        for _ in range(count):
            if not self.waiters:
                break
            self.machine.scheduler.wake(self.waiters.popleft())

    def notify_all(self) -> None:
        self.notify(len(self.waiters))


class Completion:
    """One-shot completion flag with cache-visibility semantics.

    A completion *fired* from core ``k`` at time ``t`` becomes *visible* to
    core ``c`` at ``t + topology.transfer_ns(k, c)``:

    * blocked waiters are woken with exactly that delay;
    * busy-wait loops must poll :meth:`visible` (not :attr:`fired`) so the
      same cost applies — this is what Fig. 8 measures.

    ``fire_core=None`` means "fired from outside any core" (e.g. test
    drivers); visibility is then immediate.
    """

    __slots__ = (
        "machine",
        "name",
        "fired",
        "value",
        "fire_time",
        "fire_core",
        "waiters",
        "_transfer_seen",
    )

    def __init__(self, machine: Machine, name: str = "completion") -> None:
        self.machine = machine
        self.name = name
        self.fired = False
        self.value: Any = None
        self.fire_time: int | None = None
        self.fire_core: int | None = None
        self.waiters: deque[SimThread] = deque()
        #: reader cores whose cache-line transfer has been attributed
        self._transfer_seen: set[int] = set()

    def fire(self, value: Any = None, *, core: int | None = None) -> None:
        """Mark complete; wake blocked waiters with the transfer cost.

        Idempotent firing is a protocol error (completions are one-shot).
        """
        if self.fired:
            from repro.sim.errors import SimProtocolError

            raise SimProtocolError(f"completion {self.name!r} fired twice")
        self.fired = True
        self.value = value
        self.fire_time = self.machine.engine.now
        self.fire_core = core
        while self.waiters:
            waiter = self.waiters.popleft()
            # a blocked waiter pays the scheduler wake-up path plus the
            # firing-core -> waiter-core cache transfer (Fig. 8)
            delay = self.machine.costs.wake_latency_ns
            if core is not None and waiter.placed_on is not None:
                transfer = self.machine.transfer_ns(core, waiter.placed_on)
                delay += transfer
                self.machine.transfer_charged_ns += transfer
            self.machine.scheduler.wake(waiter, value, delay_ns=delay)

    def visible(self, core_index: int, now: int | None = None) -> bool:
        """Is the completion visible to a reader on ``core_index`` yet?"""
        if not self.fired:
            return False
        if self.fire_core is None:
            return True
        now = self.machine.engine.now if now is None else now
        transfer = self.machine.transfer_ns(self.fire_core, core_index)
        if now < self.fire_time + transfer:
            return False
        # the polled path pays the transfer implicitly (visibility latency);
        # attribute it once per reader core so repro.obs can decompose it
        if transfer and core_index not in self._transfer_seen:
            self._transfer_seen.add(core_index)
            self.machine.transfer_charged_ns += transfer
        return True

    def wait(self) -> SimGen:
        """Block until fired; returns the completion value.

        The waiter pays the fire-core → waiter-core transfer cost via its
        delayed wake.
        """
        if self.fired:
            # already fired: a late joiner still pays any residual visibility
            # delay (normally zero by the time anyone re-checks)
            return self.value
        value = yield Block(queue=self.waiters, reason=f"completion:{self.name}")
        return value
