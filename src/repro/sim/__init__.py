"""Discrete-event simulation substrate: engine, machine, Marcel scheduler.

This package is the stand-in for the paper's hardware testbed and for the
Marcel thread library.  It knows nothing about networks or the
communication library — those live in :mod:`repro.net` and
:mod:`repro.core` and are built on the effect protocol defined here.

Typical setup::

    from repro.sim import Engine, Machine, quad_xeon_x5460

    engine = Engine()
    node = Machine(engine, quad_xeon_x5460(), name="nodeA")
    thread = node.scheduler.spawn(my_generator(), name="app", core=0, bound=True)
    engine.run(until=lambda: thread.done)
"""

from repro.sim.costs import SimCosts
from repro.sim.debug import InvariantViolation, check_invariants, check_lock_invariants
from repro.sim.engine import Engine, EventHandle
from repro.sim.errors import (
    SimDeadlock,
    SimError,
    SimProtocolError,
    SimThreadError,
    SimTimeLimit,
)
from repro.sim.machine import BUSY_CATEGORIES, Core, Machine
from repro.sim.process import (
    Acquire,
    Block,
    Delay,
    Effect,
    Release,
    SimGen,
    SimThread,
    Sleep,
    ThreadState,
    TryAcquire,
    WhereAmI,
    WhoAmI,
    YieldCore,
    run_inline,
    sequence,
)
from repro.sim.rng import RngHub
from repro.sim.scheduler import Marcel
from repro.sim.sync import (
    Completion,
    Condition,
    NullLock,
    Semaphore,
    SpinLock,
    with_lock,
)
from repro.sim.tasklet import Tasklet, TaskletEngine, TaskletState
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.timer import TimerSystem
from repro.sim.topology import (
    CacheTopology,
    dual_quad_xeon,
    quad_xeon_x5460,
    single_core,
    uniform,
)

__all__ = [
    "SimCosts",
    "InvariantViolation",
    "check_invariants",
    "check_lock_invariants",
    "TraceEvent",
    "Tracer",
    "Engine",
    "EventHandle",
    "SimDeadlock",
    "SimError",
    "SimProtocolError",
    "SimThreadError",
    "SimTimeLimit",
    "BUSY_CATEGORIES",
    "Core",
    "Machine",
    "Acquire",
    "Block",
    "Delay",
    "Effect",
    "Release",
    "SimGen",
    "SimThread",
    "Sleep",
    "ThreadState",
    "TryAcquire",
    "WhereAmI",
    "WhoAmI",
    "YieldCore",
    "run_inline",
    "sequence",
    "RngHub",
    "Marcel",
    "Completion",
    "Condition",
    "NullLock",
    "Semaphore",
    "SpinLock",
    "with_lock",
    "Tasklet",
    "TaskletEngine",
    "TaskletState",
    "TimerSystem",
    "CacheTopology",
    "dual_quad_xeon",
    "quad_xeon_x5460",
    "single_core",
    "uniform",
]
