"""A simulated multicore node: cores, accounting, hooks, tasklets, scheduler.

One :class:`Machine` models one cluster node (e.g. one quad-core Xeon X5460
box).  Several machines share a single :class:`~repro.sim.engine.Engine` —
they share simulated wall-clock time, like real nodes do — but each has its
own cores, scheduler (:class:`~repro.sim.scheduler.Marcel`), hook registry
and tasklet engine.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sim.costs import SimCosts
from repro.sim.engine import Engine
from repro.sim.errors import SimThreadError
from repro.sim.hooks import HookRegistry
from repro.sim.rng import RngHub
from repro.sim.topology import CacheTopology, single_core

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimThread
    from repro.sim.scheduler import Marcel
    from repro.sim.tasklet import TaskletEngine

#: accounting categories used by :class:`Core`
BUSY_CATEGORIES = (
    "compute",
    "poll",
    "lock",
    "spin",
    "ctxswitch",
    "idle",
    "overhead",
    "net",
    "timer",
)


class Core:
    """One CPU core: a run queue, the currently-placed thread, and a
    per-category busy-time ledger used by the utilization experiments."""

    def __init__(self, machine: "Machine", index: int) -> None:
        self.machine = machine
        self.index = index
        self.runq: deque[SimThread] = deque()
        #: thread currently occupying the core (running, delayed or spinning)
        self.current: SimThread | None = None
        #: last non-idle... last thread that ran, for context-switch charging
        self.last_thread: SimThread | None = None
        self.idle_thread: SimThread | None = None
        self._busy: dict[str, int] = {}

    def account(self, category: str, ns: int) -> None:
        """Add ``ns`` of busy time under ``category``."""
        if ns:
            self._busy[category] = self._busy.get(category, 0) + ns

    def busy_ns(self, category: str | None = None) -> int:
        """Total accounted time, optionally restricted to one category."""
        if category is None:
            return sum(self._busy.values())
        return self._busy.get(category, 0)

    def busy_breakdown(self) -> dict[str, int]:
        return dict(self._busy)

    def __repr__(self) -> str:
        cur = self.current.name if self.current else None
        return f"<Core {self.machine.name}/{self.index} current={cur!r} runq={len(self.runq)}>"


class Machine:
    """A simulated SMP node.

    Args:
        engine: shared discrete-event engine.
        topology: cache topology (defaults to a single core).
        costs: substrate cost calibration.
        name: node name used in thread names and diagnostics.
        rng: optional jitter hub (deterministic when omitted).
        jitter_ns: half-normal jitter scale applied by components that opt
            into noise (0 = fully deterministic).
    """

    def __init__(
        self,
        engine: Engine,
        topology: CacheTopology | None = None,
        *,
        costs: SimCosts | None = None,
        name: str = "node",
        rng: RngHub | None = None,
        jitter_ns: int = 0,
    ) -> None:
        from repro.sim.scheduler import Marcel
        from repro.sim.tasklet import TaskletEngine

        self.engine = engine
        self.topology = topology or single_core()
        self.costs = costs or SimCosts()
        self.name = name
        self.rng = rng or RngHub(0)
        self.jitter_ns = jitter_ns
        self.active = True
        self.cores = [Core(self, i) for i in range(self.topology.ncores)]
        self.hooks = HookRegistry()
        self.scheduler: Marcel = Marcel(self)
        self.tasklets: TaskletEngine = TaskletEngine(self)
        self._failures: list[SimThread] = []
        #: optional execution tracer (see :mod:`repro.sim.trace`)
        self.tracer = None
        #: total cache-distance transfer ns charged on this node (completion
        #: visibility + cross-core descriptor hand-offs) — read by repro.obs
        self.transfer_charged_ns = 0

    # -- convenience ---------------------------------------------------------

    @property
    def ncores(self) -> int:
        return len(self.cores)

    def core(self, index: int) -> Core:
        return self.cores[index]

    def transfer_ns(self, src_core: int, dst_core: int) -> int:
        """Inter-core completion-notification cost (cache distance)."""
        return self.topology.transfer_ns(src_core, dst_core)

    def jitter(self, stream: str) -> int:
        """Sample this machine's configured jitter (0 when disabled)."""
        return self.rng.jitter_ns(f"{self.name}:{stream}", self.jitter_ns)

    # -- idle loops -------------------------------------------------------------

    def enable_idle_loops(self, cores: list[int] | None = None) -> None:
        """Spawn the per-core idle threads that drive idle hooks.

        Idempotent per core.  Required for passive waiting, background
        progression and tasklets; plain busy-wait benchmarks can skip it.
        """
        targets = self.cores if cores is None else [self.cores[i] for i in cores]
        for core in targets:
            if core.idle_thread is None:
                self.scheduler.spawn_idle(core)

    def shutdown(self) -> None:
        """Stop idle loops so the event queue can drain."""
        self.active = False
        for core in self.cores:
            if core.idle_thread is not None and not core.idle_thread.done:
                self.scheduler.kick(core.idle_thread)

    # -- tracing ---------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Record scheduler events into ``tracer`` from now on."""
        self.tracer = tracer

    def _trace(self, kind: str, thread, core_index: int | None, detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(self.engine.now, kind, thread, core_index, detail)

    # -- failure tracking ----------------------------------------------------------

    def _record_failure(self, thread: SimThread) -> None:
        self._failures.append(thread)

    def check_failures(self) -> None:
        """Re-raise the first simulated-thread exception, if any."""
        if self._failures:
            t = self._failures[0]
            raise SimThreadError(t, f"thread {t.name!r} failed") from t.exc

    # -- reporting --------------------------------------------------------------------

    def utilization(self) -> dict[int, dict[str, int]]:
        """Per-core busy-time breakdown (ns by category)."""
        return {c.index: c.busy_breakdown() for c in self.cores}

    def __repr__(self) -> str:
        return f"<Machine {self.name!r} {self.topology.name} x{self.ncores}>"
