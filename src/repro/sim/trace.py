"""Execution tracing: the profiling instrument behind the analysis.

"We have implemented all presented features in our NewMadeleine
communication library and we have extensively profiled the code" (paper
§1).  A :class:`Tracer` attached to a machine records scheduler-level
events — dispatches, context switches, blocks/wakes, spin episodes —
with zero overhead when absent (the scheduler guards every hook with a
single ``if``).

Typical use::

    tracer = Tracer()
    machine.attach_tracer(tracer)
    ... run the workload ...
    print(tracer.summary_table())
    for line in tracer.dump(limit=50):
        print(line)
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass
from itertools import islice
from typing import Iterable, TYPE_CHECKING

from repro.util.tables import render_table
from repro.util.units import format_ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimThread

#: recorded event kinds
KINDS = (
    "dispatch",  # a thread starts running on a core
    "switch",  # dispatch that changed threads (context switch charged)
    "retire",  # thread finished
    "block",  # thread descheduled waiting for a wake
    "wake",  # blocked thread made runnable
    "sleep",  # timed/untimed sleep
    "kick",  # sleep interrupted
    "spin-begin",  # lock found held; active spinning starts
    "spin-end",  # contended lock granted
    "runq",  # run-queue depth changed (detail carries the new depth)
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded scheduler event."""

    time: int
    kind: str
    thread: str
    core: int | None
    detail: str = ""

    def render(self) -> str:
        where = f"core{self.core}" if self.core is not None else "-"
        text = f"{self.time:>12} ns  {where:>6}  {self.kind:<10} {self.thread}"
        if self.detail:
            text += f"  ({self.detail})"
        return text


class Tracer:
    """Bounded in-memory event recorder with ring-buffer semantics.

    When more than ``max_events`` events arrive, the *oldest* events are
    discarded (and counted in :attr:`dropped`) so that end-of-run queries —
    the ones every report runs — always see the most recent window.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be > 0")
        self.max_events = max_events
        self.events: deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped = 0

    # -- recording ------------------------------------------------------------

    def record(
        self,
        time: int,
        kind: str,
        thread: "SimThread",
        core: int | None,
        detail: str = "",
    ) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown trace kind {kind!r}")
        if len(self.events) == self.max_events:
            self.dropped += 1  # the deque evicts its oldest event
        self.events.append(TraceEvent(time, kind, thread.name, core, detail))

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_thread(self, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.thread == name]

    def between(self, start_ns: int, end_ns: int) -> list[TraceEvent]:
        return [e for e in self.events if start_ns <= e.time < end_ns]

    def _paired(self, begin: str, end: str) -> list[tuple[str, int, int]]:
        """Match ``begin``/``end`` events per thread with LIFO stacks.

        A plain one-slot dict would lose the outer episode whenever the
        same thread emits a second ``begin`` before the matching ``end``
        (re-entrant pairing); a stack pairs each ``end`` with the most
        recent unmatched ``begin``.  ``end`` events whose ``begin`` fell
        off the ring buffer are skipped.
        """
        open_stack: dict[str, list[int]] = defaultdict(list)
        episodes: list[tuple[str, int, int]] = []
        for event in self.events:
            if event.kind == begin:
                open_stack[event.thread].append(event.time)
            elif event.kind == end:
                stack = open_stack.get(event.thread)
                if stack:
                    start = stack.pop()
                    episodes.append((event.thread, start, event.time - start))
        return episodes

    def spin_episodes(self) -> list[tuple[str, int, int]]:
        """(thread, start, duration) of every completed spin episode."""
        return self._paired("spin-begin", "spin-end")

    def block_latencies(self) -> list[tuple[str, int]]:
        """(thread, block-to-wake time) pairs."""
        return [(thread, dur) for thread, _start, dur in self._paired("block", "wake")]

    # -- reports ------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Per-kind event counts, plus the ``"dropped"`` overflow count."""
        out = dict(Counter(e.kind for e in self.events))
        out["dropped"] = self.dropped
        return out

    def summary_table(self) -> str:
        """Per-thread event summary."""
        per_thread: dict[str, Counter] = defaultdict(Counter)
        for event in self.events:
            per_thread[event.thread][event.kind] += 1
        headers = ["thread", "dispatches", "switches", "blocks", "spins"]
        rows = []
        for name in sorted(per_thread):
            c = per_thread[name]
            rows.append(
                [name, c["dispatch"], c["switch"], c["block"], c["spin-begin"]]
            )
        table = render_table(headers, rows, title="Trace summary")
        if self.dropped:
            table += (
                f"\n!! {self.dropped} event(s) dropped (ring buffer kept the "
                f"newest {self.max_events}); totals above are partial"
            )
        return table

    def dump(self, limit: int | None = None) -> Iterable[str]:
        events = self.events if limit is None else islice(self.events, limit)
        return [e.render() for e in events]

    def spin_time_ns(self) -> int:
        return sum(d for _, _, d in self.spin_episodes())

    def __repr__(self) -> str:
        return (
            f"<Tracer {len(self.events)} events, dropped={self.dropped}, "
            f"spin={format_ns(self.spin_time_ns())}>"
        )
