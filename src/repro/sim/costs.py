"""Calibrated costs of the simulated machine and thread scheduler.

These constants model the host-side mechanisms whose prices the paper
measures (§3): spinlock cycles, blocking-primitive context switches, the
tasklet protocol.  The defaults are calibrated against the values the paper
reports on the quad-core Xeon X5460 testbed:

* a spinlock acquire/release cycle costs 70 ns (§3.1: "each acquire/release
  cycle costs 70 ns") — split 35/35 here;
* a semaphore-based wait adds 750 ns of context switching (§3.3, Fig. 7) —
  one switch away from the blocking thread plus one switch back, 375 ns each;
* offloading via tasklets adds ~2 µs, of which 400 ns is the inter-core
  cache transfer (§4.2, Fig. 9) — the remaining 1.6 µs is the tasklet
  scheduling/locking protocol, split between schedule and invoke below.

The network-facing costs live in :mod:`repro.core.costmodel`; this module is
strictly about the machine substrate so that :mod:`repro.sim` stays
independent of the communication library.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimCosts:
    """All nanosecond prices charged by the machine/scheduler substrate."""

    # -- spinlocks (paper §3.1) ---------------------------------------------
    spin_acquire_ns: int = 35
    spin_release_ns: int = 35
    #: extra delay between a release and a spinning thread obtaining the lock
    spin_handoff_ns: int = 10

    # -- blocking primitives (paper §3.3) -------------------------------------
    #: one context switch (half of the 750 ns semaphore round trip)
    ctx_switch_ns: int = 375
    #: scheduler wake-up path of a *blocked* thread: run-queue insertion,
    #: priority recalculation, cache warm-up of the restored context.
    #: Together with the dispatch context switch this is the part of the
    #: semaphore round trip that sits on the waiter's critical path
    #: (the switch *into* the idle loop overlaps the message flight)
    wake_latency_ns: int = 375
    #: fast path of a semaphore/condition operation (no blocking)
    sem_fast_ns: int = 25

    # -- idle loop / hooks ------------------------------------------------------
    #: pause between idle-loop hook passes when hooks found nothing to do
    idle_tick_ns: int = 200
    #: bookkeeping charged per idle-loop pass before hooks run
    idle_loop_ns: int = 20

    # -- timer interrupts ---------------------------------------------------------
    timer_period_ns: int = 1_000_000  # Linux-2.6-ish 1 kHz tick
    timer_overhead_ns: int = 300

    # -- tasklets (paper §4.2) -----------------------------------------------------
    tasklet_schedule_ns: int = 600
    tasklet_invoke_ns: int = 1_000

    # -- thread management -----------------------------------------------------------
    spawn_ns: int = 500

    def scaled(self, factor: float) -> "SimCosts":
        """A copy with every cost multiplied by ``factor`` (for sensitivity
        studies).  Periods (timer) are left unchanged."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        fields = (
            "spin_acquire_ns",
            "spin_release_ns",
            "spin_handoff_ns",
            "ctx_switch_ns",
            "wake_latency_ns",
            "sem_fast_ns",
            "idle_tick_ns",
            "idle_loop_ns",
            "timer_overhead_ns",
            "tasklet_schedule_ns",
            "tasklet_invoke_ns",
            "spawn_ns",
        )
        return replace(self, **{f: int(round(getattr(self, f) * factor)) for f in fields})

    @property
    def spin_cycle_ns(self) -> int:
        """Full acquire+release price of an uncontended spinlock cycle."""
        return self.spin_acquire_ns + self.spin_release_ns

    @property
    def block_roundtrip_ns(self) -> int:
        """On-path price of blocking and being woken (paper: 750 ns):
        the wake-up path plus the dispatch context switch."""
        return self.wake_latency_ns + self.ctx_switch_ns
