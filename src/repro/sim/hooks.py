"""Marcel's scheduler hooks.

The paper (§3.3) describes the key enabler for passive waiting: *"This
optimization requires modifications of the thread scheduler in order to add
a few hooks at key points (CPU idleness, context switches, timer
interrupts). These hooks are used to call PIOMan so as to poll the
networks."*

Three hook points are modelled:

* **idle hooks** — generator functions ``fn(core)`` run by a core's idle
  thread with the full effect vocabulary available (they may take spinlocks,
  signal semaphores, ...).  They return truthy when they performed work.
* **context-switch hooks** and **timer hooks** — *interrupt-context*
  generator functions restricted to the inline vocabulary (``Delay``,
  ``TryAcquire``/``Release``; see :func:`repro.sim.process.run_inline`),
  because a real scheduler cannot block inside a switch or an interrupt.

*Demand providers* tell idle loops whether frequent polling is currently
useful (e.g. PIOMan has pending requests); with no demand, idle threads
park until kicked, which keeps the event count of long simulations low.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Core

HookFn = Callable[["Core"], Generator[Any, Any, Any]]
DemandFn = Callable[[], bool]


class HookRegistry:
    """Per-machine registry of scheduler hooks."""

    def __init__(self) -> None:
        self._idle: list[HookFn] = []
        self._ctx_switch: list[HookFn] = []
        self._timer: list[HookFn] = []
        self._demand: list[DemandFn] = []

    # -- registration ----------------------------------------------------------

    def register_idle(self, fn: HookFn) -> None:
        self._idle.append(fn)

    def register_ctx_switch(self, fn: HookFn) -> None:
        self._ctx_switch.append(fn)

    def register_timer(self, fn: HookFn) -> None:
        self._timer.append(fn)

    def register_demand(self, fn: DemandFn) -> None:
        self._demand.append(fn)

    def unregister_idle(self, fn: HookFn) -> None:
        self._idle.remove(fn)

    @property
    def has_idle_hooks(self) -> bool:
        return bool(self._idle)

    # -- invocation ---------------------------------------------------------------

    def idle_demand(self) -> bool:
        """True when some component wants the idle loops to keep polling."""
        return any(fn() for fn in self._demand)

    def run_idle(self, core: "Core") -> Generator[Any, Any, bool]:
        """Run every idle hook once (full effect context).

        Returns True if any hook reports having done work.
        """
        ran = False
        for fn in list(self._idle):
            result = yield from fn(core)
            ran = ran or bool(result)
        return ran

    def inline_hooks(self, kind: str) -> list[HookFn]:
        """The interrupt-context hooks of the given kind
        (``"ctx_switch"`` or ``"timer"``)."""
        if kind == "ctx_switch":
            return list(self._ctx_switch)
        if kind == "timer":
            return list(self._timer)
        raise ValueError(f"unknown inline hook kind {kind!r}")
