"""The discrete-event core: an integer-nanosecond clock and an event queue.

Everything above (scheduler, NICs, timers) is expressed as callbacks
scheduled on a single :class:`Engine`.  Two simulated *nodes* of a cluster
share one engine — they share a clock, exactly like two real machines share
wall-clock time — while each node has its own :class:`~repro.sim.machine.Machine`.

Determinism: ties at equal timestamps are broken by insertion order, so a
given program always produces the same trace.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.errors import SimDeadlock, SimTimeLimit


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time} {name} {state}>"


class Engine:
    """Discrete-event loop with an integer nanosecond clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[EventHandle] = []
        self._seq = 0
        self._events_run = 0
        self._running = False

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past: delay {delay_ns}")
        # hot path: inlined schedule_at (one call frame per event matters)
        handle = EventHandle(self.now + delay_ns, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        time_ns = int(time_ns)
        if time_ns < self.now:
            raise ValueError(f"cannot schedule in the past: t={time_ns} < now={self.now}")
        handle = EventHandle(time_ns, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def pending(self) -> int:
        """Number of queued, not-yet-cancelled events."""
        return sum(1 for h in self._queue if not h.cancelled)

    @property
    def events_run(self) -> int:
        return self._events_run

    # -- execution -------------------------------------------------------------

    def run(
        self,
        until: Callable[[], bool] | None = None,
        *,
        max_time: int | None = None,
        max_events: int | None = None,
    ) -> str:
        """Process events until a stop condition holds.

        Args:
            until: optional predicate checked after every event; the loop
                stops as soon as it returns True.
            max_time: raise :class:`SimTimeLimit` if the clock would pass
                this absolute time (safety net against runaway idle loops).
            max_events: raise :class:`SimTimeLimit` after this many events.

        Returns:
            ``"until"`` if the predicate stopped the run, ``"drained"`` if
            the event queue emptied first.

        Raises:
            SimDeadlock: the queue drained while ``until`` was given and
                still false — the awaited condition can never happen.
            SimTimeLimit: a safety limit tripped.
        """
        if self._running:
            raise RuntimeError("Engine.run is not reentrant")
        if until is not None and until():
            return "until"
        self._running = True
        # the loop below is the simulator's hottest code: locals shave an
        # attribute lookup per touch, and the unlimited/no-predicate run —
        # the common case — skips every guard it can
        queue = self._queue
        heappop = heapq.heappop
        events_this_run = 0
        try:
            while queue:
                handle = heappop(queue)
                if handle.cancelled:
                    continue
                time = handle.time
                if max_time is not None and time > max_time:
                    raise SimTimeLimit(
                        f"simulation exceeded max_time={max_time} ns (now={self.now})"
                    )
                if max_events is not None and events_this_run >= max_events:
                    raise SimTimeLimit(f"simulation exceeded max_events={max_events}")
                assert time >= self.now, "event queue went backwards"
                self.now = time
                events_this_run += 1
                handle.fn(*handle.args)
                if until is not None and until():
                    return "until"
            if until is not None:
                raise SimDeadlock(
                    f"event queue drained at t={self.now} ns but the awaited "
                    f"condition never became true"
                )
            return "drained"
        finally:
            self._events_run += events_this_run
            self._running = False
