"""The discrete-event core: an integer-nanosecond clock and an event queue.

Everything above (scheduler, NICs, timers) is expressed as callbacks
scheduled on a single :class:`Engine`.  Two simulated *nodes* of a cluster
share one engine — they share a clock, exactly like two real machines share
wall-clock time — while each node has its own :class:`~repro.sim.machine.Machine`.

Determinism: ties at equal timestamps are broken by insertion order, so a
given program always produces the same trace.

Queue layout (the hot path of the whole simulator):

* future events live in a heap of ``(time, seq, fn, args, handle)``
  tuples — tuple comparison resolves on the leading ints in C, so heap
  operations never call back into Python comparison methods;
* events scheduled *at the current timestamp* (the delay-0 dispatch/wake
  traffic) bypass the heap entirely: they append to a FIFO *now bucket*
  drained after the heap's entries for that timestamp.  Sequence order is
  structural — every heap entry at time *t* predates the clock reaching
  *t*, so it outranks every bucket entry, and the bucket itself is FIFO;
* fire-and-forget events (:meth:`Engine.call_after` / :meth:`Engine.call_at`
  — the scheduler/NIC/PIOMan fast path for the dominant short fixed-delay
  events) carry no :class:`EventHandle` at all: the old per-event handle
  allocation is gone, and the cancel token survives only on the
  user-facing :meth:`schedule`/:meth:`schedule_at` API, shrunk to a
  two-slot object.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from repro.sim.errors import SimDeadlock, SimTimeLimit


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("cancelled", "_engine")

    def __init__(self, engine: "Engine | None") -> None:
        self.cancelled = False
        #: back-reference for O(1) pending() accounting; cleared when the
        #: event fires so a late cancel() is a no-op
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        engine = self._engine
        if engine is not None:
            self._engine = None
            self.cancelled = True
            engine._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self._engine is None:
            state = "fired"
        else:
            state = "pending"
        return f"<EventHandle {state}>"


class Engine:
    """Discrete-event loop with an integer nanosecond clock."""

    def __init__(self) -> None:
        self.now: int = 0
        #: future events: (time, seq, fn, args, handle-or-None) tuples
        self._heap: list[tuple] = []
        #: events at the *current* timestamp: (fn, args, handle-or-None),
        #: FIFO, drained after the heap's entries for this timestamp
        self._bucket: list[tuple] = []
        #: index of the next unconsumed bucket entry (persisted so an
        #: `until` exit can resume mid-bucket)
        self._pos = 0
        self._seq = 0
        #: scheduled, not-yet-run, not-cancelled events (O(1) pending())
        self._live = 0
        self._events_run = 0
        self._running = False

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past: delay {delay_ns}")
        handle = EventHandle(self)
        self._live += 1
        if delay_ns:
            self._seq = seq = self._seq + 1
            heappush(self._heap, (self.now + delay_ns, seq, fn, args, handle))
        else:
            self._bucket.append((fn, args, handle))
        return handle

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        time_ns = int(time_ns)
        if time_ns < self.now:
            raise ValueError(f"cannot schedule in the past: t={time_ns} < now={self.now}")
        handle = EventHandle(self)
        self._live += 1
        if time_ns > self.now:
            self._seq = seq = self._seq + 1
            heappush(self._heap, (time_ns, seq, fn, args, handle))
        else:
            self._bucket.append((fn, args, handle))
        return handle

    def call_after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no cancel token is created, so
        the event costs one heap tuple (or one bucket entry for delay 0)
        and nothing else.

        This is the interface the scheduler/NIC/PIOMan hot paths use for
        the dominant short fixed-delay events (context switches, lock
        costs, poll ticks, delay-0 dispatches).
        """
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past: delay {delay_ns}")
        self._live += 1
        if delay_ns:
            self._seq = seq = self._seq + 1
            heappush(self._heap, (self.now + delay_ns, seq, fn, args, None))
        else:
            self._bucket.append((fn, args, None))

    def call_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (no cancel token)."""
        time_ns = int(time_ns)
        if time_ns < self.now:
            raise ValueError(f"cannot schedule in the past: t={time_ns} < now={self.now}")
        self._live += 1
        if time_ns > self.now:
            self._seq = seq = self._seq + 1
            heappush(self._heap, (time_ns, seq, fn, args, None))
        else:
            self._bucket.append((fn, args, None))

    def pending(self) -> int:
        """Number of queued, not-yet-cancelled events (O(1))."""
        return self._live

    @property
    def events_run(self) -> int:
        return self._events_run

    # -- execution -------------------------------------------------------------

    def run(
        self,
        until: Callable[[], bool] | None = None,
        *,
        max_time: int | None = None,
        max_events: int | None = None,
    ) -> str:
        """Process events until a stop condition holds.

        Args:
            until: optional predicate checked after every event; the loop
                stops as soon as it returns True.
            max_time: raise :class:`SimTimeLimit` if the clock would pass
                this absolute time (safety net against runaway idle loops).
            max_events: raise :class:`SimTimeLimit` after this many events.

        Returns:
            ``"until"`` if the predicate stopped the run, ``"drained"`` if
            the event queue emptied first.

        Raises:
            SimDeadlock: the queue drained while ``until`` was given and
                still false — the awaited condition can never happen.
            SimTimeLimit: a safety limit tripped.  The queue stays
                consistent: the event that would have crossed the limit is
                *not* consumed, so a caught limit can be followed by
                diagnostics (or a resumed run with a larger limit).
        """
        if self._running:
            raise RuntimeError("Engine.run is not reentrant")
        if until is not None and until():
            return "until"
        self._running = True
        # the loop below is the simulator's hottest code: locals shave an
        # attribute lookup per touch, and the unlimited/no-predicate run —
        # the common case — skips every guard it can
        heap = self._heap
        bucket = self._bucket
        pos = self._pos
        events_this_run = 0
        try:
            while True:
                if heap:
                    entry = heap[0]
                    if entry[0] == self.now:
                        # heap entries at the current time predate the
                        # clock reaching it: they outrank the now bucket
                        heappop(heap)
                        handle = entry[4]
                        if handle is not None:
                            if handle.cancelled:
                                continue
                            handle._engine = None
                        if max_events is not None and events_this_run >= max_events:
                            heappush(heap, entry)  # leave the event queued
                            raise SimTimeLimit(
                                f"simulation exceeded max_events={max_events}"
                            )
                        self._live -= 1
                        events_this_run += 1
                        entry[2](*entry[3])
                        if until is not None and until():
                            return "until"
                        continue
                if pos < len(bucket):
                    entry = bucket[pos]
                    pos += 1
                    handle = entry[2]
                    if handle is not None:
                        if handle.cancelled:
                            continue
                        handle._engine = None
                    if max_events is not None and events_this_run >= max_events:
                        pos -= 1  # leave the event queued
                        raise SimTimeLimit(
                            f"simulation exceeded max_events={max_events}"
                        )
                    self._live -= 1
                    events_this_run += 1
                    entry[0](*entry[1])
                    if until is not None and until():
                        return "until"
                    continue
                if heap:
                    # bucket drained: advance the clock to the next time
                    time = heap[0][0]
                    if max_time is not None and time > max_time:
                        handle = heap[0][4]
                        if handle is not None and handle.cancelled:
                            heappop(heap)  # cancelled: drop silently
                            continue
                        raise SimTimeLimit(
                            f"simulation exceeded max_time={max_time} ns "
                            f"(now={self.now})"
                        )
                    self.now = time
                    if bucket:
                        del bucket[:]
                    pos = 0
                    continue
                break
            if until is not None:
                raise SimDeadlock(
                    f"event queue drained at t={self.now} ns but the awaited "
                    f"condition never became true"
                )
            return "drained"
        finally:
            self._pos = pos
            self._events_run += events_this_run
            self._running = False
