"""Scheduler/machine invariant checking (debugging aid).

:func:`check_invariants` audits a machine's bookkeeping for internal
consistency; tests call it after scenarios (and it is cheap enough to call
inside long-running ones).  Violations raise :class:`InvariantViolation`
with a precise description rather than surfacing later as a confusing
downstream failure.
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.sim.process import ThreadState


class InvariantViolation(AssertionError):
    """A machine's internal bookkeeping is inconsistent."""


def check_invariants(machine: Machine) -> None:
    """Audit one machine; raises :class:`InvariantViolation` on failure."""
    seen_current: dict[int, str] = {}
    for core in machine.cores:
        current = core.current
        if current is not None:
            if current.placed_on != core.index:
                raise InvariantViolation(
                    f"{current!r} is current on core {core.index} but "
                    f"placed_on={current.placed_on}"
                )
            if current.state not in (ThreadState.RUNNING, ThreadState.SPINNING):
                raise InvariantViolation(
                    f"{current!r} occupies core {core.index} in state "
                    f"{current.state.value}"
                )
            if current.tid in seen_current:
                raise InvariantViolation(
                    f"{current!r} is current on two cores: "
                    f"{seen_current[current.tid]} and {core.index}"
                )
            seen_current[current.tid] = str(core.index)
        for thread in core.runq:
            if thread.state is not ThreadState.READY:
                raise InvariantViolation(
                    f"{thread!r} queued on core {core.index} in state "
                    f"{thread.state.value}"
                )
            if thread is current:
                raise InvariantViolation(
                    f"{thread!r} is simultaneously current and queued on "
                    f"core {core.index}"
                )
            if thread.bound and thread.core is not None and thread.core != core.index:
                raise InvariantViolation(
                    f"bound {thread!r} queued on core {core.index}, not its "
                    f"core {thread.core}"
                )
        idle = core.idle_thread
        if idle is not None and not idle.is_idle:
            raise InvariantViolation(f"core {core.index} idle slot holds {idle!r}")
    _check_busy_accounting(machine)


def _check_busy_accounting(machine: Machine) -> None:
    elapsed = machine.engine.now
    for core in machine.cores:
        busy = core.busy_ns()
        if busy > elapsed:
            raise InvariantViolation(
                f"core {core.index} accounted {busy} ns busy in {elapsed} ns "
                f"of simulated time"
            )
        for category, ns in core.busy_breakdown().items():
            if ns < 0:
                raise InvariantViolation(
                    f"core {core.index} has negative {category!r} time: {ns}"
                )


def check_lock_invariants(locks) -> None:
    """Audit lock bookkeeping: owners must be live, spinners must spin."""
    for lock in locks:
        owner = lock.owner
        if owner is not None and getattr(owner, "done", False):
            raise InvariantViolation(
                f"{lock!r} owned by finished thread {owner!r}"
            )
        for spinner in lock.spinners:
            if spinner.state is not ThreadState.SPINNING:
                raise InvariantViolation(
                    f"{spinner!r} queued as spinner of {lock!r} in state "
                    f"{spinner.state.value}"
                )
        if lock.contentions > lock.acquisitions + len(lock.spinners):
            raise InvariantViolation(
                f"{lock!r}: more contentions ({lock.contentions}) than "
                f"acquisition attempts"
            )
