"""Mad-MPI: the MPI interface of NewMadeleine.

"NEWMADELEINE implements both a specific API and a MPI interface called
Mad-MPI" (paper §2).  This module provides that interface over the
simulated library: communicators with ranks, blocking and non-blocking
point-to-point, object-mode convenience calls, request completion, and
MPI thread-support levels — the subject of §3 ("In MPI, this level is
known as MPI_THREAD_MULTIPLE").

Every operation is a simulated-thread generator, so hybrid applications
spawn several Marcel threads per rank and call the communicator from all
of them (legal under ``ThreadLevel.MULTIPLE``, detected and rejected
under the lower levels).
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Sequence, TYPE_CHECKING

from repro.core.library import NewMadeleine
from repro.core.requests import Request
from repro.core.waiting import BusyWait, WaitStrategy
from repro.madmpi.datatypes import BYTE, Datatype
from repro.madmpi.status import ANY_TAG, MPIError, Status, ThreadLevel
from repro.sim.process import SimGen, WhoAmI, YieldCore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import TestBed

#: user tags live below this; collectives use the space above
MAX_USER_TAG = (1 << 16) - 1
_COLL_TAG_BASE = 1 << 20


class MPIRequest:
    """Handle returned by ``Isend``/``Irecv`` (wraps a core request)."""

    def __init__(self, core_req: Request, *, is_recv: bool, peer_rank: int) -> None:
        self._core = core_req
        self.is_recv = is_recv
        #: the communicator-level rank of the peer (node ids stay internal)
        self.peer_rank = peer_rank

    @property
    def done(self) -> bool:
        return self._core.done

    @property
    def payload(self) -> Any:
        return self._core.payload

    @property
    def cancelled(self) -> bool:
        return self._core.cancelled

    def status(self) -> Status:
        """Status of a completed receive."""
        if not self._core.done:
            raise MPIError("status of an incomplete request")
        # receives report what actually arrived (object-mode posts an
        # oversized buffer); sends report what was sent
        count = self._core.bytes_done if self.is_recv else self._core.size
        return Status(
            source=self.peer_rank,
            tag=self._core.tag,
            count_bytes=count,
        )

    def __repr__(self) -> str:
        kind = "recv" if self.is_recv else "send"
        return f"<MPIRequest {kind} {self._core!r}>"


def _object_size(obj: Any) -> int:
    """Byte-size estimate for object-mode messages."""
    if obj is None:
        return 1
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    nbytes = getattr(obj, "nbytes", None)  # numpy arrays
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(obj, (list, tuple)):
        return max(1, 8 * len(obj))
    return max(1, sys.getsizeof(obj) - sys.getsizeof(object()))


class Communicator:
    """One rank's view of a communicator.

    Create via :func:`create_world`; ``comm.rank``/``comm.size`` follow
    MPI conventions.  Point-to-point methods come in two flavours, like
    mpi4py: capitalised buffer-mode (explicit count × datatype) and
    lowercase object-mode (size estimated from the Python object).
    """

    def __init__(
        self,
        lib: NewMadeleine,
        rank: int,
        size: int,
        *,
        thread_level: ThreadLevel = ThreadLevel.MULTIPLE,
        wait_factory: Callable[[], WaitStrategy] = BusyWait,
        context: int = 0,
        rank_to_node: Sequence[int] | None = None,
    ) -> None:
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} outside communicator of size {size}")
        self.lib = lib
        self.rank = rank
        self.size = size
        self.thread_level = thread_level
        self.wait_factory = wait_factory
        self._context = context
        #: rank -> node id translation (identity in COMM_WORLD; arbitrary
        #: in communicators produced by Split)
        self._rank_to_node: list[int] = (
            list(range(size)) if rank_to_node is None else list(rank_to_node)
        )
        if len(self._rank_to_node) != size:
            raise ValueError("rank_to_node must have one entry per rank")
        self._coll_seq = 0
        self._inside: set[int] = set()  # thread ids currently in MPI calls
        self._main_thread_tid: int | None = None

    def _node_of(self, rank: int) -> int:
        return self._rank_to_node[rank]

    # ------------------------------------------------------------- internals

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise MPIError(f"{what} rank {rank} outside 0..{self.size - 1}")
        if rank == self.rank:
            raise MPIError(f"self-{what} is not supported by Mad-MPI")

    # ------------------------------------------------------------- split

    def Split(self, color: int, key: int | None = None) -> SimGen:
        """MPI_Comm_split: partition the communicator by ``color``.

        Every rank calls Split; ranks sharing a color form a new
        communicator, ordered by ``(key, old rank)`` (``key`` defaults to
        the old rank).  The new communicator gets its own context, so its
        traffic can never match the parent's or a sibling's.
        ``color=None`` (MPI_UNDEFINED) returns None for that rank.
        """
        key = self.rank if key is None else key
        entries = yield from self.Allgather((color, key, self.rank))
        if color is None:
            return None
        group = sorted(
            (k, old_rank, c)
            for c, k, old_rank in entries
            if c == color
        )
        new_rank = next(
            i for i, (_, old_rank, _) in enumerate(group) if old_rank == self.rank
        )
        # deterministic context id shared by the group: derived from the
        # parent context, the color's position among colors, and a split
        # counter encoded in the collective sequence the Allgather consumed
        colors = sorted({c for c, _, _ in entries if c is not None})
        context = (
            self._context * 131 + colors.index(color) + self._coll_seq * 17 + 1
        )
        return Communicator(
            self.lib,
            new_rank,
            len(group),
            thread_level=self.thread_level,
            wait_factory=self.wait_factory,
            context=context,
            rank_to_node=[self._node_of(old_rank) for _, old_rank, _ in group],
        )

    def _check_tag(self, tag: int, *, recv: bool) -> None:
        if tag == ANY_TAG and recv:
            return
        if tag >= _COLL_TAG_BASE:  # internal collective tag space
            return
        if not 0 <= tag <= MAX_USER_TAG:
            raise MPIError(f"tag {tag} outside 0..{MAX_USER_TAG}")

    def _wire_tag(self, tag: int) -> int:
        if tag == ANY_TAG:
            return ANY_TAG
        return self._context * (_COLL_TAG_BASE << 4) + tag

    def _enter(self) -> SimGen:
        """Thread-level bookkeeping around every MPI call."""
        thread = yield WhoAmI()
        tid = thread.tid
        if self._main_thread_tid is None:
            self._main_thread_tid = tid
        level = self.thread_level
        if level is ThreadLevel.SINGLE and tid != self._main_thread_tid:
            raise MPIError(
                "MPI_THREAD_SINGLE: only the initial thread may call MPI"
            )
        if level is ThreadLevel.FUNNELED and tid != self._main_thread_tid:
            raise MPIError(
                "MPI_THREAD_FUNNELED: only the main thread may call MPI"
            )
        if level is ThreadLevel.SERIALIZED and self._inside:
            raise MPIError(
                f"MPI_THREAD_SERIALIZED: thread {tid} entered MPI while "
                f"threads {sorted(self._inside)} were still inside — the "
                "application must serialize its MPI calls"
            )
        if level is not ThreadLevel.MULTIPLE and self._inside:
            raise MPIError(
                f"{level.name}: concurrent MPI calls detected "
                f"(threads {sorted(self._inside)} and {tid})"
            )
        self._inside.add(tid)
        return tid

    def _exit(self, tid: int) -> None:
        self._inside.discard(tid)

    # ------------------------------------------------------------- p2p (buffer)

    def Isend(
        self,
        dest: int,
        count: int,
        datatype: Datatype = BYTE,
        tag: int = 0,
        *,
        payload: Any = None,
    ) -> SimGen:
        """Non-blocking buffer-mode send; returns an :class:`MPIRequest`."""
        self._check_rank(dest, "send")
        self._check_tag(tag, recv=False)
        tid = yield from self._enter()
        try:
            req = yield from self.lib.isend(
                self._node_of(dest),
                self._wire_tag(tag),
                datatype.extent(count),
                payload=payload,
            )
        finally:
            self._exit(tid)
        return MPIRequest(req, is_recv=False, peer_rank=dest)

    def Irecv(
        self, source: int, count: int, datatype: Datatype = BYTE, tag: int = 0
    ) -> SimGen:
        """Non-blocking buffer-mode receive; returns an :class:`MPIRequest`."""
        self._check_rank(source, "recv")
        self._check_tag(tag, recv=True)
        tid = yield from self._enter()
        bounds = None
        if tag == ANY_TAG:
            base = self._wire_tag(0)
            bounds = (base, base + (_COLL_TAG_BASE << 4) - 1)
        try:
            req = yield from self.lib.irecv(
                self._node_of(source),
                self._wire_tag(tag),
                datatype.extent(count),
                tag_bounds=bounds,
            )
        finally:
            self._exit(tid)
        return MPIRequest(req, is_recv=True, peer_rank=source)

    def Send(
        self,
        dest: int,
        count: int,
        datatype: Datatype = BYTE,
        tag: int = 0,
        *,
        payload: Any = None,
    ) -> SimGen:
        """Blocking send (complete when locally done, MPI semantics)."""
        req = yield from self.Isend(dest, count, datatype, tag, payload=payload)
        yield from self.Wait(req)

    def Recv(
        self, source: int, count: int, datatype: Datatype = BYTE, tag: int = 0
    ) -> SimGen:
        """Blocking receive; returns ``(payload, Status)``."""
        req = yield from self.Irecv(source, count, datatype, tag)
        yield from self.Wait(req)
        return req.payload, req.status()

    def Sendrecv(
        self,
        dest: int,
        send_count: int,
        source: int,
        recv_count: int,
        datatype: Datatype = BYTE,
        sendtag: int = 0,
        recvtag: int = 0,
        *,
        payload: Any = None,
    ) -> SimGen:
        """Combined send+receive (deadlock-free exchange)."""
        rreq = yield from self.Irecv(source, recv_count, datatype, recvtag)
        sreq = yield from self.Isend(dest, send_count, datatype, sendtag, payload=payload)
        yield from self.Waitall([sreq, rreq])
        return rreq.payload, rreq.status()

    # ------------------------------------------------------------- p2p (object)

    def send(self, obj: Any, dest: int, tag: int = 0) -> SimGen:
        """Object-mode blocking send (size estimated from ``obj``)."""
        yield from self.Send(dest, _object_size(obj), BYTE, tag, payload=obj)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> SimGen:
        """Object-mode non-blocking send."""
        req = yield from self.Isend(dest, _object_size(obj), BYTE, tag, payload=obj)
        return req

    def recv(self, source: int, tag: int = 0, max_bytes: int = 1 << 30) -> SimGen:
        """Object-mode blocking receive; returns the object."""
        payload, _status = yield from self.Recv(source, max_bytes, BYTE, tag)
        return payload

    def irecv(self, source: int, tag: int = 0, max_bytes: int = 1 << 30) -> SimGen:
        """Object-mode non-blocking receive."""
        req = yield from self.Irecv(source, max_bytes, BYTE, tag)
        return req

    # ------------------------------------------------------------- completion

    def Wait(self, request: MPIRequest) -> SimGen:
        """Block until ``request`` completes (strategy-configurable)."""
        tid = yield from self._enter()
        try:
            yield from self.lib.wait(request._core, self.wait_factory())
        finally:
            self._exit(tid)

    def Test(self, request: MPIRequest) -> SimGen:
        """Non-blocking completion check."""
        tid = yield from self._enter()
        try:
            done = yield from self.lib.test(request._core)
        finally:
            self._exit(tid)
        return done

    def Waitall(self, requests: Sequence[MPIRequest]) -> SimGen:
        for request in requests:
            yield from self.Wait(request)

    def Waitany(self, requests: Sequence[MPIRequest]) -> SimGen:
        """Wait for any request; returns its index."""
        if not requests:
            raise MPIError("Waitany on an empty request list")
        while True:
            for i, request in enumerate(requests):
                if request.done:
                    return i
                done = yield from self.Test(request)
                if done:
                    return i
            yield YieldCore()

    def Testall(self, requests: Sequence[MPIRequest]) -> SimGen:
        for request in requests:
            done = yield from self.Test(request)
            if not done:
                return False
        return True

    def Cancel(self, request: MPIRequest) -> SimGen:
        """Try to cancel a pending receive (MPI_Cancel semantics: only a
        receive that has not begun matching can be withdrawn).  Returns
        True on success; the request then completes as cancelled."""
        if not request.is_recv:
            raise MPIError("Mad-MPI only supports cancelling receives")
        tid = yield from self._enter()
        try:
            ok = yield from self.lib.cancel_recv(request._core)
        finally:
            self._exit(tid)
        return ok

    # ------------------------------------------------------------- probing

    def Iprobe(self, source: int, tag: int = ANY_TAG) -> SimGen:
        """Non-blocking probe: ``(found, Status | None)`` for a matching
        unclaimed arrival."""
        self._check_rank(source, "probe")
        self._check_tag(tag, recv=True)
        tid = yield from self._enter()
        try:
            found, size = yield from self.lib.probe(
                self._node_of(source), self._wire_tag(tag)
            )
        finally:
            self._exit(tid)
        if not found:
            return False, None
        return True, Status(source=source, tag=tag, count_bytes=size)

    def Probe(self, source: int, tag: int = ANY_TAG) -> SimGen:
        """Blocking probe; returns the :class:`Status` of the pending
        message (which remains receivable)."""
        while True:
            found, status = yield from self.Iprobe(source, tag)
            if found:
                return status

    # ------------------------------------------------------------- persistent

    def Send_init(
        self,
        dest: int,
        count: int,
        datatype: Datatype = BYTE,
        tag: int = 0,
        *,
        payload: Any = None,
    ) -> "PersistentRequest":
        """Create an inactive persistent send (MPI_Send_init)."""
        self._check_rank(dest, "send")
        self._check_tag(tag, recv=False)
        return PersistentRequest(
            self, "send", dest, count, datatype, tag, payload=payload
        )

    def Recv_init(
        self, source: int, count: int, datatype: Datatype = BYTE, tag: int = 0
    ) -> "PersistentRequest":
        """Create an inactive persistent receive (MPI_Recv_init)."""
        self._check_rank(source, "recv")
        self._check_tag(tag, recv=True)
        return PersistentRequest(self, "recv", source, count, datatype, tag)

    def Start(self, persistent: "PersistentRequest") -> SimGen:
        """Activate a persistent request (MPI_Start)."""
        yield from persistent.start()

    def Startall(self, persistents: Sequence["PersistentRequest"]) -> SimGen:
        for persistent in persistents:
            yield from persistent.start()

    # ------------------------------------------------------------- collectives

    def _coll_tag(self) -> int:
        """Fresh tag for one collective round; every rank calls collectives
        in the same order (an MPI requirement), so counters agree."""
        tag = _COLL_TAG_BASE + (self._coll_seq % _COLL_TAG_BASE)
        self._coll_seq += 1
        return tag

    def Barrier(self) -> SimGen:
        from repro.madmpi.collectives import barrier

        yield from barrier(self)

    def Bcast(self, obj: Any, root: int = 0) -> SimGen:
        from repro.madmpi.collectives import bcast

        result = yield from bcast(self, obj, root)
        return result

    def Reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> SimGen:
        from repro.madmpi.collectives import reduce as reduce_

        result = yield from reduce_(self, value, op, root)
        return result

    def Allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> SimGen:
        from repro.madmpi.collectives import allreduce

        result = yield from allreduce(self, value, op)
        return result

    def Gather(self, value: Any, root: int = 0) -> SimGen:
        from repro.madmpi.collectives import gather

        result = yield from gather(self, value, root)
        return result

    def Scatter(self, values: Sequence[Any] | None, root: int = 0) -> SimGen:
        from repro.madmpi.collectives import scatter

        result = yield from scatter(self, values, root)
        return result

    def Allgather(self, value: Any) -> SimGen:
        from repro.madmpi.collectives import allgather

        result = yield from allgather(self, value)
        return result

    def Alltoall(self, values: Sequence[Any]) -> SimGen:
        from repro.madmpi.collectives import alltoall

        result = yield from alltoall(self, values)
        return result

    def Scan(self, value: Any, op: Callable[[Any, Any], Any]) -> SimGen:
        from repro.madmpi.collectives import scan

        result = yield from scan(self, value, op)
        return result

    def Reduce_scatter(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any]
    ) -> SimGen:
        from repro.madmpi.collectives import reduce_scatter

        result = yield from reduce_scatter(self, values, op)
        return result

    def __repr__(self) -> str:
        return (
            f"<Communicator rank={self.rank}/{self.size} "
            f"level={self.thread_level.name}>"
        )


class PersistentRequest:
    """A reusable communication pattern (MPI persistent requests).

    Created inactive by ``Send_init``/``Recv_init``; each ``Start``
    activates a fresh underlying transfer with the frozen parameters, and
    the usual ``Wait``/``Test`` operate on the handle between activations.
    """

    def __init__(
        self,
        comm: "Communicator",
        kind: str,
        peer: int,
        count: int,
        datatype: Datatype,
        tag: int,
        *,
        payload: Any = None,
    ) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"kind must be send/recv, got {kind!r}")
        self.comm = comm
        self.kind = kind
        self.peer = peer
        self.count = count
        self.datatype = datatype
        self.tag = tag
        self.payload = payload
        self.active: MPIRequest | None = None
        self.starts = 0

    def start(self) -> SimGen:
        if self.active is not None and not self.active.done:
            raise MPIError("MPI_Start on a still-active persistent request")
        self.starts += 1
        if self.kind == "send":
            self.active = yield from self.comm.Isend(
                self.peer, self.count, self.datatype, self.tag, payload=self.payload
            )
        else:
            self.active = yield from self.comm.Irecv(
                self.peer, self.count, self.datatype, self.tag
            )

    @property
    def done(self) -> bool:
        return self.active is not None and self.active.done

    def wait(self) -> SimGen:
        if self.active is None:
            raise MPIError("wait on a never-started persistent request")
        yield from self.comm.Wait(self.active)

    def __repr__(self) -> str:
        state = "inactive" if self.active is None else (
            "done" if self.active.done else "active"
        )
        return f"<PersistentRequest {self.kind} peer={self.peer} {state}>"


def create_world(
    bed: "TestBed",
    *,
    thread_level: ThreadLevel = ThreadLevel.MULTIPLE,
    wait_factory: Callable[[], WaitStrategy] = BusyWait,
) -> list[Communicator]:
    """MPI_Init for a testbed: one communicator per node, ranks = node ids."""
    size = len(bed.libs)
    return [
        Communicator(
            bed.lib(rank),
            rank,
            size,
            thread_level=thread_level,
            wait_factory=wait_factory,
        )
        for rank in range(size)
    ]


def run_ranks(
    bed: "TestBed",
    comms: Sequence[Communicator],
    rank_fn: Callable[[Communicator], SimGen],
    *,
    core: int = 0,
    name: str = "rank",
    max_time: int | None = None,
) -> list[Any]:
    """mpiexec for the simulator: run ``rank_fn(comm)`` as one simulated
    thread per rank and return the per-rank results."""
    threads = [
        bed.machine(comm.rank).scheduler.spawn(
            rank_fn(comm), name=f"{name}{comm.rank}", core=core, bound=True
        )
        for comm in comms
    ]
    bed.run(until=lambda: all(t.done for t in threads), max_time=max_time)
    return [t.result for t in threads]
