"""MPI status objects, wildcards and thread-support levels."""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: wildcard receive tag (MPI_ANY_TAG)
ANY_TAG = -1


class ThreadLevel(enum.IntEnum):
    """MPI thread-support levels (MPI-2).

    The paper studies what it takes to provide the highest level:
    ``MPI_THREAD_MULTIPLE`` — "a multi-threaded application can perform
    communication in multiple threads".
    """

    SINGLE = 0
    FUNNELED = 1
    SERIALIZED = 2
    MULTIPLE = 3


@dataclass(frozen=True)
class Status:
    """Completion information of a receive (MPI_Status)."""

    source: int
    tag: int
    count_bytes: int

    def get_count(self, datatype) -> int:
        """Number of ``datatype`` elements received (MPI_Get_count)."""
        if datatype.size_bytes == 0:
            return 0
        if self.count_bytes % datatype.size_bytes:
            raise ValueError(
                f"{self.count_bytes} bytes is not a whole number of "
                f"{datatype.name} elements"
            )
        return self.count_bytes // datatype.size_bytes


class MPIError(RuntimeError):
    """Erroneous MPI usage (wrong rank, thread-level violation...)."""
