"""MPI datatypes (the subset Mad-MPI exposes).

Message costs in the simulator are driven by byte counts, so a datatype is
essentially a name plus an extent; derived contiguous/vector types compose
extents the way MPI's type constructors do.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype: name and size of one element in bytes."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"datatype size must be >= 0, got {self.size_bytes}")

    def extent(self, count: int) -> int:
        """Total bytes of ``count`` elements."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return count * self.size_bytes

    def contiguous(self, count: int, name: str | None = None) -> "Datatype":
        """MPI_Type_contiguous: a block of ``count`` elements."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        return Datatype(name or f"{self.name}[{count}]", self.size_bytes * count)

    def vector(
        self, count: int, blocklength: int, name: str | None = None
    ) -> "Datatype":
        """MPI_Type_vector's payload size (strides carry no wire bytes)."""
        if count <= 0 or blocklength <= 0:
            raise ValueError("count and blocklength must be > 0")
        return Datatype(
            name or f"{self.name}[{count}x{blocklength}]",
            self.size_bytes * count * blocklength,
        )


BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)
INT = Datatype("MPI_INT", 4)
LONG = Datatype("MPI_LONG", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
DOUBLE = Datatype("MPI_DOUBLE", 8)
COMPLEX = Datatype("MPI_COMPLEX", 8)
DOUBLE_COMPLEX = Datatype("MPI_DOUBLE_COMPLEX", 16)

PREDEFINED = {
    d.name: d
    for d in (BYTE, CHAR, INT, LONG, FLOAT, DOUBLE, COMPLEX, DOUBLE_COMPLEX)
}
