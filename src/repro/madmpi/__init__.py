"""Mad-MPI: NewMadeleine's MPI interface (paper §2), simulated.

Quick use::

    from repro.core import build_testbed
    from repro.madmpi import ThreadLevel, create_world

    bed = build_testbed(nodes=2, policy="fine")
    comms = create_world(bed, thread_level=ThreadLevel.MULTIPLE)
    # spawn one simulated thread per rank running your rank function
"""

from repro.madmpi.datatypes import (
    BYTE,
    CHAR,
    COMPLEX,
    DOUBLE,
    DOUBLE_COMPLEX,
    FLOAT,
    INT,
    LONG,
    PREDEFINED,
    Datatype,
)
from repro.madmpi.mpi import (
    MAX_USER_TAG,
    Communicator,
    MPIRequest,
    PersistentRequest,
    create_world,
    run_ranks,
)
from repro.madmpi.status import ANY_TAG, MPIError, Status, ThreadLevel

__all__ = [
    "BYTE",
    "CHAR",
    "COMPLEX",
    "DOUBLE",
    "DOUBLE_COMPLEX",
    "FLOAT",
    "INT",
    "LONG",
    "PREDEFINED",
    "Datatype",
    "MAX_USER_TAG",
    "Communicator",
    "MPIRequest",
    "PersistentRequest",
    "create_world",
    "run_ranks",
    "ANY_TAG",
    "MPIError",
    "Status",
    "ThreadLevel",
]
