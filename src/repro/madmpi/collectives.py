"""Collective operations over Mad-MPI point-to-point.

Textbook algorithms on top of object-mode sends:

* **barrier** — dissemination: ⌈log₂ p⌉ rounds of pairwise exchange;
* **bcast / reduce** — binomial trees;
* **allreduce** — reduce to rank 0 + broadcast;
* **gather / scatter** — linear to/from the root;
* **allgather** — ring: p−1 steps, each rank forwards what it received;
* **alltoall** — pairwise exchange ordered by XOR-distance.

Each collective call uses a fresh internal tag (the communicator's
collective sequence counter), so back-to-back collectives never cross
matches.  Every rank must call collectives in the same order — the MPI
requirement these tags rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TYPE_CHECKING

from repro.madmpi.status import MPIError
from repro.sim.process import SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.madmpi.mpi import Communicator

Op = Callable[[Any, Any], Any]


def _send(comm: "Communicator", obj: Any, dest: int, tag: int) -> SimGen:
    from repro.madmpi.mpi import _object_size
    from repro.madmpi.datatypes import BYTE

    yield from comm.Send(dest, _object_size(obj), BYTE, tag, payload=obj)


def _recv(comm: "Communicator", source: int, tag: int) -> SimGen:
    from repro.madmpi.datatypes import BYTE

    payload, _status = yield from comm.Recv(source, 1 << 30, BYTE, tag)
    return payload


def _exchange(comm: "Communicator", obj: Any, peer: int, tag: int) -> SimGen:
    """Simultaneous send+recv with ``peer`` (deadlock-free)."""
    from repro.madmpi.datatypes import BYTE
    from repro.madmpi.mpi import _object_size

    rreq = yield from comm.Irecv(peer, 1 << 30, BYTE, tag)
    sreq = yield from comm.Isend(peer, _object_size(obj), BYTE, tag, payload=obj)
    yield from comm.Waitall([sreq, rreq])
    return rreq.payload


def barrier(comm: "Communicator") -> SimGen:
    """Dissemination barrier: round k exchanges with rank ± 2^k."""
    tag = comm._coll_tag()
    p, me = comm.size, comm.rank
    if p == 1:
        return
    step = 1
    while step < p:
        dest = (me + step) % p
        source = (me - step) % p
        from repro.madmpi.datatypes import BYTE

        rreq = yield from comm.Irecv(source, 64, BYTE, tag)
        sreq = yield from comm.Isend(dest, 1, BYTE, tag, payload=None)
        yield from comm.Waitall([sreq, rreq])
        step <<= 1


def bcast(comm: "Communicator", obj: Any, root: int = 0) -> SimGen:
    """Binomial-tree broadcast; every rank returns the root's object."""
    p, tag = comm.size, comm._coll_tag()
    if not 0 <= root < p:
        raise MPIError(f"bcast root {root} outside communicator")
    if p == 1:
        return obj
    vrank = (comm.rank - root) % p  # root becomes virtual rank 0
    mask = 1
    value = obj if comm.rank == root else None
    # find the bit where this rank receives
    while mask < p:
        if vrank & mask:
            source = ((vrank - mask) % p + root) % p
            value = yield from _recv(comm, source, tag)
            break
        mask <<= 1
    # forward to ranks below that bit
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            dest = ((vrank + mask) % p + root) % p
            yield from _send(comm, value, dest, tag)
        mask >>= 1
    return value


def reduce(comm: "Communicator", value: Any, op: Op, root: int = 0) -> SimGen:
    """Binomial-tree reduction; the root returns the combined value,
    other ranks return None."""
    p, tag = comm.size, comm._coll_tag()
    if not 0 <= root < p:
        raise MPIError(f"reduce root {root} outside communicator")
    if p == 1:
        return value
    vrank = (comm.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            dest = ((vrank - mask) % p + root) % p
            yield from _send(comm, acc, dest, tag)
            return None
        partner = vrank + mask
        if partner < p:
            source = ((partner) % p + root) % p
            other = yield from _recv(comm, source, tag)
            acc = op(acc, other)
        mask <<= 1
    return acc


def allreduce(comm: "Communicator", value: Any, op: Op) -> SimGen:
    """Reduce to rank 0, then broadcast the result."""
    reduced = yield from reduce(comm, value, op, root=0)
    result = yield from bcast(comm, reduced, root=0)
    return result


def gather(comm: "Communicator", value: Any, root: int = 0) -> SimGen:
    """Linear gather; the root returns the rank-ordered list."""
    p, tag = comm.size, comm._coll_tag()
    if not 0 <= root < p:
        raise MPIError(f"gather root {root} outside communicator")
    if comm.rank == root:
        out: list[Any] = [None] * p
        out[root] = value
        for source in range(p):
            if source != root:
                out[source] = yield from _recv(comm, source, tag)
        return out
    yield from _send(comm, value, root, tag)
    return None


def scatter(
    comm: "Communicator", values: Sequence[Any] | None, root: int = 0
) -> SimGen:
    """Linear scatter; each rank returns its slice of the root's list."""
    p, tag = comm.size, comm._coll_tag()
    if not 0 <= root < p:
        raise MPIError(f"scatter root {root} outside communicator")
    if comm.rank == root:
        if values is None or len(values) != p:
            raise MPIError(f"scatter root needs exactly {p} values")
        for dest in range(p):
            if dest != root:
                yield from _send(comm, values[dest], dest, tag)
        return values[root]
    value = yield from _recv(comm, root, tag)
    return value


def allgather(comm: "Communicator", value: Any) -> SimGen:
    """Ring allgather: p−1 steps; each rank sends its newest block right
    and receives the next block from the left."""
    from repro.madmpi.datatypes import BYTE
    from repro.madmpi.mpi import _object_size

    p, tag = comm.size, comm._coll_tag()
    out: list[Any] = [None] * p
    out[comm.rank] = value
    if p == 1:
        return out
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    carry_index = comm.rank
    for _ in range(p - 1):
        block = (carry_index, out[carry_index])
        rreq = yield from comm.Irecv(left, 1 << 30, BYTE, tag)
        sreq = yield from comm.Isend(
            right, _object_size(block), BYTE, tag, payload=block
        )
        yield from comm.Waitall([sreq, rreq])
        carry_index, received = rreq.payload
        out[carry_index] = received
    return out


def scan(comm: "Communicator", value: Any, op: Op) -> SimGen:
    """Inclusive prefix reduction (MPI_Scan): rank r returns
    op(value_0, ..., value_r), linear chain."""
    p, tag = comm.size, comm._coll_tag()
    acc = value
    if comm.rank > 0:
        upstream = yield from _recv(comm, comm.rank - 1, tag)
        acc = op(upstream, value)
    if comm.rank < p - 1:
        yield from _send(comm, acc, comm.rank + 1, tag)
    return acc


def reduce_scatter(comm: "Communicator", values: Sequence[Any], op: Op) -> SimGen:
    """MPI_Reduce_scatter_block: element-wise reduce the per-rank lists,
    each rank keeping slot ``rank`` of the result.

    Implemented as reduce-to-root of the whole vector followed by a
    scatter — the simple algorithm real MPIs use for small payloads.
    """
    p = comm.size
    if len(values) != p:
        raise MPIError(f"reduce_scatter needs exactly {p} values, got {len(values)}")

    def merge(a: Sequence[Any], b: Sequence[Any]) -> list[Any]:
        return [op(x, y) for x, y in zip(a, b)]

    combined = yield from reduce(comm, list(values), merge, root=0)
    mine = yield from scatter(comm, combined, root=0)
    return mine


def alltoall(comm: "Communicator", values: Sequence[Any]) -> SimGen:
    """Shifted pairwise exchange: at step k, send to ``(rank+k) % p`` and
    receive from ``(rank−k) % p`` — uniform for any communicator size."""
    from repro.madmpi.datatypes import BYTE
    from repro.madmpi.mpi import _object_size

    p, tag = comm.size, comm._coll_tag()
    if len(values) != p:
        raise MPIError(f"alltoall needs exactly {p} values, got {len(values)}")
    out: list[Any] = [None] * p
    out[comm.rank] = values[comm.rank]
    for k in range(1, p):
        dest = (comm.rank + k) % p
        source = (comm.rank - k) % p
        rreq = yield from comm.Irecv(source, 1 << 30, BYTE, tag)
        sreq = yield from comm.Isend(
            dest, _object_size(values[dest]), BYTE, tag, payload=values[dest]
        )
        yield from comm.Waitall([sreq, rreq])
        out[source] = rreq.payload
    return out
