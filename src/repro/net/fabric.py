"""Fabric: wiring NICs of different machines together.

A :class:`Fabric` tracks point-to-point links between NIC pairs.  The
standard two-node testbed helper :func:`wire_pair` creates one driver of
the requested class on each machine and connects them; multirail setups
call it several times with different driver names/classes.
"""

from __future__ import annotations

from typing import Type, TYPE_CHECKING

from repro.net.drivers.base import Driver
from repro.net.nic import SimNIC

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class Fabric:
    """Registry of NIC-to-NIC links."""

    def __init__(self) -> None:
        self._links: list[tuple[SimNIC, SimNIC]] = []

    def connect(self, a: SimNIC, b: SimNIC) -> None:
        a.connect(b)
        self._links.append((a, b))

    @property
    def links(self) -> list[tuple[SimNIC, SimNIC]]:
        return list(self._links)

    def total_traffic_bytes(self) -> int:
        return sum(a.tx_bytes + b.tx_bytes for a, b in self._links)


def wire_pair(
    fabric: Fabric,
    machine_a: "Machine",
    machine_b: "Machine",
    driver_cls: Type[Driver],
    *,
    name: str | None = None,
) -> tuple[Driver, Driver]:
    """Create one driver of ``driver_cls`` on each machine and wire them.

    Returns the (machine_a, machine_b) driver pair; the pair shares the
    driver ``name`` so the library can match rails across nodes.
    """
    if machine_a is machine_b:
        raise ValueError("wire_pair needs two distinct machines")
    kwargs = {} if name is None else {"name": name}
    drv_a = driver_cls(machine_a, **kwargs)
    drv_b = driver_cls(machine_b, **kwargs)
    fabric.connect(drv_a.nic, drv_b.nic)
    return drv_a, drv_b
