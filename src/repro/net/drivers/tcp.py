"""TCP/Ethernet — NewMadeleine's commodity fallback transport.

Gigabit Ethernet through the kernel socket stack: long wire latency, heavy
per-message syscall overheads, and every byte copied through kernel
buffers.  The related work (§5) notes that TCP-only thread-safe MPIs like
MiMPI "perform badly for small messages"; this preset lets the benches
reproduce that contrast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.drivers.base import Driver, DriverCaps
from repro.net.model import LinkModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

TCP_MODEL = LinkModel(
    name="tcp-gige",
    wire_latency_ns=18_000,
    ns_per_byte=8.0,  # 1 Gb/s
    send_overhead_ns=2_500,
    recv_overhead_ns=2_500,
    poll_ns=600,
    copy_ns_per_byte=1.0,
    min_tx_gap_ns=5000,
    min_rx_gap_ns=3000,
)

TCP_CAPS = DriverCaps(eager_max_bytes=32 * 1024, thread_safe_poll=False)


class TCPDriver(Driver):
    """Driver preset for TCP over gigabit Ethernet."""

    def __init__(self, machine: "Machine", name: str = "tcp0") -> None:
        super().__init__(machine, TCP_MODEL, name, TCP_CAPS)
