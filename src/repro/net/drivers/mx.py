"""Myrinet Express (MX) over Myri-10G — the paper's primary network.

The testbed used Myricom Myri-10G NICs with the MX 1.2.7 driver; every
latency figure in the paper was obtained on this network.  Parameters are
calibrated so the no-locking pingpong matches the Figure 3 baseline:
≈3.2 µs at 1 B rising to ≈8 µs at 2 KB (eager protocol with one host copy
per side), with a 10 Gb/s line rate (0.8 ns/byte) for the wire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.drivers.base import Driver, DriverCaps
from repro.net.model import LinkModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

MX_MODEL = LinkModel(
    name="mx-myri10g",
    wire_latency_ns=200,
    ns_per_byte=0.8,  # 10 Gb/s line rate
    send_overhead_ns=500,
    recv_overhead_ns=300,
    poll_ns=450,
    copy_ns_per_byte=0.7,  # eager-protocol host memcpy, per side
    min_tx_gap_ns=400,
    min_rx_gap_ns=300,
)

MX_CAPS = DriverCaps(eager_max_bytes=4096, thread_safe_poll=True)


class MXDriver(Driver):
    """Driver preset for Myri-10G / MX."""

    def __init__(self, machine: "Machine", name: str = "mx0") -> None:
        super().__init__(machine, MX_MODEL, name, MX_CAPS)
