"""Driver abstraction: the host-side face of a NIC.

A :class:`Driver` owns one :class:`~repro.net.nic.SimNIC` and charges the
host CPU costs of using it.  Its methods are generators run on whatever
core performs the communication work — the application thread, a PIOMan
idle-core hook, or a tasklet — so the *placement* of these costs is decided
by the caller, which is precisely what the paper studies.

``DriverCaps`` advertises per-technology properties the library's
optimization layer consults (eager limit for the copy-based protocol,
whether concurrent polling of this NIC is safe without a lock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.net.model import LinkModel
from repro.net.nic import SimNIC
from repro.sim.process import Delay, SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


@dataclass(frozen=True)
class DriverCaps:
    """Static capabilities of a driver/NIC pair."""

    #: largest payload sent with the copy-based eager protocol
    eager_max_bytes: int = 4096
    #: False models a thread-unsafe NIC library: polls must be serialised
    thread_safe_poll: bool = True


class Driver:
    """Base driver: eager/rendezvous-aware send and poll generators."""

    def __init__(
        self,
        machine: "Machine",
        model: LinkModel,
        name: str,
        caps: DriverCaps | None = None,
    ) -> None:
        self.machine = machine
        self.model = model
        self.name = name
        self.caps = caps or DriverCaps()
        self.nic = SimNIC(machine, model, f"{machine.name}/{name}")
        # reusable effect objects: polls dominate the event stream, and the
        # scheduler only reads (ns, category), so one instance serves all
        self._eff_poll = Delay(self.model.poll_ns, "poll")
        self._eff_claim = Delay(self.CLAIM_NS, "poll")

    # -- send ------------------------------------------------------------------

    #: polling slice while waiting for a send credit (spin on the doorbell)
    CREDIT_SPIN_NS = 100

    def post_send(self, packet: Any) -> SimGen:
        """Charge send-side host costs and inject ``packet``.

        If the NIC's message engine is busy (back-to-back sends, or a
        concurrent flow), the host spins for a send credit first — with the
        calling thread holding whatever locks the policy put around the
        transmit path, which is exactly how a global lock serialises
        concurrent flows (Fig. 5).

        ``packet`` must expose ``wire_size`` (bytes on the wire) and
        ``host_copy_bytes`` (bytes memcpy'd on each host for the eager
        protocol; 0 for zero-copy rendezvous data).
        """
        cost = self.model.send_overhead_ns + self.model.copy_ns(packet.host_copy_bytes)
        yield Delay(cost, "net")
        while not self.nic.tx_idle:
            yield Delay(self.CREDIT_SPIN_NS, "net")
        self.nic.inject(packet, packet.wire_size)

    # -- receive -----------------------------------------------------------------

    #: price of claiming an event a probe already read (the probe did the
    #: completion-queue read; the pop itself is a pointer bump)
    CLAIM_NS = 0

    def poll(self, *, after_probe: bool = False) -> SimGen:
        """One poll: charge the poll price; on arrival, charge receive-side
        processing and return the packet (else None).

        Popping hands the caller responsibility for *processing order*:
        callers that may run concurrently (fine-grain policies on a
        thread-safe NIC) must hold the rx lock across poll+processing, or
        two pollers could process back-to-back packets out of order.  Use
        :meth:`probe` for lock-free emptiness checks; a poll right after a
        positive probe charges only the cheap claim (the completion event
        was already read).
        """
        yield self._eff_claim if after_probe else self._eff_poll
        packet = self.nic.rx_pop()
        if packet is None:
            return None
        cost = self.model.recv_overhead_ns + self.model.copy_ns(packet.host_copy_bytes)
        yield Delay(cost, "net")
        return packet

    def probe(self) -> SimGen:
        """Non-popping poll: charge the poll price, report pending count.

        Safe to run without any lock on a thread-safe NIC (reads the
        completion counter only); the busy-wait fast path of the fine-grain
        policies.
        """
        yield self._eff_poll
        return self.nic.rx_pending

    @property
    def rx_pending(self) -> int:
        """Cheap check used to size polling effort (a real driver reads a
        doorbell/counter without a syscall)."""
        return self.nic.rx_pending

    @property
    def tx_idle(self) -> bool:
        return self.nic.tx_idle

    def is_eager(self, payload_bytes: int) -> bool:
        """Should a payload of this size use the copy-based eager protocol?"""
        return payload_bytes <= self.caps.eager_max_bytes

    def __repr__(self) -> str:
        return f"<Driver {self.name!r} model={self.model.name}>"
