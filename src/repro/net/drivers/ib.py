"""InfiniBand ConnectX DDR (Verbs) — the paper's second network.

The testbed used Mellanox ConnectX MT25418 DDR HCAs with OFED 1.3.1; the
paper reports that the Myrinet results "were similar with Infiniband".
DDR 4x gives 16 Gb/s of data bandwidth (0.5 ns/byte); verbs send/recv has
slightly lower host overheads than MX.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.drivers.base import Driver, DriverCaps
from repro.net.model import LinkModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

IB_MODEL = LinkModel(
    name="ib-connectx-ddr",
    wire_latency_ns=150,
    ns_per_byte=0.5,  # DDR 4x data rate
    send_overhead_ns=400,
    recv_overhead_ns=250,
    poll_ns=400,
    copy_ns_per_byte=0.7,
    min_tx_gap_ns=350,
    min_rx_gap_ns=250,
)

IB_CAPS = DriverCaps(eager_max_bytes=8192, thread_safe_poll=True)


class IBDriver(Driver):
    """Driver preset for ConnectX InfiniBand DDR."""

    def __init__(self, machine: "Machine", name: str = "ib0") -> None:
        super().__init__(machine, IB_MODEL, name, IB_CAPS)
