"""Driver presets for the paper's network technologies."""

from repro.net.drivers.base import Driver, DriverCaps
from repro.net.drivers.ib import IBDriver
from repro.net.drivers.mx import MXDriver
from repro.net.drivers.tcp import TCPDriver

__all__ = ["Driver", "DriverCaps", "IBDriver", "MXDriver", "TCPDriver"]
