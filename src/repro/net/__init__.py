"""Network substrate: link models, simulated NICs, drivers and fabric.

Stands in for the paper's Myri-10G (MX), ConnectX InfiniBand and Ethernet
hardware.  The communication library in :mod:`repro.core` drives these
components; nothing here depends on it.
"""

from repro.net.drivers.base import Driver, DriverCaps
from repro.net.drivers.ib import IB_CAPS, IB_MODEL, IBDriver
from repro.net.drivers.mx import MX_CAPS, MX_MODEL, MXDriver
from repro.net.drivers.tcp import TCP_CAPS, TCP_MODEL, TCPDriver
from repro.net.fabric import Fabric, wire_pair
from repro.net.model import LinkModel
from repro.net.nic import SimNIC

__all__ = [
    "Driver",
    "DriverCaps",
    "IB_CAPS",
    "IB_MODEL",
    "IBDriver",
    "MX_CAPS",
    "MX_MODEL",
    "MXDriver",
    "TCP_CAPS",
    "TCP_MODEL",
    "TCPDriver",
    "Fabric",
    "wire_pair",
    "LinkModel",
    "SimNIC",
]
