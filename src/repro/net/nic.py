"""Simulated network interface cards.

A :class:`SimNIC` belongs to one machine and is wired to exactly one peer
NIC through a :class:`~repro.net.fabric.Fabric`.  It models:

* **tx serialisation** — the NIC injects one packet at a time; back-to-back
  sends queue behind ``tx_free_at`` (this produces the "more intensive use
  of the NIC" contention the paper sees in the concurrent pingpong of
  Fig. 5);
* **an rx ring** — delivered packets wait there until a driver poll picks
  them up.

The NIC is intentionally dumb: all protocol decisions (eager vs rendezvous,
aggregation) live in the communication library; all host CPU costs are
charged by the :class:`~repro.net.drivers.base.Driver` generators.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, TYPE_CHECKING

from repro.net.model import LinkModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class SimNIC:
    """One NIC port: tx serialisation state plus an rx ring."""

    def __init__(self, machine: "Machine", model: LinkModel, name: str) -> None:
        self.machine = machine
        self.model = model
        self.name = name
        self.peer: SimNIC | None = None
        self.rx_ring: deque[Any] = deque()
        #: shared message-engine timeline: both tx injections and rx DMA
        #: completions occupy it (the NIC's message-rate limit)
        self.engine_free_at: int = 0
        # counters
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.polls = 0
        self.empty_polls = 0
        #: optional observer called as fn(nic, packet) on each delivery
        self.on_delivery: Callable[["SimNIC", Any], None] | None = None

    # -- wiring ---------------------------------------------------------------

    def connect(self, peer: "SimNIC") -> None:
        """Wire this NIC to ``peer`` (bidirectional, exclusive)."""
        if self.peer is not None or peer.peer is not None:
            raise RuntimeError(f"NIC {self.name!r} or {peer.name!r} already wired")
        if peer is self:
            raise ValueError("cannot wire a NIC to itself")
        self.peer = peer
        peer.peer = self

    # -- transmit ----------------------------------------------------------------

    def inject(self, packet: Any, wire_size: int) -> int:
        """Start transmitting ``packet``; returns the injection start time.

        Called from driver generators (the host-side overhead has already
        been charged there).  Transmission begins once the NIC is free,
        serialises for ``wire_size * G`` and is delivered to the peer's rx
        ring a wire latency later.
        """
        if self.peer is None:
            raise RuntimeError(f"NIC {self.name!r} is not wired to a peer")
        if wire_size < 0:
            raise ValueError(f"wire_size must be >= 0, got {wire_size}")
        engine = self.machine.engine
        start = max(engine.now, self.engine_free_at)
        # the message leaves the NIC once the engine has processed it:
        # max(serialisation, per-message firmware/DMA gap) — for small
        # messages the gap dominates both occupancy and latency, which is
        # why a NIC near its message rate also hurts latency (Fig. 5)
        depart = (
            start
            + self.model.tx_occupancy_ns(wire_size)
            + self.machine.jitter(f"nic-tx:{self.name}")
        )
        self.engine_free_at = depart
        self.tx_packets += 1
        self.tx_bytes += wire_size
        arrive = depart + self.model.wire_latency_ns
        engine.call_at(arrive, self.peer._deliver, packet, wire_size)
        return start

    @property
    def tx_idle(self) -> bool:
        """True when the NIC could inject immediately."""
        return self.machine.engine.now >= self.engine_free_at

    # -- receive -----------------------------------------------------------------

    def _deliver(self, packet: Any, wire_size: int) -> None:
        """Wire arrival: the rx DMA occupies the message engine for the rx
        gap, after which the packet becomes pollable."""
        engine = self.machine.engine
        ready = (
            max(engine.now, self.engine_free_at)
            + self.model.min_rx_gap_ns
            + self.machine.jitter(f"nic-rx:{self.name}")
        )
        self.engine_free_at = ready
        self.rx_bytes += wire_size
        if ready > engine.now:
            engine.call_at(ready, self._rx_complete, packet)
        else:
            self._rx_complete(packet)

    def _rx_complete(self, packet: Any) -> None:
        if hasattr(packet, "arrived_at"):
            packet.arrived_at = self.machine.engine.now
        self.rx_ring.append(packet)
        self.rx_packets += 1
        if self.on_delivery is not None:
            self.on_delivery(self, packet)
        # packets waiting in the ring are progress work: nudge idle pollers
        self.machine.scheduler.poke_idle()

    def rx_pop(self) -> Any | None:
        """Take the oldest delivered packet, or None (cost charged by the
        polling driver)."""
        self.polls += 1
        if self.rx_ring:
            return self.rx_ring.popleft()
        self.empty_polls += 1
        return None

    @property
    def rx_pending(self) -> int:
        return len(self.rx_ring)

    def __repr__(self) -> str:
        wired = self.peer.name if self.peer else None
        return f"<SimNIC {self.name!r} model={self.model.name} peer={wired!r}>"
