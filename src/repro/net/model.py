"""Link cost models (LogGP-style).

A :class:`LinkModel` prices one network technology:

* ``send_overhead_ns`` (*o_s*) — host CPU time to post a message to the NIC;
* ``recv_overhead_ns`` (*o_r*) — host CPU time to process an arrival;
* ``wire_latency_ns`` (*L*) — time of flight for the first byte;
* ``ns_per_byte`` (*G*) — serialisation cost per payload byte;
* ``poll_ns`` — price of one NIC poll (empty or not);
* ``copy_ns_per_byte`` — host memcpy price per byte, paid per side for
  eager-protocol messages (zero-copy rendezvous transfers skip it).

The presets in :mod:`repro.net.drivers` are calibrated so that the
no-locking pingpong over the MX model spans ≈3 µs (1 B) to ≈8 µs (2 KB),
matching the baseline curve of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkModel:
    """Cost parameters of one network technology."""

    name: str
    wire_latency_ns: int
    ns_per_byte: float
    send_overhead_ns: int
    recv_overhead_ns: int
    poll_ns: int
    copy_ns_per_byte: float = 0.0
    #: minimum NIC occupancy per injected packet (the message-rate limit:
    #: DMA descriptor handling keeps the NIC busy even for tiny packets).
    #: Back-to-back small sends queue behind it — which is what gives the
    #: optimization layer its window to aggregate.
    min_tx_gap_ns: int = 0
    #: NIC engine occupancy per *received* packet (rx DMA + completion
    #: write-back).  Shares the same engine timeline as tx: a NIC handling
    #: two concurrent pingpong flows approaches its message-rate limit,
    #: which is the saturation behind Fig. 5's latency doubling.
    min_rx_gap_ns: int = 0

    def __post_init__(self) -> None:
        for field in (
            "wire_latency_ns",
            "send_overhead_ns",
            "recv_overhead_ns",
            "poll_ns",
            "min_tx_gap_ns",
            "min_rx_gap_ns",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")
        if self.ns_per_byte < 0 or self.copy_ns_per_byte < 0:
            raise ValueError("per-byte costs must be >= 0")

    def tx_occupancy_ns(self, nbytes: int) -> int:
        """How long the NIC stays busy after injecting ``nbytes``."""
        return max(self.serialize_ns(nbytes), self.min_tx_gap_ns)

    def serialize_ns(self, nbytes: int) -> int:
        """Time for the NIC to put ``nbytes`` on the wire."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return int(round(nbytes * self.ns_per_byte))

    def wire_time_ns(self, nbytes: int) -> int:
        """First-bit-out to last-bit-in: latency plus serialisation."""
        return self.wire_latency_ns + self.serialize_ns(nbytes)

    def copy_ns(self, nbytes: int) -> int:
        """One-side host copy price for an eager message."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return int(round(nbytes * self.copy_ns_per_byte))

    def half_roundtrip_floor_ns(self, nbytes: int, *, eager: bool = True) -> int:
        """Analytic lower bound on one-way latency for sanity checks:
        send overhead + NIC tx processing + wire flight + NIC rx
        processing + receive overhead (+ two host copies when eager).
        Real measured latency adds polling quantisation and library costs
        on top."""
        total = (
            self.send_overhead_ns
            + self.tx_occupancy_ns(nbytes)
            + self.wire_latency_ns
            + self.min_rx_gap_ns
            + self.recv_overhead_ns
        )
        if eager:
            total += 2 * self.copy_ns(nbytes)
        return total
