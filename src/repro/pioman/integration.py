"""Binding PIOMan to Marcel's scheduler hooks.

"In NewMadeleine, this is implemented by the PIOMan progression engine that
is called from the thread scheduler ... hooks at key points (CPU idleness,
context switches, timer interrupts)" (paper §3.3).

:func:`attach_pioman` creates the PIOMan, attaches the node's libraries,
registers the idle hook + demand provider, and starts idle loops on the
chosen cores.  ``poll_cores`` restricts *where* background polling happens —
the independent variable of Figure 8 (polling on CPU 0/1/2/3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.pioman.manager import PIOMan
from repro.sim.process import SimGen
from repro.sim.timer import TimerSystem

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import NewMadeleine
    from repro.sim.machine import Core, Machine


def attach_pioman(
    machine: "Machine",
    libs: list["NewMadeleine"],
    *,
    poll_cores: list[int] | None = None,
    enable_idle: bool = True,
    timers: bool = False,
    timer_period_ns: int | None = None,
) -> PIOMan:
    """Wire a PIOMan into ``machine``'s scheduler.

    Args:
        libs: this node's libraries (usually one).
        poll_cores: cores whose idle loops poll (default: all cores).
        enable_idle: spawn the idle threads now (disable only when the
            caller manages idle loops itself).
        timers: also start per-core timer ticks that re-poke the idle
            loops (a liveness backstop when every core computes).

    Returns the attached :class:`PIOMan`.
    """
    if not libs:
        raise ValueError("attach_pioman needs at least one library")
    pioman = PIOMan(machine, libs[0].costs)
    for lib in libs:
        pioman.attach(lib)
    poll_set = set(range(machine.ncores)) if poll_cores is None else set(poll_cores)
    for idx in poll_set:
        if not (0 <= idx < machine.ncores):
            raise ValueError(f"no such core: {idx}")

    def pioman_idle_hook(core: "Core") -> SimGen:
        if core.index not in poll_set or not pioman.demand():
            return False
        did = yield from pioman.poll(core)
        return did

    machine.hooks.register_idle(pioman_idle_hook)
    machine.hooks.register_demand(pioman.demand)
    if enable_idle:
        # idle loops run on EVERY core (a blocked thread always switches to
        # the idle task, like on a real machine); only the polling hook is
        # restricted to poll_cores
        machine.enable_idle_loops()
    if timers:

        def pioman_timer_hook(core: "Core") -> SimGen:
            """Interrupt-context poll: non-blocking, arrivals only.

            This is the paper's third hook point — "timer interrupts" —
            the backstop that keeps communication progressing even when
            every core runs compute threads and no idle loop ever gets
            scheduled.
            """
            did = False
            for lib in pioman.libs:
                result = yield from lib.try_progress_inline()
                did = did or result
            return did

        machine.hooks.register_timer(pioman_timer_hook)
        TimerSystem(machine, timer_period_ns).start(sorted(poll_set))
    return pioman
