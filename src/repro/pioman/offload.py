"""Submission offloading: who performs the message submission (paper §4.2).

With *inline* submission (the default), ``nm_isend`` itself runs the
optimizer and injects the packet.  The paper's second step of
multi-threading the engine moves that CPU-intensive work to idle cores, so
small-message submission overlaps computation:

* :class:`IdleCoreSubmit` — the submission stays in the collect layer;
  PIOMan, invoked from an idle core's scheduler hook, detects the pending
  message and transmits it.  Cost over inline: the work descriptors cross
  a cache boundary — ~400 ns on the quad Xeon (Fig. 9, "offloading without
  tasklets").
* :class:`TaskletSubmit` — a tasklet is scheduled on a target core to run
  the library flush.  Convenient, but the tasklet state machine and its
  locking add ~1.6 µs on top of the same cache crossing: the ~2 µs
  "offloading using tasklets" curve of Fig. 9.

The cache crossing itself is charged by the library: every send request
records the core that submitted it, and posting it from another core pays
``topology.transfer_ns(submit_core, posting_core)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.process import SimGen
from repro.sim.tasklet import Tasklet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import NewMadeleine


class SubmitOffload:
    """Strategy object deciding who flushes freshly-submitted messages."""

    name: str = "abstract"
    #: True: ``isend`` flushes inside its own library entry
    inline: bool = True

    def after_submit(self, lib: "NewMadeleine", peer: int) -> SimGen:
        """Called by ``isend`` after the submit entry (outside all locks)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<SubmitOffload {self.name}>"


class InlineSubmit(SubmitOffload):
    """Reference behaviour: the application thread transmits."""

    name = "inline"
    inline = True

    def after_submit(self, lib: "NewMadeleine", peer: int) -> SimGen:
        return
        yield  # pragma: no cover - generator marker


class IdleCoreSubmit(SubmitOffload):
    """Idle cores pick the submission up through PIOMan's hooks."""

    name = "idle-core"
    inline = False

    def after_submit(self, lib: "NewMadeleine", peer: int) -> SimGen:
        # nothing to pay here: the pending message is visible through the
        # lock-free doorbells; just make sure napping idle loops look
        lib._poke_progress()
        return
        yield  # pragma: no cover - generator marker


class TaskletSubmit(SubmitOffload):
    """A tasklet on ``target_core`` runs the library flush."""

    name = "tasklet"
    inline = False

    def __init__(self, target_core: int = 1) -> None:
        if target_core < 0:
            raise ValueError("target_core must be >= 0")
        self.target_core = target_core
        self.scheduled = 0

    def after_submit(self, lib: "NewMadeleine", peer: int) -> SimGen:
        if self.target_core >= lib.machine.ncores:
            raise ValueError(
                f"target core {self.target_core} outside machine "
                f"({lib.machine.ncores} cores)"
            )
        self.scheduled += 1
        tasklet = Tasklet(lambda core: lib.flush(), f"nm-submit-{lib.node_id}")
        yield from lib.machine.tasklets.schedule(tasklet, self.target_core)


def set_offload(lib: "NewMadeleine", offload: SubmitOffload | None) -> None:
    """Install (or clear, with None) a submission-offload mode on ``lib``."""
    lib.submit_offload = offload
