"""PIOMan: the I/O event manager of the PM2 suite.

"It handles polling in behalf of the communication library and works
closely with the thread scheduler" (paper §2).  Requests registered with
PIOMan are progressed from wherever PIOMan is invoked — a waiting thread
(:class:`~repro.core.waiting.PiomanBusyWait`), an idle core's hook, a
context switch or a timer tick.

The management of PIOMan's internal request lists is what Figure 6 prices:
+200 ns per message, charged here as ``pioman_register_ns`` when a request
enters the lists and ``pioman_complete_ns`` when its completion is
detected and the request leaves them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.costmodel import CostModel
from repro.sim.process import Delay, SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import NewMadeleine
    from repro.core.requests import Request
    from repro.sim.machine import Machine


class PIOMan:
    """Per-machine I/O progression engine."""

    def __init__(self, machine: "Machine", costs: CostModel | None = None) -> None:
        self.machine = machine
        self.costs = costs or CostModel()
        self.libs: list[NewMadeleine] = []
        self._pending: dict[int, Request] = {}
        #: requests whose completion callback has fired but whose
        #: management cost has not been charged yet.  Completion *pushes*
        #: here, so a poll tick touches exactly the completed requests —
        #: it never rescans the whole pending list.
        self._done_ready: list[Request] = []
        # statistics
        self.registered_total = 0
        self.completed_total = 0
        self.poll_passes = 0
        # reusable effect objects (the scheduler only reads effects)
        self._eff_pass = Delay(self.costs.pioman_pass_ns, "poll")
        self._eff_register = Delay(self.costs.pioman_register_ns, "overhead")
        self._eff_complete = Delay(self.costs.pioman_complete_ns, "overhead")

    # -- attachment ----------------------------------------------------------

    def attach(self, lib: "NewMadeleine") -> None:
        """Make this PIOMan the progression engine of ``lib``."""
        if lib.machine is not self.machine:
            raise ValueError(
                f"library of {lib.machine.name!r} cannot attach to PIOMan of "
                f"{self.machine.name!r}"
            )
        if lib in self.libs:
            raise ValueError("library already attached")
        self.libs.append(lib)
        lib.pioman = self

    # -- request lists ---------------------------------------------------------

    def register(self, req: "Request") -> SimGen:
        """Enter a request into PIOMan's lists (idempotent)."""
        if req.req_id in self._pending:
            return
        yield self._eff_register
        if req.done:
            return
        self._pending[req.req_id] = req
        self.registered_total += 1
        req.on_done(self._done_ready.append)
        # make sure napping idle loops notice the new demand
        self.machine.scheduler.poke_idle()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- polling ------------------------------------------------------------------

    def poll(self, core=None, early_exit=None) -> SimGen:
        """One PIOMan pass: progress every attached library, then handle
        completions of registered requests.  Returns True if work happened.

        ``early_exit`` is forwarded to the library passes (a busy waiter's
        own-request fast path); completion reaping still runs so the
        per-request management cost is always charged.
        """
        self.poll_passes += 1
        yield self._eff_pass
        did = False
        for lib in self.libs:
            result = yield from lib.progress(early_exit=early_exit)
            did = did or result
            if early_exit is not None and early_exit():
                break
        # reap exactly the requests whose completion was pushed onto the
        # done list — never a scan of everything pending.  Polls stay
        # reentrant at event granularity (several cores run PIOMan passes
        # concurrently): the pop-with-default below makes two passes
        # draining the same list charge each request once.
        reaped = 0
        ready = self._done_ready
        while ready:
            req = ready.pop()
            if self._pending.pop(req.req_id, None) is not None:
                yield self._eff_complete
                self.completed_total += 1
                reaped += 1
        return did or reaped > 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the observability layer (:mod:`repro.obs`).

        ``bookkeeping_ns`` is the exact request-management time charged so
        far — the +200 ns/message of Figure 6, reconstructed from the
        register/complete counters and their calibrated unit costs.
        """
        return {
            "poll_passes": self.poll_passes,
            "registered": self.registered_total,
            "completed": self.completed_total,
            "pending": len(self._pending),
            "bookkeeping_ns": (
                self.registered_total * self.costs.pioman_register_ns
                + self.completed_total * self.costs.pioman_complete_ns
            ),
        }

    def demand(self) -> bool:
        """Should idle cores keep polling?  True while requests are pending
        or any library has in-flight traffic or immediate work.

        Tracking the libraries' own request tables (not just explicitly
        registered requests) keeps the progression cores *hot* during an
        exchange, which is what makes background progression and offloaded
        submission react at cache speed (§4).
        """
        if self._pending:
            return True
        return any(
            lib.has_work() or lib.has_pending_requests() for lib in self.libs
        )

    def __repr__(self) -> str:
        return (
            f"<PIOMan {self.machine.name} libs={len(self.libs)} "
            f"pending={self.pending_count}>"
        )
