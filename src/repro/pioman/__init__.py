"""PIOMan: I/O event manager + scheduler integration + submission offload."""

from repro.pioman.integration import attach_pioman
from repro.pioman.manager import PIOMan
from repro.pioman.offload import (
    IdleCoreSubmit,
    InlineSubmit,
    SubmitOffload,
    TaskletSubmit,
    set_offload,
)

__all__ = [
    "attach_pioman",
    "PIOMan",
    "IdleCoreSubmit",
    "InlineSubmit",
    "SubmitOffload",
    "TaskletSubmit",
    "set_offload",
]
