"""Time and size units.

The whole simulator works on an integer nanosecond clock; benchmarks and the
paper's figures report microseconds.  Message sizes are plain byte counts but
are frequently written as ``"1K"``/``"32K"`` in sweep specifications, exactly
like the x axes of the paper's figures.
"""

from __future__ import annotations

# -- time constants (in nanoseconds) ---------------------------------------

US = 1_000
"""Nanoseconds per microsecond."""

MS = 1_000_000
"""Nanoseconds per millisecond."""

SEC = 1_000_000_000
"""Nanoseconds per second."""

# -- size constants ---------------------------------------------------------

KIB = 1024
"""Bytes per kibibyte (the paper's ``1K``)."""

MIB = 1024 * 1024
"""Bytes per mebibyte."""

_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": KIB,
    "KB": KIB,
    "KIB": KIB,
    "M": MIB,
    "MB": MIB,
    "MIB": MIB,
}


def us_to_ns(us: float) -> int:
    """Convert microseconds to an integer nanosecond count (rounded)."""
    return int(round(us * US))


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds as a float."""
    return ns / US


def parse_size(spec: int | str) -> int:
    """Parse a message-size specification into bytes.

    Accepts plain integers, digit strings, and the ``1K`` / ``32K`` / ``4M``
    shorthand used on the paper's figure axes.  Raises :class:`ValueError`
    for malformed or negative specifications.

    >>> parse_size("2K")
    2048
    >>> parse_size(17)
    17
    """
    if isinstance(spec, bool):  # bool is an int subclass; reject explicitly
        raise ValueError(f"not a size: {spec!r}")
    if isinstance(spec, int):
        if spec < 0:
            raise ValueError(f"negative size: {spec}")
        return spec
    if not isinstance(spec, str):
        raise ValueError(f"not a size: {spec!r}")
    text = spec.strip().upper()
    i = len(text)
    while i > 0 and not text[i - 1].isdigit():
        i -= 1
    digits, suffix = text[:i], text[i:]
    if not digits or not digits.isdigit():
        raise ValueError(f"malformed size: {spec!r}")
    try:
        mult = _SIZE_SUFFIXES[suffix]
    except KeyError:
        raise ValueError(f"unknown size suffix {suffix!r} in {spec!r}") from None
    return int(digits) * mult


def format_size(nbytes: int) -> str:
    """Format a byte count the way the paper labels its x axes.

    >>> format_size(2048)
    '2K'
    >>> format_size(100)
    '100'
    """
    if nbytes >= MIB and nbytes % MIB == 0:
        return f"{nbytes // MIB}M"
    if nbytes >= KIB and nbytes % KIB == 0:
        return f"{nbytes // KIB}K"
    return str(nbytes)


def format_ns(ns: float) -> str:
    """Human-readable duration: picks ns, µs or ms as appropriate.

    >>> format_ns(140)
    '140 ns'
    >>> format_ns(2500)
    '2.50 us'
    """
    if ns < US:
        return f"{ns:.0f} ns"
    if ns < MS:
        return f"{ns / US:.2f} us"
    if ns < SEC:
        return f"{ns / MS:.3f} ms"
    return f"{ns / SEC:.3f} s"
