"""Structured benchmark result records.

Every benchmark run produces :class:`ResultRecord` rows — one per
(configuration, message size) point — collected into a :class:`ResultSet`.
The set can be filtered, grouped into the series a figure plots, and
round-tripped through JSON so that EXPERIMENTS.md entries are regenerable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class ResultRecord:
    """One measured point.

    Attributes:
        experiment: experiment id, e.g. ``"fig3"``.
        config: configuration label, e.g. ``"coarse"``; one figure series.
        size: message size in bytes (0 for size-less experiments).
        latency_us: measured half-round-trip latency in microseconds
            (or the experiment's headline metric).
        extra: free-form additional metrics (iteration count, throughput...).
    """

    experiment: str
    config: str
    size: int
    latency_us: float
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "config": self.config,
            "size": self.size,
            "latency_us": self.latency_us,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ResultRecord":
        return cls(
            experiment=d["experiment"],
            config=d["config"],
            size=int(d["size"]),
            latency_us=float(d["latency_us"]),
            extra=dict(d.get("extra", {})),
        )

    def sort_key(self) -> tuple[str, str, int]:
        """Stable grid key: (experiment, config, size).

        Used by :meth:`ResultSet.sorted` and by the parallel sweep runner to
        prove that a merged set covers the same grid as a sequential one.
        """
        return (self.experiment, self.config, self.size)


class ResultSet:
    """An ordered collection of :class:`ResultRecord` with figure-style views."""

    def __init__(self, records: Iterable[ResultRecord] = ()) -> None:
        self._records: list[ResultRecord] = list(records)

    # -- collection protocol ------------------------------------------------

    def add(self, record: ResultRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[ResultRecord]) -> None:
        """Append ``records`` preserving their order."""
        self._records.extend(records)

    @classmethod
    def merge(cls, sets: Iterable["ResultSet"]) -> "ResultSet":
        """Concatenate several sets into one.

        Record order is the concatenation order: all records of the first
        set (in their original order), then the second, and so on — the
        contract the parallel sweep runner relies on to reassemble
        per-worker results into the sequential ordering.
        """
        merged = cls()
        for s in sets:
            merged.extend(s)
        return merged

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ResultRecord]:
        return iter(self._records)

    def __getitem__(self, i: int) -> ResultRecord:
        return self._records[i]

    # -- views ---------------------------------------------------------------

    def filter(self, pred: Callable[[ResultRecord], bool]) -> "ResultSet":
        return ResultSet(r for r in self._records if pred(r))

    def sorted(
        self, key: Callable[[ResultRecord], Any] | None = None
    ) -> "ResultSet":
        """A copy sorted by ``key`` (default :meth:`ResultRecord.sort_key`).

        The sort is stable: records with equal keys keep their relative
        order, so duplicated points survive a round trip unchanged.
        """
        return ResultSet(
            sorted(self._records, key=key or ResultRecord.sort_key)
        )

    def configs(self) -> list[str]:
        """Distinct config labels, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.config, None)
        return list(seen)

    def sizes(self) -> list[int]:
        """Distinct sizes, sorted ascending."""
        return sorted({r.size for r in self._records})

    def series(self, config: str) -> list[tuple[int, float]]:
        """``(size, latency_us)`` points of one figure series, size-sorted."""
        pts = [(r.size, r.latency_us) for r in self._records if r.config == config]
        return sorted(pts)

    def missing_points(self) -> list[tuple[str, int]]:
        """Holes in the (config, size) grid, in table render order.

        A complete sweep measures every config at every size; a partially
        failed (e.g. interrupted parallel) sweep leaves holes that would
        otherwise render indistinguishably from a complete figure.
        """
        sizes = self.sizes()
        have = {(r.config, r.size) for r in self._records}
        return [
            (config, size)
            for size in sizes
            for config in self.configs()
            if (config, size) not in have
        ]

    def point(self, config: str, size: int) -> float:
        """The latency of a single (config, size) point.

        Raises :class:`KeyError` when absent, :class:`ValueError` when
        ambiguous (duplicated point).
        """
        hits = [r.latency_us for r in self._records if r.config == config and r.size == size]
        if not hits:
            raise KeyError(f"no point ({config!r}, {size})")
        if len(hits) > 1:
            raise ValueError(f"ambiguous point ({config!r}, {size}): {len(hits)} records")
        return hits[0]

    # -- persistence ----------------------------------------------------------

    def to_csv(self) -> str:
        """Render as CSV for external plotting tools.

        Fixed columns ``experiment,config,size,latency_us`` followed by
        one column per extra key (union across records, sorted — so the
        header is deterministic); records missing a key leave the cell
        empty.  Non-scalar extra values are JSON-encoded.
        """
        import csv
        import io

        extra_keys = sorted({k for r in self._records for k in r.extra})
        out = io.StringIO(newline="")
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(
            ["experiment", "config", "size", "latency_us", *extra_keys]
        )
        for r in self._records:
            cells: list[Any] = [r.experiment, r.config, r.size, r.latency_us]
            for key in extra_keys:
                value = r.extra.get(key, "")
                if isinstance(value, (dict, list, tuple)):
                    value = json.dumps(value, sort_keys=True)
                cells.append(value)
            writer.writerow(cells)
        return out.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(self.to_csv())

    def to_json(self) -> str:
        return json.dumps([r.to_dict() for r in self._records], indent=2)

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_json` — the byte-identity token
        the golden determinism tests and the incremental sweep cache's
        warm-vs-cold checks compare."""
        import hashlib

        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError("ResultSet JSON must be a list of records")
        return cls(ResultRecord.from_dict(d) for d in data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ResultSet":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
