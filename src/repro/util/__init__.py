"""Shared utilities: units, validation, result records and table rendering.

These helpers are deliberately dependency-free (stdlib + numpy only) and are
used by every other subpackage.  Nothing in here knows about the simulator or
the communication library.
"""

from repro.util.units import (
    KIB,
    MIB,
    US,
    MS,
    SEC,
    format_ns,
    format_size,
    ns_to_us,
    parse_size,
    us_to_ns,
)
from repro.util.validate import (
    check_in,
    check_nonneg,
    check_pos,
    check_type,
)
from repro.util.records import ResultRecord, ResultSet
from repro.util.tables import render_table

__all__ = [
    "KIB",
    "MIB",
    "US",
    "MS",
    "SEC",
    "format_ns",
    "format_size",
    "ns_to_us",
    "parse_size",
    "us_to_ns",
    "check_in",
    "check_nonneg",
    "check_pos",
    "check_type",
    "ResultRecord",
    "ResultSet",
    "render_table",
]
