"""Plain ASCII table rendering for benchmark reports.

The benchmark harness prints each figure as a table: one row per message
size, one column per configuration — the textual equivalent of the paper's
latency plots.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are formatted with ``float_fmt``; other values via ``str``.
    Columns are right-aligned except the first, which is left-aligned
    (it usually holds the message-size label).
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("all rows must have the same arity as headers")

    def fmt(v: Any) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: Sequence[str]) -> str:
        out = []
        for i, part in enumerate(parts):
            out.append(part.ljust(widths[i]) if i == 0 else part.rjust(widths[i]))
        return "  ".join(out)

    sep = "  ".join("-" * w for w in widths)
    body = [line(headers), sep] + [line(row) for row in cells]
    if title:
        body.insert(0, title)
        body.insert(1, "=" * max(len(title), len(sep)))
    return "\n".join(body)
