"""Tiny argument-validation helpers.

Used at public API boundaries so that misuse fails with a clear message
instead of a confusing failure deep inside the event loop.
"""

from __future__ import annotations

from typing import Any, Iterable


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expect = " or ".join(t.__name__ for t in types)
        else:
            expect = types.__name__
        raise TypeError(f"{name} must be {expect}, got {type(value).__name__}")
    return value


def check_nonneg(name: str, value: int | float) -> int | float:
    """Raise :class:`ValueError` unless ``value`` is a non-negative number."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_pos(name: str, value: int | float) -> int | float:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    check_nonneg(name, value)
    if value == 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Raise :class:`ValueError` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
