"""repro — reproduction of Trahay, Brunet & Denis,
"An analysis of the impact of multi-threading on communication
performance" (CAC/IPDPS 2009).

The package rebuilds the paper's full software stack on a discrete-event
simulator:

* :mod:`repro.sim` — the machine substrate: engine, cores/cache topology,
  the Marcel-like two-level thread scheduler with hooks, costed
  synchronisation primitives, tasklets, timers;
* :mod:`repro.net` — link models, simulated NICs and drivers for the
  paper's networks (Myri-10G/MX, ConnectX IB, TCP);
* :mod:`repro.core` — NewMadeleine: the three-layer communication library
  with pluggable locking policies and wait strategies;
* :mod:`repro.pioman` — the PIOMan I/O event manager, scheduler-hook
  integration and submission offloading;
* :mod:`repro.madmpi` — the Mad-MPI interface (communicators,
  point-to-point, collectives, thread levels);
* :mod:`repro.rt` — a live miniature of the same engine on real Python
  threads;
* :mod:`repro.bench` / :mod:`repro.analysis` — the harness regenerating
  every figure of the paper, with machine-checked claims.

Quick start::

    from repro.core import build_testbed
    from repro.bench.pingpong import run_pingpong

    bed = build_testbed(policy="fine")         # two quad-core nodes, MX
    result = run_pingpong(bed, size=8)
    print(result.latency_us)

Regenerate a paper figure::

    python -m repro.bench.figures fig3
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
