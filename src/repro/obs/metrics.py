"""Metrics registry: aggregate observation snapshots into runtime reports.

A :class:`MetricsRegistry` consumes capture snapshots (see
:meth:`repro.obs.capture.Observation.captures`) and aggregates them into
the quantities the paper's analysis is built on:

* per-lock acquisition/contention counts and hold-time histograms
  (straight from :class:`repro.sim.sync._LockBase` counters via
  :meth:`repro.core.locking.LockingPolicy.lock_stats`);
* per-core busy/idle/spin utilization from the cores' category ledgers;
* PIOMan poll-pass and register/complete counts;
* the §3/§4 overhead decomposition — measured nanoseconds attributed to
  lock cost, spin, semaphore/context-switch cost, PIOMan polling and
  bookkeeping, and cache-distance transfer — as one table.
"""

from __future__ import annotations

from typing import Iterable

from repro.sim.machine import BUSY_CATEGORIES
from repro.util.tables import render_table
from repro.util.units import format_ns

#: decomposition mechanisms, in report order
MECHANISMS = (
    "lock",  # spinlock acquire/release cycles (§3.1's 70 ns)
    "spin",  # active contention, burned core time (Fig. 5)
    "ctxswitch",  # context switches incl. semaphore round trips (§3.3)
    "poll",  # PIOMan/driver polling passes (Fig. 6)
    "pioman",  # PIOMan request-list bookkeeping (+200 ns/msg, Fig. 6)
    "transfer",  # cache-distance completion/descriptor transfer (Fig. 8, §4.2)
)


def _merge_hist(into: dict[int, int], hist: dict[int, int]) -> None:
    for bucket, count in hist.items():
        into[bucket] = into.get(bucket, 0) + count


class MetricsRegistry:
    """Aggregated counters from one or more observation captures."""

    def __init__(self) -> None:
        #: lock name -> aggregated counter row
        self.locks: dict[str, dict] = {}
        #: (machine name, core index) -> busy ns by category
        self.cores: dict[tuple[str, int], dict[str, int]] = {}
        #: machine name -> summed simulated horizon (ns across captures)
        self.horizon: dict[str, int] = {}
        #: aggregated PIOMan counters
        self.pioman: dict[str, int] = {
            "poll_passes": 0,
            "registered": 0,
            "completed": 0,
            "pending": 0,
            "bookkeeping_ns": 0,
        }
        #: total cache-distance transfer ns charged
        self.transfer_ns = 0
        #: total trace events dropped by ring buffers (0 = complete traces)
        self.dropped_events = 0
        self.captures = 0

    # -- ingestion -----------------------------------------------------------

    @classmethod
    def from_captures(cls, captures: Iterable[dict]) -> "MetricsRegistry":
        reg = cls()
        for cap in captures:
            reg.add_capture(cap)
        return reg

    def add_capture(self, cap: dict) -> None:
        self.captures += 1
        for m in cap["machines"]:
            name = m["name"]
            self.horizon[name] = self.horizon.get(name, 0) + m["now"]
            self.transfer_ns += m["transfer_ns"]
            self.dropped_events += m.get("dropped", 0)
            for core_index, busy in m["utilization"].items():
                key = (name, int(core_index))
                slot = self.cores.setdefault(key, {})
                for cat, ns in busy.items():
                    slot[cat] = slot.get(cat, 0) + ns
            for row in m["locks"]:
                slot = self.locks.setdefault(
                    row["name"],
                    {
                        "acquisitions": 0,
                        "contentions": 0,
                        "holds": 0,
                        "hold_ns_total": 0,
                        "hold_max_ns": 0,
                        "hold_hist": {},
                    },
                )
                slot["acquisitions"] += row["acquisitions"]
                slot["contentions"] += row["contentions"]
                slot["holds"] += row["holds"]
                slot["hold_ns_total"] += row["hold_ns_total"]
                slot["hold_max_ns"] = max(slot["hold_max_ns"], row["hold_max_ns"])
                _merge_hist(slot["hold_hist"], row["hold_hist"])
            if m.get("pioman"):
                for key, value in m["pioman"].items():
                    self.pioman[key] = self.pioman.get(key, 0) + value

    # -- aggregates ----------------------------------------------------------

    def busy_total(self, category: str) -> int:
        """Summed busy ns of one accounting category across every core."""
        return sum(busy.get(category, 0) for busy in self.cores.values())

    def decomposition(self) -> dict[str, int]:
        """Total measured ns attributed to each overhead mechanism.

        This is the paper's decomposition method as a runtime report: lock
        cycles and spin time from the cores' ledgers, context-switch cost
        (two of which make the 750 ns semaphore round trip of Fig. 7),
        PIOMan's polling and request bookkeeping (Fig. 6), and the
        cache-distance transfer cost of completions/descriptors (Fig. 8).
        """
        return {
            "lock": self.busy_total("lock"),
            "spin": self.busy_total("spin"),
            "ctxswitch": self.busy_total("ctxswitch"),
            "poll": self.busy_total("poll"),
            "pioman": self.pioman["bookkeeping_ns"],
            "transfer": self.transfer_ns,
        }

    # -- tables ---------------------------------------------------------------

    def lock_table(self) -> str:
        headers = ["lock", "acq", "contended", "holds", "hold mean", "hold max"]
        rows = []
        for name in sorted(self.locks):
            c = self.locks[name]
            mean = c["hold_ns_total"] / c["holds"] if c["holds"] else 0.0
            rows.append(
                [
                    name,
                    c["acquisitions"],
                    c["contentions"],
                    c["holds"],
                    format_ns(round(mean)),
                    format_ns(c["hold_max_ns"]),
                ]
            )
        if not rows:
            return "Lock contention: no locks observed (policy 'none'?)"
        return render_table(headers, rows, title="Lock contention")

    def utilization_table(self) -> str:
        headers = ["core"] + list(BUSY_CATEGORIES) + ["busy", "idle%"]
        rows = []
        for (machine, index) in sorted(self.cores):
            busy = self.cores[(machine, index)]
            total = sum(busy.values())
            horizon = self.horizon.get(machine, 0)
            idle_pct = 100.0 * max(horizon - total, 0) / horizon if horizon else 0.0
            rows.append(
                [f"{machine}/{index}"]
                + [busy.get(cat, 0) for cat in BUSY_CATEGORIES]
                + [total, idle_pct]
            )
        if not rows:
            return "Core utilization: nothing captured"
        return render_table(headers, rows, title="Core utilization (busy ns)")

    def pioman_table(self) -> str:
        p = self.pioman
        rows = [
            ["poll passes", p["poll_passes"]],
            ["requests registered", p["registered"]],
            ["requests completed", p["completed"]],
            ["still pending", p["pending"]],
            ["bookkeeping", format_ns(p["bookkeeping_ns"])],
        ]
        return render_table(["PIOMan", "value"], rows, title="PIOMan progression")

    def decomposition_table(self, *, messages: int | None = None) -> str:
        """The mechanism decomposition; with ``messages`` also per-message."""
        decomp = self.decomposition()
        headers = ["mechanism", "total"]
        if messages:
            headers.append("per message")
        rows = []
        for mech in MECHANISMS:
            row: list[object] = [mech, format_ns(decomp[mech])]
            if messages:
                row.append(format_ns(round(decomp[mech] / messages)))
            rows.append(row)
        return render_table(
            headers, rows, title="Overhead decomposition (measured ns by mechanism)"
        )

    def report(self, *, messages: int | None = None) -> str:
        """Everything: locks, utilization, PIOMan, decomposition."""
        parts = [
            self.lock_table(),
            "",
            self.utilization_table(),
            "",
            self.pioman_table(),
            "",
            self.decomposition_table(messages=messages),
        ]
        if self.dropped_events:
            parts.append(
                f"!! {self.dropped_events} trace event(s) dropped by ring "
                f"buffers; trace-derived views are partial"
            )
        return "\n".join(parts)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry captures={self.captures} locks={len(self.locks)} "
            f"cores={len(self.cores)}>"
        )
