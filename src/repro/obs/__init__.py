"""repro.obs — the observability layer.

The paper's whole method is profiling ("we have extensively profiled the
code", §1); this package makes the same visibility available at runtime
on the simulated stack:

* :mod:`repro.obs.capture` — an observation context that hooks testbed
  construction (:func:`repro.core.session.build_testbed`), attaches
  scheduler tracers, and snapshots per-lock / per-core / PIOMan counters,
  including across the parallel sweep runner's process boundary;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` aggregating those
  snapshots into lock-contention, core-utilization and PIOMan tables plus
  the paper's §3/§4 overhead decomposition as a runtime report;
* :mod:`repro.obs.chrometrace` — a Chrome trace-event JSON exporter
  (Perfetto-loadable: one track per core, thread/spin slices, async block
  spans, run-queue counter tracks).

Typical use, programmatic::

    from repro.obs import observe

    with observe() as obs:
        ...  # anything that builds testbeds via build_testbed()
    obs.export_chrome("trace.json")
    print(obs.metrics_registry().report())

or from the figures CLI::

    python -m repro.bench.figures fig3 --quick --trace trace.json --metrics
"""

from repro.obs.capture import Observation, active, observe
from repro.obs.chrometrace import build_trace, validate_trace, write_trace
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MetricsRegistry",
    "Observation",
    "active",
    "build_trace",
    "observe",
    "validate_trace",
    "write_trace",
]
