"""Observation context: capture traces and metrics from whole benchmark runs.

:func:`observe` installs a process-global :class:`Observation`.  While it
is active, every testbed built through
:func:`repro.core.session.build_testbed` is registered with it: each
machine gets a :class:`~repro.sim.trace.Tracer` attached (when tracing is
on) and the bed's locks/cores/PIOMan counters become part of the final
snapshot.  The disabled path stays free — ``build_testbed`` performs one
function call to discover that no observation is active.

Process boundaries: the parallel sweep runner (:mod:`repro.bench.parallel`)
runs each sweep point in a worker process.  Workers open their *own*
observation around the point, ship :meth:`Observation.serialize` output
back with the measurement, and the parent re-absorbs the snapshots **in
sequential sweep order** — so a ``--workers 8`` trace is deterministic and
identical to the sequential one.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator

from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import TestBed
    from repro.obs.metrics import MetricsRegistry

#: default ring-buffer capacity per machine tracer
DEFAULT_MAX_EVENTS = 200_000

_active: "Observation | None" = None


def active() -> "Observation | None":
    """The currently-installed observation, if any."""
    return _active


@contextlib.contextmanager
def observe(
    *,
    trace: bool = True,
    metrics: bool = True,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> Iterator["Observation"]:
    """Install an :class:`Observation` for the duration of the block."""
    global _active
    obs = Observation(trace=trace, metrics=metrics, max_events=max_events)
    prev = _active
    _active = obs
    try:
        yield obs
    finally:
        _active = prev


class Observation:
    """Accumulates capture snapshots from every testbed built while active.

    Entries are either *live* (a reference to a finished testbed, snapshot
    taken lazily) or *absorbed* (an already-serialized snapshot from a
    worker process); :meth:`captures` normalizes both, preserving insertion
    order.
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.trace = trace
        self.metrics = metrics
        self.max_events = max_events
        self.label = "run"
        self._live: list[tuple[str, "TestBed"]] = []
        self._snapshots: list[dict] = []
        #: interleaving order: ("live", idx) / ("snap", idx)
        self._order: list[tuple[str, int]] = []

    # -- registration ----------------------------------------------------------

    def set_label(self, label: str) -> None:
        """Tag subsequently-built testbeds (e.g. ``"coarse/1024"``)."""
        self.label = label

    def on_testbed(self, bed: "TestBed") -> None:
        """Called by ``build_testbed`` for every bed built while active."""
        if self.trace:
            for machine in bed.machines:
                if machine.tracer is None:
                    machine.attach_tracer(Tracer(self.max_events))
        self._order.append(("live", len(self._live)))
        self._live.append((self.label, bed))

    def absorb(self, data: dict, *, label: str | None = None) -> None:
        """Merge a worker's :meth:`serialize` output (relabelled per point).

        Blobs also round-trip through the incremental sweep cache
        (:mod:`repro.bench.cache`): a replayed point absorbs the very
        blob its cold run serialized.  Malformed blobs — e.g. a cache
        entry corrupted on disk — raise :class:`ValueError` instead of
        being merged silently, so a broken capture can never masquerade
        as an empty one.
        """
        if not isinstance(data, dict) or not isinstance(
            data.get("captures", []), (list, tuple)
        ):
            raise ValueError(
                f"malformed observation blob: {type(data).__name__}"
            )
        for cap in data.get("captures", ()):
            if not isinstance(cap, dict) or "machines" not in cap:
                raise ValueError("malformed capture snapshot in blob")
            if label is not None:
                cap = {**cap, "label": label}
            self._order.append(("snap", len(self._snapshots)))
            self._snapshots.append(cap)

    # -- snapshots ---------------------------------------------------------------

    @staticmethod
    def _snapshot_bed(label: str, bed: "TestBed") -> dict:
        machines = []
        for i, machine in enumerate(bed.machines):
            lib = bed.libs[i] if i < len(bed.libs) else None
            tracer = machine.tracer
            machines.append(
                {
                    "name": machine.name,
                    "ncores": machine.ncores,
                    "now": bed.engine.now,
                    "utilization": machine.utilization(),
                    "transfer_ns": machine.transfer_charged_ns,
                    "dropped": tracer.dropped if tracer is not None else 0,
                    "events": [
                        (e.time, e.kind, e.thread, e.core, e.detail)
                        for e in tracer.events
                    ]
                    if tracer is not None
                    else [],
                    "locks": lib.policy.lock_stats() if lib is not None else [],
                    "pioman": (
                        lib.pioman.stats()
                        if lib is not None and lib.pioman is not None
                        else None
                    ),
                }
            )
        return {"label": label, "machines": machines}

    def captures(self) -> list[dict]:
        """Every capture as a plain dict, in registration order."""
        out = []
        for kind, idx in self._order:
            if kind == "live":
                label, bed = self._live[idx]
                out.append(self._snapshot_bed(label, bed))
            else:
                out.append(self._snapshots[idx])
        return out

    def serialize(self) -> dict:
        """Picklable snapshot of everything captured (worker → parent)."""
        return {"captures": self.captures()}

    # -- consumption ------------------------------------------------------------

    def event_count(self) -> int:
        return sum(
            len(m["events"]) for cap in self.captures() for m in cap["machines"]
        )

    def metrics_registry(self) -> "MetricsRegistry":
        from repro.obs.metrics import MetricsRegistry

        return MetricsRegistry.from_captures(self.captures())

    def export_chrome(self, path: str) -> dict:
        """Write the merged Chrome trace-event JSON; returns the document."""
        from repro.obs.chrometrace import build_trace, write_trace

        doc = build_trace(self.captures())
        write_trace(path, doc)
        return doc

    def __repr__(self) -> str:
        return (
            f"<Observation trace={self.trace} metrics={self.metrics} "
            f"captures={len(self._order)}>"
        )
