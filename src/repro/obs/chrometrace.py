"""Chrome trace-event JSON export: open scheduler traces in Perfetto.

Converts capture snapshots (:meth:`repro.obs.capture.Observation.captures`)
into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
understood by ``ui.perfetto.dev`` and ``chrome://tracing``:

* one *process* (pid) per captured machine, named ``label:machine``;
* one *track* (tid) per core carrying complete ("X") slices — the running
  thread, with nested ``spin:<lock>`` slices during active contention;
* a ``blocked`` track carrying nestable async ("b"/"e") spans for
  block→wake episodes;
* counter ("C") events for per-core run-queue depth.

Timestamps are microseconds (the format's unit); the simulator's integer
nanoseconds divide by 1000, which preserves ordering exactly.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: event phases this exporter emits / the validator accepts
KNOWN_PHASES = frozenset("XBEbeiCM")

#: metadata record names the validator accepts
_META_NAMES = frozenset(
    {"process_name", "process_labels", "process_sort_index", "thread_name",
     "thread_sort_index"}
)


def _us(t_ns: int) -> float:
    return t_ns / 1000.0


def _machine_events(pid: int, label: str, m: dict) -> list[dict]:
    ncores = m["ncores"]
    blocked_tid = ncores
    meta: list[dict] = [
        {
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
            "args": {"name": f"{label}:{m['name']}"},
        }
    ]
    for core in range(ncores):
        meta.append(
            {
                "ph": "M", "name": "thread_name", "pid": pid, "tid": core,
                "ts": 0, "args": {"name": f"core {core}"},
            }
        )
    meta.append(
        {
            "ph": "M", "name": "thread_name", "pid": pid, "tid": blocked_tid,
            "ts": 0, "args": {"name": "blocked"},
        }
    )

    out: list[dict] = []
    end_ns = m["now"]
    open_run: dict[int, tuple[str, int]] = {}  # core -> (thread, start)
    open_spin: dict[str, list[tuple[int, int, str]]] = {}  # thread -> stack
    open_block: dict[str, list[int]] = {}  # thread -> stack of start times
    block_ids: dict[str, int] = {}  # thread -> stable async id

    def close_run(core: int, t_ns: int) -> None:
        cur = open_run.pop(core, None)
        if cur is not None:
            thread, start = cur
            out.append(
                {
                    "ph": "X", "name": thread, "cat": "run", "pid": pid,
                    "tid": core, "ts": _us(start), "dur": _us(t_ns - start),
                }
            )

    for t_ns, kind, thread, core, detail in m["events"]:
        if kind in ("dispatch", "switch"):
            if core is None:
                continue
            close_run(core, t_ns)
            open_run[core] = (thread, t_ns)
        elif kind in ("block", "sleep", "retire"):
            if core is not None:
                cur = open_run.get(core)
                if cur is not None and cur[0] == thread:
                    close_run(core, t_ns)
            if kind == "block":
                open_block.setdefault(thread, []).append(t_ns)
                bid = block_ids.setdefault(thread, len(block_ids) + 1)
                out.append(
                    {
                        "ph": "b", "cat": "block", "name": "blocked",
                        "id": bid, "pid": pid, "tid": blocked_tid,
                        "ts": _us(t_ns),
                        "args": {"thread": thread, "reason": detail},
                    }
                )
        elif kind == "wake":
            stack = open_block.get(thread)
            if stack:
                stack.pop()
                out.append(
                    {
                        "ph": "e", "cat": "block", "name": "blocked",
                        "id": block_ids[thread], "pid": pid,
                        "tid": blocked_tid, "ts": _us(t_ns),
                    }
                )
        elif kind == "spin-begin":
            if core is not None:
                open_spin.setdefault(thread, []).append((core, t_ns, detail))
        elif kind == "spin-end":
            stack = open_spin.get(thread)
            if stack:
                s_core, s_start, lock_name = stack.pop()
                out.append(
                    {
                        "ph": "X", "name": f"spin:{lock_name}", "cat": "spin",
                        "pid": pid, "tid": s_core, "ts": _us(s_start),
                        "dur": _us(t_ns - s_start),
                    }
                )
        elif kind == "runq":
            if core is not None:
                out.append(
                    {
                        "ph": "C", "name": f"runq core{core}", "pid": pid,
                        "tid": core, "ts": _us(t_ns),
                        "args": {"depth": int(detail) if detail else 0},
                    }
                )
        # dispatch bookkeeping kinds with no visual mapping (kick) are skipped

    # close everything still open at the machine's horizon
    for core in list(open_run):
        close_run(core, end_ns)
    for stack in open_spin.values():
        for s_core, s_start, lock_name in stack:
            out.append(
                {
                    "ph": "X", "name": f"spin:{lock_name}", "cat": "spin",
                    "pid": pid, "tid": s_core, "ts": _us(s_start),
                    "dur": _us(end_ns - s_start),
                }
            )
    for thread, stack in open_block.items():
        for _ in stack:
            out.append(
                {
                    "ph": "e", "cat": "block", "name": "blocked",
                    "id": block_ids[thread], "pid": pid, "tid": blocked_tid,
                    "ts": _us(end_ns),
                }
            )

    # a stable sort by ts makes every (pid, tid) track monotonic, since a
    # sorted sequence's subsequences are sorted
    out.sort(key=lambda e: e["ts"])
    return meta + out


def build_trace(captures: Iterable[dict]) -> dict:
    """Merge capture snapshots into one trace-event document.

    Deterministic: processes are numbered in capture order (the parallel
    sweep runner absorbs worker snapshots in sequential sweep order, so a
    parallel run exports the identical document).
    """
    events: list[dict] = []
    pid = 0
    for cap in captures:
        label = cap.get("label", "run")
        for m in cap["machines"]:
            pid += 1
            events.extend(_machine_events(pid, label, m))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_trace(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")


def validate_trace(doc: Any) -> list[str]:
    """Check a document against the trace-event schema this repo relies on.

    Returns a list of problems (empty = valid): structural shape, known
    phases, required fields per phase, non-negative timestamps/durations,
    and **monotonic timestamps per (pid, tid) track** for X/B/E/C events.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be a dict with a 'traceEvents' list"]
    last_ts: dict[tuple[Any, Any], float] = {}
    for i, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"{where}: missing pid/tid")
            continue
        if ph == "M":
            if event.get("name") not in _META_NAMES:
                problems.append(f"{where}: unknown metadata {event.get('name')!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event with bad dur {dur!r}")
        if ph in ("b", "e") and "id" not in event:
            problems.append(f"{where}: async event without id")
        if ph in ("X", "B", "E", "C"):
            key = (event["pid"], event["tid"])
            if ts < last_ts.get(key, 0.0):
                problems.append(
                    f"{where}: non-monotonic ts {ts} on track {key} "
                    f"(last {last_ts[key]})"
                )
            last_ts[key] = ts
    return problems
