"""Cross-technology comparison: MX vs. InfiniBand vs. TCP.

The paper ran its figures on Myri-10G/MX and reports "similar results
with Infiniband" (§2); the related work (§5) dismisses TCP-only
thread-safe MPIs for "perform[ing] badly for small messages".  This sweep
quantifies both statements on the simulated stack: the same pingpong over
each driver preset, plus the locking overheads measured per technology
(the absolute lock cost is network-independent — it's host-side — so the
*relative* impact shrinks as the base latency grows).
"""

from __future__ import annotations

from functools import partial
from typing import Type

from repro.bench.config import BenchConfig
from repro.bench.pingpong import run_pingpong
from repro.bench.runner import run_sweep
from repro.core.session import build_testbed
from repro.net.drivers.base import Driver
from repro.net.drivers.ib import IBDriver
from repro.net.drivers.mx import MXDriver
from repro.net.drivers.tcp import TCPDriver
from repro.util.records import ResultSet

TECHNOLOGIES: dict[str, Type[Driver]] = {
    "mx": MXDriver,
    "ib": IBDriver,
    "tcp": TCPDriver,
}


def technology_latency(
    tech: str, size: int, cfg: BenchConfig, *, policy: str = "none"
) -> float:
    """One pingpong latency point (us) on the given technology."""
    try:
        driver_cls = TECHNOLOGIES[tech]
    except KeyError:
        raise ValueError(
            f"unknown technology {tech!r}; choose from {sorted(TECHNOLOGIES)}"
        ) from None
    bed = build_testbed(
        policy=policy,
        driver_cls=driver_cls,
        seed=cfg.seed,
        jitter_ns=cfg.jitter_ns,
    )
    res = run_pingpong(bed, size, iterations=cfg.iterations, warmup=cfg.warmup)
    return res.latency_us


def run_technology_sweep(cfg: BenchConfig | None = None) -> ResultSet:
    """Latency curves for every technology (no locking)."""
    cfg = cfg or BenchConfig()
    return run_sweep(
        "technologies",
        {tech: partial(technology_latency, tech, cfg=cfg) for tech in TECHNOLOGIES},
        cfg,
    )


def locking_impact_by_technology(
    cfg: BenchConfig | None = None, *, size: int = 8
) -> dict[str, float]:
    """Relative latency impact of coarse locking per technology:
    (coarse − none) / none at a small message size."""
    cfg = cfg or BenchConfig()
    out: dict[str, float] = {}
    for tech in TECHNOLOGIES:
        none = technology_latency(tech, size, cfg, policy="none")
        coarse = technology_latency(tech, size, cfg, policy="coarse")
        out[tech] = (coarse - none) / none
    return out
