"""Overlap / offloaded-submission workloads (paper §4.2, Fig. 9).

The instrument: "a pingpong using non-blocking communication primitives.
A 10 µs computing phase is inserted between the message submission
(nm_isend) and the message waiting (nm_wait)".  Three configurations
differ in *who* submits the message to the network:

* ``inline`` — the reference: the application thread submits;
* ``idle-core`` — idle cores pick the submission up via PIOMan hooks
  (+ one cache crossing, ~400 ns);
* ``tasklet`` — a tasklet on a target core runs the submission
  (+ the tasklet protocol, ~2 µs total).
"""

from __future__ import annotations

from functools import partial

from repro.bench.config import BenchConfig
from repro.bench.pingpong import PingPongResult, run_pingpong
from repro.util.records import ResultSet
from repro.core.session import TestBed, build_testbed
from repro.core.waiting import BusyWait
from repro.pioman.integration import attach_pioman
from repro.pioman.offload import (
    IdleCoreSubmit,
    InlineSubmit,
    SubmitOffload,
    TaskletSubmit,
    set_offload,
)

OFFLOAD_MODES = ("inline", "idle-core", "tasklet")

#: the paper's inserted computing phase
DEFAULT_COMPUTE_NS = 10_000


def make_offload(mode: str, *, target_core: int = 1) -> SubmitOffload:
    if mode == "inline":
        return InlineSubmit()
    if mode == "idle-core":
        return IdleCoreSubmit()
    if mode == "tasklet":
        return TaskletSubmit(target_core=target_core)
    raise ValueError(f"unknown offload mode {mode!r}; choose from {OFFLOAD_MODES}")


def build_overlap_bed(
    mode: str,
    *,
    policy: str = "fine",
    poll_core: int = 1,
    **testbed_kw,
) -> TestBed:
    """Two-node testbed with PIOMan polling on ``poll_core`` (the shared-L2
    sibling of the application's CPU 0) and the chosen submission offload."""
    bed = build_testbed(policy=policy, **testbed_kw)
    for node in (0, 1):
        attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[poll_core])
        set_offload(bed.lib(node), make_offload(mode, target_core=poll_core))
    return bed


def run_overlap(
    bed: TestBed,
    size: int,
    *,
    compute_ns: int = DEFAULT_COMPUTE_NS,
    iterations: int = 16,
    warmup: int = 4,
) -> PingPongResult:
    """The Fig. 9 measurement on an existing testbed."""
    return run_pingpong(
        bed,
        size,
        iterations=iterations,
        warmup=warmup,
        wait_factory=BusyWait,
        compute_ns=compute_ns,
    )


#: Fig. 9 series labels, keyed by submission mode (insertion order is the
#: figure's series order: reference first)
FIG9_LABELS = {"inline": "reference", "idle-core": "no tasklets", "tasklet": "tasklets"}


def overlap_point(mode: str, size: int, cfg: BenchConfig) -> float:
    """One Fig. 9 latency point (us): fresh testbed, one offload mode.

    Module-level (not a closure) so ``run_sweep`` can ship it to worker
    processes via :func:`functools.partial`.
    """
    bed = build_overlap_bed(mode)
    res = run_overlap(bed, size, iterations=cfg.iterations, warmup=cfg.warmup)
    return res.latency_us


def run_fig9(cfg: BenchConfig) -> ResultSet:
    """Figure 9: deferred-submission latency per offload mode."""
    from repro.bench.runner import run_sweep

    configs = {
        label: partial(overlap_point, mode, cfg=cfg)
        for mode, label in FIG9_LABELS.items()
    }
    return run_sweep("fig9", configs, cfg)
