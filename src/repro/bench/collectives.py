"""Collective-operation scaling over Mad-MPI.

The paper's future work points at "real applications that mix
multi-threading and message passing" through the MPI interface; this
sweep measures the building blocks: barrier / broadcast / allreduce time
as a function of communicator size, under a chosen locking policy.

Expected shapes: the binomial/dissemination algorithms scale as
⌈log₂ p⌉ network rounds; the ring allgather as p − 1 rounds.
"""

from __future__ import annotations

import operator

from repro.core.session import build_testbed
from repro.madmpi import create_world, run_ranks
from repro.util.records import ResultRecord, ResultSet

COLLECTIVES = ("barrier", "bcast", "allreduce", "allgather")


def _collective_gen(name: str, comm, payload):
    if name == "barrier":
        yield from comm.Barrier()
    elif name == "bcast":
        yield from comm.Bcast(payload if comm.rank == 0 else None, root=0)
    elif name == "allreduce":
        yield from comm.Allreduce(comm.rank + 1, operator.add)
    elif name == "allgather":
        yield from comm.Allgather(payload)
    else:
        raise ValueError(f"unknown collective {name!r}")


def collective_time_us(
    name: str,
    nodes: int,
    *,
    policy: str = "fine",
    rounds: int = 8,
    warmup: int = 2,
    payload_bytes: int = 64,
) -> float:
    """Mean time of one collective round over ``nodes`` ranks (us)."""
    if name not in COLLECTIVES:
        raise ValueError(f"unknown collective {name!r}; choose from {COLLECTIVES}")
    if rounds <= warmup:
        raise ValueError("rounds must exceed warmup")
    bed = build_testbed(nodes=nodes, policy=policy)
    comms = create_world(bed)
    payload = b"x" * payload_bytes
    times: list[int] = []

    def rank_fn(comm):
        for i in range(rounds):
            start = bed.engine.now
            yield from _collective_gen(name, comm, payload)
            if comm.rank == 0:
                times.append(bed.engine.now - start)

    run_ranks(bed, comms, rank_fn)
    steady = times[warmup:]
    return sum(steady) / len(steady) / 1_000


def run_collective_scaling(
    node_counts: tuple[int, ...] = (2, 3, 4, 6), *, policy: str = "fine"
) -> ResultSet:
    """Collective time vs. communicator size."""
    results = ResultSet()
    for name in COLLECTIVES:
        for nodes in node_counts:
            us = collective_time_us(name, nodes, policy=policy)
            results.add(
                ResultRecord(
                    "collectives", name, nodes, us, extra={"policy": policy}
                )
            )
    return results
