"""Benchmark configuration defaults.

The simulator is deterministic, so unlike the paper's hardware runs a
handful of iterations per point suffices: the first iterations warm the
protocol paths (peer tables, unexpected-queue effects), the rest are
identical.  ``PAPER_SIZES`` is the x axis of Figures 3, 5, 6 and 7
(1 B – 2 KB); ``OVERLAP_SIZES`` that of Figure 9 (2 KB – 32 KB).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.util.units import parse_size

#: message sizes of the latency figures (1 B ... 2 KB)
PAPER_SIZES: tuple[int, ...] = tuple(2**i for i in range(0, 12))

#: message sizes of the overlap figure (2 KB ... 32 KB)
OVERLAP_SIZES: tuple[int, ...] = tuple(2**i for i in range(11, 16))


@dataclass(frozen=True)
class BenchConfig:
    """Iteration counts and sweep sizes for a benchmark run."""

    iterations: int = 24
    warmup: int = 4
    sizes: tuple[int, ...] = PAPER_SIZES
    seed: int = 0
    jitter_ns: int = 0
    #: hard ceiling on simulated time per point (debugging aid)
    max_time_ns: int = 20_000_000_000
    #: worker processes for the sweep (None = REPRO_BENCH_WORKERS, else 1)
    workers: int | None = None
    #: incremental point cache (None = REPRO_BENCH_CACHE, default on);
    #: execution-only, never part of a point's cache key
    cache: bool | None = None

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("iterations must be > 0")
        if not (0 <= self.warmup < self.iterations):
            raise ValueError("need 0 <= warmup < iterations")
        if not self.sizes:
            raise ValueError("sizes must be non-empty")
        if self.workers is not None and self.workers <= 0:
            raise ValueError("workers must be > 0 (or None for the default)")

    @classmethod
    def quick(cls, sizes: tuple[int, ...] | None = None) -> "BenchConfig":
        """Small config for unit tests."""
        return cls(iterations=6, warmup=2, sizes=sizes or (8, 1024))

    def with_sizes(self, specs) -> "BenchConfig":
        """Copy with sizes parsed from ints or '2K'-style strings."""
        parsed = tuple(parse_size(s) for s in specs)
        return dataclasses.replace(self, sizes=parsed)

    def with_workers(self, workers: int | None) -> "BenchConfig":
        """Copy with a different sweep worker count."""
        return dataclasses.replace(self, workers=workers)

    def with_cache(self, cache: bool | None) -> "BenchConfig":
        """Copy with the incremental point cache forced on/off."""
        return dataclasses.replace(self, cache=cache)
