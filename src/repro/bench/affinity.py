"""Measurement functions for the cache-affinity experiments (Fig. 8, §4.1)
and the dedicated-core computation-loss experiment (§3.3).

Figure 8's instrument: "a pingpong test that binds the main thread to a
CPU" while the polling is delegated to a chosen core — here via PIOMan's
``poll_cores`` and passive waiting, so every completion crosses from the
polling core to CPU 0.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.bench.config import BenchConfig
from repro.bench.pingpong import run_pingpong
from repro.bench.runner import run_sweep
from repro.core.session import build_testbed
from repro.core.waiting import BusyWait, FlagSpinWait
from repro.pioman.integration import attach_pioman
from repro.sim.process import Delay, SimGen, YieldCore
from repro.sim.topology import CacheTopology, dual_quad_xeon, quad_xeon_x5460
from repro.util.records import ResultSet


def polling_latency(
    poll_core: int,
    size: int,
    cfg: BenchConfig,
    *,
    topology_factory: Callable[[], CacheTopology] = quad_xeon_x5460,
) -> float:
    """Pingpong latency (us) with the app thread bound to CPU 0 and the
    polling bound to ``poll_core`` on both nodes.

    ``poll_core == 0`` is the baseline: the application thread polls
    itself (ordinary busy waiting).  For other cores, the application only
    spins on the completion flag while PIOMan polls from the chosen core's
    idle loop — so the delta over the baseline is the poller-to-waiter
    cache transfer, exactly what Fig. 8 plots.
    """
    bed = build_testbed(
        policy="fine",
        topology_factory=topology_factory,
        seed=cfg.seed,
        jitter_ns=cfg.jitter_ns,
    )
    for node in (0, 1):
        attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[poll_core])
    wait_factory = BusyWait if poll_core == 0 else FlagSpinWait
    res = run_pingpong(
        bed,
        size,
        iterations=cfg.iterations,
        warmup=cfg.warmup,
        wait_factory=wait_factory,
        core_a=0,
        core_b=0,
    )
    return res.latency_us


def run_fig8(cfg: BenchConfig | None = None) -> ResultSet:
    """Figure 8: polling on CPU 0/1/2/3 of the quad-core Xeon X5460."""
    cfg = cfg or BenchConfig()
    configs = {
        f"polling on cpu {core}": partial(polling_latency, core, cfg=cfg)
        for core in range(4)
    }
    return run_sweep("fig8", configs, cfg)


def run_fig8b(cfg: BenchConfig | None = None) -> ResultSet:
    """§4.1 in-text: the same experiment on the dual quad-core node.

    CPU 1 shares a cache with CPU 0, CPUs 2-3 share the chip only, CPUs
    4-7 sit on the other chip; one representative of each tier is enough.
    """
    cfg = cfg or BenchConfig()
    configs = {
        f"polling on cpu {core}": partial(
            polling_latency, core, cfg=cfg, topology_factory=dual_quad_xeon
        )
        for core in (0, 1, 2, 4)
    }
    return run_sweep("fig8b", configs, cfg)


def affinity_deltas(results: ResultSet) -> dict[str, float]:
    """Per-core latency deltas (ns) over the polling-on-cpu-0 baseline,
    averaged across sizes."""
    base = dict(results.series("polling on cpu 0"))
    out: dict[str, float] = {}
    for config in results.configs():
        if config == "polling on cpu 0":
            continue
        series = dict(results.series(config))
        diffs = [series[s] - base[s] for s in series if s in base]
        out[config] = sum(diffs) / len(diffs) * 1_000  # us -> ns
    return out


# ---------------------------------------------------------------- §3.3 (E8)


def _compute_loop(stop_flag: dict, counter: list, quantum_ns: int) -> SimGen:
    """A compute thread: burn fixed quanta, count completed units, yield so
    equal-priority threads share the core fairly."""
    while not stop_flag["stop"]:
        yield Delay(quantum_ns, "compute")
        counter[0] += 1
        yield YieldCore()


def dedicated_core_throughput(
    *,
    dedicate: bool,
    nthreads: int = 4,
    duration_ns: int = 2_000_000,
    quantum_ns: int = 5_000,
) -> int:
    """§3.3: aggregate compute units finished on a quad-core node within
    ``duration_ns``, with or without one core dedicated to communication
    polling.  The paper: "dedicating one core to communication leads to up
    to 25 % decrease of the computation power"."""
    from repro.sim import Engine, Machine

    engine = Engine()
    machine = Machine(engine, quad_xeon_x5460())
    usable = machine.ncores - (1 if dedicate else 0)
    stop = {"stop": False}
    counter = [0]
    for i in range(nthreads):
        machine.scheduler.spawn(
            _compute_loop(stop, counter, quantum_ns),
            name=f"compute{i}",
            core=i % usable,
            bound=True,
        )
    if dedicate:
        # the dedicated core busy-polls the (idle) network for the whole run
        def poller():
            while not stop["stop"]:
                yield Delay(100, "poll")

        machine.scheduler.spawn(
            poller(), name="dedicated-poller", core=machine.ncores - 1, bound=True
        )
    engine.run(until=lambda: engine.now >= duration_ns, max_time=duration_ns * 2)
    stop["stop"] = True
    machine.check_failures()
    return counter[0]


def dedicated_core_loss(**kw) -> float:
    """Fractional compute-throughput loss from dedicating one core."""
    full = dedicated_core_throughput(dedicate=False, **kw)
    reduced = dedicated_core_throughput(dedicate=True, **kw)
    if full == 0:
        raise RuntimeError("compute loop made no progress")
    return (full - reduced) / full
