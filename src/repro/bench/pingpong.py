"""Pingpong workload drivers.

The paper's measurement instrument is always a pingpong: single-threaded
(Fig. 3, 6, 7), concurrent with two thread pairs (Fig. 5), with bound
threads and delegated polling (Fig. 8), or with an inserted compute phase
(Fig. 9).  This module provides those drivers over a
:class:`~repro.core.session.TestBed`.

All latencies are reported as half the measured round-trip, matching the
papers' convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.session import TestBed
from repro.core.waiting import BusyWait, WaitStrategy
from repro.sim.process import Delay, SimGen
from repro.util.units import ns_to_us

WaitFactory = Callable[[], WaitStrategy]


@dataclass
class PingPongResult:
    """Round-trip times of one pingpong flow."""

    size: int
    rtts_ns: list[int]
    warmup: int

    @property
    def steady_rtts(self) -> list[int]:
        return self.rtts_ns[self.warmup :]

    @property
    def latency_ns(self) -> float:
        """Mean steady-state half-round-trip in nanoseconds."""
        steady = self.steady_rtts
        if not steady:
            raise ValueError("no steady-state iterations recorded")
        return sum(steady) / len(steady) / 2.0

    @property
    def latency_us(self) -> float:
        return ns_to_us(self.latency_ns)


def ping_thread(
    bed: TestBed,
    node: int,
    peer: int,
    *,
    tag: int,
    size: int,
    iterations: int,
    wait_factory: WaitFactory,
    rtts_out: list[int],
    compute_ns: int = 0,
    stagger: bool = True,
) -> SimGen:
    """Initiator: send, (compute,) wait for the echo; record the RTT.

    With ``compute_ns > 0`` this is the paper's overlap variant: the
    compute phase sits between ``nm_isend`` and ``nm_wait``.

    ``stagger`` (default on) inserts a small *stratified deterministic*
    delay before each iteration, cycling through phases of the ~1 µs
    polling loop.  On real hardware noise provides this averaging for
    free; in the deterministic simulator, without it every iteration
    aligns the arrival to the same point of the poll loop and measured
    latencies carry an arbitrary phase bias of up to one pass.
    """
    lib = bed.lib(node)
    engine = bed.engine
    for i in range(iterations):
        if stagger:
            yield Delay((i * 742 + tag * 131) % 1201, "compute")
        start = engine.now
        rreq = yield from lib.irecv(peer, tag, size)
        sreq = yield from lib.isend(peer, tag, size)
        if compute_ns:
            yield Delay(compute_ns, "compute")
        yield from lib.wait(sreq, wait_factory())
        yield from lib.wait(rreq, wait_factory())
        rtts_out.append(engine.now - start)


def pong_thread(
    bed: TestBed,
    node: int,
    peer: int,
    *,
    tag: int,
    size: int,
    iterations: int,
    wait_factory: WaitFactory,
    compute_ns: int = 0,
) -> SimGen:
    """Echoer: wait for the ping, reply, (compute,) wait for completion."""
    lib = bed.lib(node)
    for _ in range(iterations):
        rreq = yield from lib.irecv(peer, tag, size)
        yield from lib.wait(rreq, wait_factory())
        sreq = yield from lib.isend(peer, tag, size)
        if compute_ns:
            yield Delay(compute_ns, "compute")
        yield from lib.wait(sreq, wait_factory())


def run_pingpong(
    bed: TestBed,
    size: int,
    *,
    iterations: int = 24,
    warmup: int = 4,
    wait_factory: WaitFactory = BusyWait,
    compute_ns: int = 0,
    node_a: int = 0,
    node_b: int = 1,
    core_a: int = 0,
    core_b: int = 0,
    tag: int = 7,
) -> PingPongResult:
    """Run one single-flow pingpong and return its RTTs."""
    rtts: list[int] = []
    ta = bed.machine(node_a).scheduler.spawn(
        ping_thread(
            bed,
            node_a,
            node_b,
            tag=tag,
            size=size,
            iterations=iterations,
            wait_factory=wait_factory,
            rtts_out=rtts,
            compute_ns=compute_ns,
        ),
        name=f"ping-{size}",
        core=core_a,
        bound=True,
    )
    tb = bed.machine(node_b).scheduler.spawn(
        pong_thread(
            bed,
            node_b,
            node_a,
            tag=tag,
            size=size,
            iterations=iterations,
            wait_factory=wait_factory,
            compute_ns=compute_ns,
        ),
        name=f"pong-{size}",
        core=core_b,
        bound=True,
    )
    bed.run(until=lambda: ta.done and tb.done)
    return PingPongResult(size=size, rtts_ns=rtts, warmup=warmup)


def run_concurrent_pingpong(
    bed: TestBed,
    size: int,
    *,
    nflows: int = 2,
    iterations: int = 24,
    warmup: int = 4,
    wait_factory: WaitFactory = BusyWait,
    node_a: int = 0,
    node_b: int = 1,
) -> list[PingPongResult]:
    """Fig. 5 workload: ``nflows`` thread pairs pingpong concurrently.

    Flow *i* runs on core *i* of both nodes with its own tag, so flows
    contend only on the library's locks and the shared NIC.
    """
    ncores = bed.machine(node_a).ncores
    if nflows > ncores:
        raise ValueError(f"{nflows} flows exceed {ncores} cores")
    flows: list[tuple[object, object, list[int]]] = []
    for i in range(nflows):
        rtts: list[int] = []
        ta = bed.machine(node_a).scheduler.spawn(
            ping_thread(
                bed,
                node_a,
                node_b,
                tag=100 + i,
                size=size,
                iterations=iterations,
                wait_factory=wait_factory,
                rtts_out=rtts,
                stagger=True,
            ),
            name=f"ping{i}-{size}",
            core=i,
            bound=True,
        )
        tb = bed.machine(node_b).scheduler.spawn(
            pong_thread(
                bed,
                node_b,
                node_a,
                tag=100 + i,
                size=size,
                iterations=iterations,
                wait_factory=wait_factory,
            ),
            name=f"pong{i}-{size}",
            core=i,
            bound=True,
        )
        flows.append((ta, tb, rtts))
    bed.run(until=lambda: all(a.done and b.done for a, b, _ in flows))
    return [
        PingPongResult(size=size, rtts_ns=rtts, warmup=warmup) for _, _, rtts in flows
    ]
