"""One entry point per paper artefact: regenerate any figure's data.

Each ``fig*``/``text_*`` function measures, evaluates the paper claims and
returns ``(ResultSet, checks)``; :func:`render` prints the figure-style
table plus verdicts.  Command line::

    python -m repro.bench.figures fig3             # one figure
    python -m repro.bench.figures all              # everything (slow)
    python -m repro.bench.figures fig8 --quick     # reduced sweep
    python -m repro.bench.figures all --workers 8  # parallel sweeps

Every figure function accepts ``workers``: sweep points are measured on
that many worker processes (``repro.bench.parallel``) with results
deterministically identical to the sequential run.  ``workers=None``
defers to the ``REPRO_BENCH_WORKERS`` environment variable.
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.analysis.fit import constant_offset
from repro.bench import affinity, lockcost, locking, overlap, waiting
from repro.bench.config import OVERLAP_SIZES, PAPER_SIZES, BenchConfig
from repro.bench.paper import PaperClaim, claim
from repro.bench.report import print_figure
from repro.util.records import ResultRecord, ResultSet

FigureResult = tuple[ResultSet, list[tuple[PaperClaim, float]]]


#: per-message timing noise for the latency sweeps: real hardware noise
#: averages the polling loop's phase quantisation away; the deterministic
#: simulator reintroduces a small calibrated amount for the same purpose
SWEEP_JITTER_NS = 150


def _cfg(
    quick: bool,
    sizes=PAPER_SIZES,
    workers: int | None = None,
    cache: bool | None = None,
) -> BenchConfig:
    if quick:
        return BenchConfig(
            iterations=24,
            warmup=4,
            sizes=tuple(sizes[::3]) or sizes[:1],
            jitter_ns=SWEEP_JITTER_NS,
            workers=workers,
            cache=cache,
        )
    return BenchConfig(
        iterations=48, warmup=4, sizes=sizes, jitter_ns=SWEEP_JITTER_NS,
        workers=workers, cache=cache,
    )


def fig3(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """Figure 3: impact of locking on latency."""
    results = locking.run_fig3(_cfg(quick, workers=workers, cache=cache))
    offsets = locking.fig3_offsets(results)
    coarse_fit = constant_offset(results.series("none"), results.series("coarse"))
    checks = [
        (claim("fig3-coarse-offset"), offsets["coarse"]),
        (claim("fig3-fine-offset"), offsets["fine"]),
        (claim("fig3-offset-flat"), coarse_fit.spread_ns * 1_000),
    ]
    return results, checks


def fig5(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """Figure 5: concurrent pingpongs.

    The paper's claims are evaluated at the node's saturation flow count
    (see :data:`repro.bench.locking.FIG5_SATURATION_FLOWS`): the simulated
    MX path has about twice the message capacity of the 2009 stack, so the
    two-thread saturation of the paper appears at four flows here.
    """
    results = locking.run_fig5(_cfg(quick, workers=workers, cache=cache))
    ratios = locking.fig5_ratios(results)
    sat = locking.FIG5_SATURATION_FLOWS

    def mean_ratio(config: str) -> float:
        vals = [r for _, r in ratios[config]]
        return sum(vals) / len(vals)

    coarse_ratio = mean_ratio(f"coarse ({sat} threads)")
    fine_ratio = mean_ratio(f"fine ({sat} threads)")
    checks = [
        (claim("fig5-coarse-ratio"), coarse_ratio),
        (claim("fig5-fine-better"), fine_ratio / coarse_ratio),
    ]
    return results, checks


def fig6(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """Figure 6: impact of PIOMan on latency."""
    results = waiting.run_fig6(_cfg(quick, workers=workers, cache=cache))
    fit = constant_offset(results.series("fine"), results.series("pioman (fine)"))
    checks = [(claim("fig6-pioman-offset"), fit.offset_ns * 1_000)]
    return results, checks


def fig7(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """Figure 7: impact of semaphores (passive waiting) on latency."""
    results = waiting.run_fig7(_cfg(quick, workers=workers, cache=cache))
    fit = constant_offset(
        results.series("active (fine)"), results.series("passive (fine)")
    )
    checks = [(claim("fig7-passive-offset"), fit.offset_ns * 1_000)]
    return results, checks


def fig8(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """Figure 8: impact of cache affinity on a quad-core chip."""
    results = affinity.run_fig8(_cfg(quick, workers=workers, cache=cache))
    deltas = affinity.affinity_deltas(results)
    far = (deltas["polling on cpu 2"] + deltas["polling on cpu 3"]) / 2
    checks = [
        (claim("fig8-shared-l2"), deltas["polling on cpu 1"]),
        (claim("fig8-no-shared-cache"), far),
    ]
    return results, checks


def fig8b(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """§4.1 in-text: cache affinity on the dual quad-core node."""
    results = affinity.run_fig8b(_cfg(quick, workers=workers, cache=cache))
    deltas = affinity.affinity_deltas(results)
    checks = [
        (claim("fig8b-shared-l2"), deltas["polling on cpu 1"]),
        (claim("fig8b-same-chip"), deltas["polling on cpu 2"]),
        (claim("fig8b-other-chip"), deltas["polling on cpu 4"]),
    ]
    return results, checks


def fig9(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """Figure 9: impact of tasklets on deferred message submission."""
    cfg = _cfg(quick, sizes=OVERLAP_SIZES, workers=workers, cache=cache)
    results = overlap.run_fig9(cfg)
    ref = results.series("reference")
    tasklet_fit = constant_offset(ref, results.series("tasklets"))
    idle_fit = constant_offset(ref, results.series("no tasklets"))
    checks = [
        (claim("fig9-tasklet-offset"), tasklet_fit.offset_ns * 1_000),
        (claim("fig9-idlecore-offset"), idle_fit.offset_ns * 1_000),
    ]
    return results, checks


def text_lockcost(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """§3.1 text: the 70 ns spinlock cycle and per-message lock counts."""
    cycles = 100 if quick else 1_000
    cycle_ns = lockcost.measure_spin_cycle_ns(cycles)
    results = ResultSet()
    results.add(ResultRecord("lockcost", "spin cycle", 0, cycle_ns / 1_000))
    for policy in ("none", "coarse", "fine"):
        per_msg = lockcost.lock_cycles_per_message(policy)
        results.add(
            ResultRecord(
                "lockcost", f"cycles/msg ({policy})", 0, per_msg,
                extra={"unit": "acquisitions"},
            )
        )
    checks = [(claim("text-spin-cycle"), cycle_ns)]
    return results, checks


def text_dedicated_core(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """§3.3 text: dedicating 1 of 4 cores costs up to 25 % of compute."""
    duration = 500_000 if quick else 2_000_000
    loss = affinity.dedicated_core_loss(duration_ns=duration)
    results = ResultSet()
    results.add(
        ResultRecord("dedicated-core", "throughput loss", 0, loss, extra={"unit": "fraction"})
    )
    checks = [(claim("text-dedicated-core"), loss)]
    return results, checks


def text_fixed_spin(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """§3.3 text: the fixed-spin algorithm avoids switches for fast events."""
    iters = 6 if quick else 12
    results = waiting.run_fixed_spin_sweep(iterations=iters)
    # events arrive at 8 us: compare spin=20us (always spins through the
    # event) with spin=10us (also covers it) — they should agree with the
    # active-wait floor, unlike spin=0 (pure passive)
    active_like = results.point("fixed-spin wait", 20_000)
    pure_passive = results.point("fixed-spin wait", 0)
    checks = [
        (claim("text-fixed-spin"), (active_like - pure_passive) * 1_000),
    ]
    return results, checks


def decompose(
    quick: bool = False, *, workers: int | None = None, cache: bool | None = None
) -> FigureResult:
    """Extension: one-way latency decomposition per policy (§1's method:
    'decomposing each step of thread support')."""
    from repro.analysis.decompose import decompose_message

    results = ResultSet()
    sizes = (8,) if quick else (8, 2048)
    for policy in ("none", "coarse", "fine"):
        for size in sizes:
            d = decompose_message(policy, size)
            for stage in ("submit", "transit", "detection", "delivery"):
                results.add(
                    ResultRecord(
                        "decompose",
                        f"{policy}/{stage}",
                        size,
                        getattr(d, stage) / 1_000,
                        extra={"unit": "us"},
                    )
                )
    return results, []


FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig3": fig3,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig8b": fig8b,
    "fig9": fig9,
    "lockcost": text_lockcost,
    "dedicated-core": text_dedicated_core,
    "fixed-spin": text_fixed_spin,
    "decompose": decompose,
}

TITLES = {
    "fig3": "Figure 3 — Impact of locking on latency (us)",
    "fig5": "Figure 5 — Two concurrent pingpongs (us)",
    "fig6": "Figure 6 — Impact of PIOMan on latency (us)",
    "fig7": "Figure 7 — Impact of semaphores on latency (us)",
    "fig8": "Figure 8 — Impact of cache affinity, quad-core (us)",
    "fig8b": "§4.1 — Cache affinity, dual quad-core (us)",
    "fig9": "Figure 9 — Impact of tasklets on deferred submission (us)",
    "lockcost": "§3.1 — Spinlock cycle cost and per-message lock traffic",
    "dedicated-core": "§3.3 — Compute loss from a dedicated polling core",
    "fixed-spin": "§3.3 — Fixed-spin wait latency vs. spin threshold (us)",
    "decompose": "Extension — One-way latency decomposition by stage (us)",
}


def render(
    name: str,
    *,
    quick: bool = False,
    workers: int | None = None,
    cache: bool | None = None,
    trace: str | None = None,
    metrics: bool = False,
) -> str:
    """Measure and print one artefact; returns the report text.

    Args:
        cache: force the incremental point cache on/off (``None`` defers
            to ``REPRO_BENCH_CACHE``, default on); the footnote records
            how many points were replayed vs. computed.
        trace: path of a Chrome trace-event JSON to export (open it at
            ui.perfetto.dev); covers every testbed the figure builds,
            including points measured on worker processes.
        metrics: also print the observability report (lock contention,
            core utilization, PIOMan counters, overhead decomposition).
    """
    from repro.bench import cache as point_cache
    from repro.bench import parallel
    from repro.bench.report import provenance_note

    try:
        fn = FIGURES[name]
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; known: {sorted(FIGURES)}") from None
    cache_before = point_cache.stats()
    pool_before = parallel.pool_stats()
    if trace is None and not metrics:
        results, checks = fn(quick, workers=workers, cache=cache)
        observation = None
    else:
        from repro.obs import capture as obs_capture

        with obs_capture.observe(trace=trace is not None) as observation:
            results, checks = fn(quick, workers=workers, cache=cache)
    note = provenance_note(
        workers=workers,
        cache_delta=point_cache.stats().delta(cache_before),
        pool_delta=parallel.pool_stats_delta(pool_before),
    )
    text = print_figure(results, title=TITLES[name], checks=checks, note=note)
    if observation is not None:
        extra_parts = []
        if metrics:
            extra_parts.append(observation.metrics_registry().report())
        if trace is not None:
            doc = observation.export_chrome(trace)
            extra_parts.append(
                f"trace: {len(doc['traceEvents'])} trace events "
                f"({observation.event_count()} scheduler events) -> {trace}"
            )
        extra = "\n\n".join(extra_parts)
        print(extra)
        text = text + "\n\n" + extra
    return text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures")
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    parser.add_argument("--quick", action="store_true", help="reduced sweep")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per sweep (default: $REPRO_BENCH_WORKERS or 1); "
        "results are identical to a sequential run",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental point cache (results/.cache/): "
        "measure every sweep point even when an identical point is "
        "already stored; equivalent to REPRO_BENCH_CACHE=0",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="export a Chrome trace-event JSON of every simulated testbed "
        "(open at ui.perfetto.dev); with 'all', each figure gets its own "
        "FILE suffixed by the figure name",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the observability report (locks, core utilization, "
        "PIOMan, overhead decomposition) after each figure",
    )
    args = parser.parse_args(argv)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        trace = args.trace
        if trace is not None and len(names) > 1:
            stem, dot, ext = trace.rpartition(".")
            trace = f"{stem}-{name}.{ext}" if dot else f"{trace}-{name}"
        render(name, quick=args.quick, workers=args.workers,
               cache=False if args.no_cache else None,
               trace=trace, metrics=args.metrics)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
