"""Layer-attribution profiler: where does a simulated second actually go?

The stack/engine throughput gap is a budget question: of the host CPU time
spent simulating one event, how much is the event loop itself
(``sim.engine``), how much the two-level scheduler (``sim.scheduler``), the
lock machinery (``sim.sync``), PIOMan (``pioman``), the NIC drivers
(``net.drivers``), and the NewMadeleine library layers (``core``)?

This module answers it mechanically: run a representative workload under
:mod:`cProfile`, then aggregate per-function self-time into per-layer
buckets keyed by module path.  Stdlib/builtin frames (``heapq``, generator
``send``, ``dict.get``...) carry no repro module path, so their self-time
is *attributed to the layers that called them*, pro-rated by cProfile's
exact per-caller breakdown — the heap pushes belong to the engine, the
generator sends to the scheduler.

Run it standalone::

    PYTHONPATH=src python -m repro.bench.profile [pingpong|stencil] [--json]

or programmatically via :func:`profile_layers`; the engine-throughput
benchmark embeds the result in ``BENCH_engine.json`` so every PR records
not just *how fast* but *where the time went*.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import sys
import time
from typing import Any

#: attribution buckets, in reporting order
LAYERS = (
    "sim.engine",
    "sim.scheduler",
    "sim.sync",
    "pioman",
    "net.drivers",
    "core",
    "harness",
    "other",
)

#: workloads a profile can run (name -> zero-arg callable returning the
#: number of simulated events)
WORKLOADS = ("pingpong", "stencil")


def layer_of(filename: str) -> str | None:
    """Map a profiled frame's filename to a layer bucket.

    Returns None for frames outside the repro package (stdlib, builtins);
    their self-time is attributed to calling layers instead.
    """
    f = filename.replace("\\", "/")
    if "repro/sim/engine" in f:
        return "sim.engine"
    if "repro/sim/sync" in f:
        return "sim.sync"
    if "repro/sim/" in f:
        return "sim.scheduler"
    if "repro/pioman/" in f:
        return "pioman"
    if "repro/net/" in f:
        return "net.drivers"
    if "repro/core/" in f:
        return "core"
    if "repro/" in f:
        return "harness"
    return None


def _run_pingpong(iterations: int) -> int:
    from repro.bench.pingpong import run_pingpong
    from repro.core.session import build_testbed

    bed = build_testbed(policy="fine")
    run_pingpong(bed, 1024, iterations=iterations, warmup=4)
    return bed.engine.events_run


def _run_stencil(steps: int) -> int:
    from repro.workloads.stencil import run_stencil

    run = run_stencil("fine/busy/inline", steps=steps, halo_bytes=4096)
    return run.events_run


def _attribute(stats: dict) -> tuple[dict[str, float], list[dict[str, Any]]]:
    """Aggregate a raw ``pstats`` stats dict into per-layer self-time.

    Returns ``(buckets, rows)``: seconds per layer, and the per-function
    rows (repro frames only) for the top-function listing.
    """
    buckets: dict[str, float] = {layer: 0.0 for layer in LAYERS}
    rows: list[dict[str, Any]] = []
    for (filename, lineno, funcname), (cc, _nc, tt, _ct, callers) in stats.items():
        layer = layer_of(filename)
        if layer is not None:
            buckets[layer] += tt
            rows.append(
                {
                    "func": f"{filename.rsplit('/', 1)[-1]}:{lineno}({funcname})",
                    "layer": layer,
                    "self_s": tt,
                    "calls": cc,
                }
            )
            continue
        # stdlib/builtin frame: pro-rate its self-time over the layers
        # that called it.  cProfile's per-caller tuples carry the exact
        # per-caller tottime split; fall back to call counts when the
        # per-caller times round to zero.
        if not callers:
            buckets["other"] += tt
            continue
        weights = {k: v[2] for k, v in callers.items()}
        total = sum(weights.values())
        if total == 0.0:
            weights = {k: float(v[0]) for k, v in callers.items()}
            total = sum(weights.values())
        if total == 0.0:
            buckets["other"] += tt
            continue
        for caller_key, weight in weights.items():
            caller_layer = layer_of(caller_key[0]) or "other"
            buckets[caller_layer] += tt * weight / total
    return buckets, rows


def profile_layers(
    workload: str = "pingpong",
    *,
    iterations: int = 200,
    steps: int = 6,
    top: int = 10,
) -> dict[str, Any]:
    """Profile one workload and decompose host CPU cost per layer.

    Args:
        workload: ``"pingpong"`` (fine-locking stack pingpong — the
            stack-throughput workload) or ``"stencil"`` (the halo-exchange
            application scenario).
        iterations: pingpong round trips.
        steps: stencil time steps.
        top: how many repro functions to list individually.

    Returns:
        A JSON-ready dict: wall seconds, simulated events, per-layer
        ``{seconds, pct}`` and the ``top`` most expensive functions.
    """
    if workload == "pingpong":
        runner, arg = _run_pingpong, iterations
    elif workload == "stencil":
        runner, arg = _run_stencil, steps
    else:
        raise ValueError(f"unknown workload {workload!r}; choose from {WORKLOADS}")
    # import the workload's modules *before* enabling the profiler, so
    # one-time import machinery doesn't pollute the attribution
    import repro.bench.pingpong  # noqa: F401
    import repro.core.session  # noqa: F401
    import repro.workloads.stencil  # noqa: F401

    prof = cProfile.Profile()
    t0 = time.perf_counter()
    prof.enable()
    events = runner(arg)
    prof.disable()
    wall = time.perf_counter() - t0
    stats = pstats.Stats(prof).stats  # type: ignore[attr-defined]
    buckets, rows = _attribute(stats)
    profiled = sum(buckets.values()) or 1.0
    rows.sort(key=lambda r: r["self_s"], reverse=True)
    return {
        "workload": workload,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall) if wall else None,
        "layers": {
            layer: {
                "self_s": round(seconds, 4),
                "pct": round(100.0 * seconds / profiled, 1),
            }
            for layer, seconds in sorted(
                buckets.items(), key=lambda kv: kv[1], reverse=True
            )
            if seconds > 0.0
        },
        "top_functions": [
            {
                "func": r["func"],
                "layer": r["layer"],
                "self_s": round(r["self_s"], 4),
                "calls": r["calls"],
            }
            for r in rows[:top]
        ],
    }


def format_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`profile_layers` result."""
    lines = [
        f"workload: {report['workload']}  "
        f"({report['events']} events in {report['wall_s']} s, "
        f"{report['events_per_sec']:,} events/s)",
        "",
        f"{'layer':<16} {'self s':>9} {'%':>6}",
    ]
    for layer, row in report["layers"].items():
        lines.append(f"{layer:<16} {row['self_s']:>9.4f} {row['pct']:>6.1f}")
    lines.append("")
    lines.append(f"{'top functions':<44} {'layer':<14} {'self s':>9} {'calls':>9}")
    for row in report["top_functions"]:
        lines.append(
            f"{row['func']:<44} {row['layer']:<14} "
            f"{row['self_s']:>9.4f} {row['calls']:>9}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    as_json = "--json" in argv
    names = [a for a in argv if not a.startswith("-")] or ["pingpong"]
    reports = [profile_layers(name) for name in names]
    if as_json:
        print(json.dumps(reports if len(reports) > 1 else reports[0], indent=2))
    else:
        print("\n\n".join(format_report(r) for r in reports))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
