"""Rendering benchmark results the way the paper's figures read.

One figure becomes one ASCII table (sizes down, configurations across) plus
a block of claim verdicts comparing the measured offsets/ratios against
:mod:`repro.bench.paper`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.bench.paper import PaperClaim
from repro.util.records import ResultSet
from repro.util.tables import render_table
from repro.util.units import format_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.bench.cache import CacheStats


def figure_table(results: ResultSet, *, title: str) -> str:
    """Sizes x configurations latency table (µs), like a figure's data.

    Grid holes (a partially failed sweep) render as ``-`` **and** raise a
    loud footnote with the exact missing cells — a partial figure must
    never read like a complete one.  The hole count itself is available to
    harnesses via :meth:`~repro.util.records.ResultSet.missing_points`.
    """
    configs = results.configs()
    if not configs:
        raise ValueError("empty result set")
    headers = ["size"] + list(configs)
    rows = []
    for size in results.sizes():
        row: list[object] = [format_size(size)]
        for config in configs:
            try:
                row.append(results.point(config, size))
            except KeyError:
                row.append("-")
        rows.append(row)
    text = render_table(headers, rows, title=title)
    missing = results.missing_points()
    if missing:
        shown = ", ".join(
            f"{config}@{format_size(size)}" for config, size in missing[:8]
        )
        if len(missing) > 8:
            shown += ", ..."
        text += (
            f"\n!! INCOMPLETE SWEEP: {len(missing)} missing point(s): {shown}"
        )
    return text


def provenance_note(
    *,
    workers: int | None = None,
    cache_delta: "CacheStats | None" = None,
    pool_delta: Mapping[str, int] | None = None,
) -> str | None:
    """The sweep-provenance footnote: worker count, cache hit/miss counts
    and pool reuse — so every figure records whether its points were
    *computed* or *replayed* from the incremental cache.

    Returns ``None`` when there is nothing worth noting (sequential,
    cache untouched), keeping cacheless reports byte-identical to the
    pre-cache era.
    """
    parts = []
    if workers and workers > 1:
        parts.append(f"sweep: {workers} worker processes")
    if cache_delta is not None and (
        cache_delta.hits or cache_delta.misses or cache_delta.invalidations
    ):
        bit = (
            f"cache: {cache_delta.hits} hit(s) / {cache_delta.misses} miss(es)"
        )
        if cache_delta.invalidations:
            bit += f" / {cache_delta.invalidations} discarded"
        if cache_delta.misses == 0 and cache_delta.hits:
            bit += " — fully replayed"
        parts.append(bit)
    if pool_delta is not None and pool_delta.get("dispatched"):
        state = "reused" if not pool_delta.get("created") else "spawned"
        parts.append(
            f"pool: {pool_delta['dispatched']} task(s) on a {state} pool"
        )
    return "; ".join(parts) if parts else None


def verdict_block(checks: list[tuple[PaperClaim, float]]) -> str:
    """One verdict line per (claim, measured value) pair."""
    return "\n".join(claim.verdict(measured) for claim, measured in checks)


def print_figure(
    results: ResultSet,
    *,
    title: str,
    checks: list[tuple[PaperClaim, float]] | None = None,
    note: str | None = None,
) -> str:
    """Render (and print) a full figure report; returns the text.

    ``note`` is a free-form provenance line (e.g. the sweep's worker
    count) appended after the table — kept out of the ResultSet itself so
    parallel and sequential runs stay byte-identical on disk.
    """
    parts = [figure_table(results, title=title)]
    if note:
        parts.append(f"({note})")
    if checks:
        parts.append("")
        parts.append(verdict_block(checks))
    text = "\n".join(parts)
    print(text)
    return text
