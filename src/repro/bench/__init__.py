"""Benchmark harness: one regenerator per paper figure/table.

``python -m repro.bench.figures <fig>`` reprints any figure's data with
paper-claim verdicts; the ``benchmarks/`` directory wires the same
functions into pytest-benchmark.  Sweeps fan out to worker processes
with ``--workers N`` / ``REPRO_BENCH_WORKERS`` (see
:mod:`repro.bench.parallel`); results are deterministically identical
to a sequential run.
"""

from repro.bench.config import OVERLAP_SIZES, PAPER_SIZES, BenchConfig
from repro.bench.parallel import WORKERS_ENV, resolve_workers
from repro.bench.overlap import (
    DEFAULT_COMPUTE_NS,
    OFFLOAD_MODES,
    build_overlap_bed,
    make_offload,
    run_overlap,
)
from repro.bench.pingpong import (
    PingPongResult,
    ping_thread,
    pong_thread,
    run_concurrent_pingpong,
    run_pingpong,
)
from repro.bench.runner import run_sweep

__all__ = [
    "OVERLAP_SIZES",
    "PAPER_SIZES",
    "BenchConfig",
    "DEFAULT_COMPUTE_NS",
    "OFFLOAD_MODES",
    "build_overlap_bed",
    "make_offload",
    "run_overlap",
    "PingPongResult",
    "ping_thread",
    "pong_thread",
    "run_concurrent_pingpong",
    "run_pingpong",
    "run_sweep",
    "WORKERS_ENV",
    "resolve_workers",
]
