"""Streaming bandwidth measurements.

Figure 3's caption-level claim is about *latency*, but the text is
explicit twice that locking overheads "do not impact bandwidth".  This
driver measures sustained one-way bandwidth — a window of in-flight
messages streaming from node 0 to node 1 — per locking policy and message
size, so the claim can be checked directly rather than inferred from
constant latency offsets.
"""

from __future__ import annotations

from repro.bench.config import BenchConfig
from repro.core.session import build_testbed
from repro.core.waiting import BusyWait
from repro.util.records import ResultRecord, ResultSet


def stream_bandwidth_mbps(
    policy: str,
    size: int,
    *,
    messages: int = 32,
    window: int = 4,
    seed: int = 0,
) -> float:
    """Sustained bandwidth (MB/s) streaming ``messages`` of ``size`` bytes.

    The sender keeps ``window`` sends in flight (non-blocking, waiting on
    the oldest), the classic bandwidth-test shape.
    """
    if messages <= 0 or window <= 0:
        raise ValueError("messages and window must be > 0")
    bed = build_testbed(policy=policy, seed=seed)
    done = {}

    def sender():
        lib = bed.lib(0)
        inflight = []
        for i in range(messages):
            req = yield from lib.isend(1, 11, size)
            inflight.append(req)
            if len(inflight) >= window:
                yield from lib.wait(inflight.pop(0), BusyWait())
        for req in inflight:
            yield from lib.wait(req, BusyWait())

    def receiver():
        lib = bed.lib(1)
        reqs = []
        for _ in range(messages):
            req = yield from lib.irecv(0, 11, size)
            reqs.append(req)
        for req in reqs:
            yield from lib.wait(req, BusyWait())
        done["at"] = bed.engine.now

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0, bound=True)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0, bound=True)
    bed.run(until=lambda: ts.done and tr.done)
    total_bytes = messages * size
    seconds = done["at"] / 1e9
    return total_bytes / seconds / 1e6


def run_bandwidth_sweep(
    cfg: BenchConfig | None = None,
    *,
    policies: tuple[str, ...] = ("none", "coarse", "fine"),
) -> ResultSet:
    """Bandwidth (MB/s) per policy across sizes.

    The latency_us field of each record holds MB/s (the generic record
    schema's metric slot); ``extra["unit"]`` says so.
    """
    cfg = cfg or BenchConfig(sizes=(4096, 16 * 1024, 64 * 1024, 256 * 1024))
    results = ResultSet()
    for policy in policies:
        for size in cfg.sizes:
            mbps = stream_bandwidth_mbps(policy, size, seed=cfg.seed)
            results.add(
                ResultRecord(
                    "bandwidth", policy, size, mbps, extra={"unit": "MB/s"}
                )
            )
    return results
