"""Measurement functions for the waiting experiments (Figures 6, 7, §3.3).

* Figure 6 — PIOMan's management overhead: busy waiting directly on the
  library vs. through PIOMan, under both locking policies.
* Figure 7 — active vs. passive (semaphore) waiting, both via PIOMan.
* §3.3 fixed-spin — latency vs. the spin threshold when the event arrives
  after a controlled delay (Karlin et al.'s competitive spinning).
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.bench.config import BenchConfig
from repro.bench.pingpong import run_pingpong
from repro.bench.runner import run_sweep
from repro.core.session import TestBed, build_testbed
from repro.core.waiting import (
    BusyWait,
    FixedSpinWait,
    PassiveWait,
    PiomanBusyWait,
    WaitStrategy,
)
from repro.pioman.integration import attach_pioman
from repro.sim.process import Delay
from repro.util.records import ResultRecord, ResultSet


def _bed(policy: str, cfg: BenchConfig, *, pioman: bool) -> TestBed:
    bed = build_testbed(policy=policy, seed=cfg.seed, jitter_ns=cfg.jitter_ns)
    if pioman:
        for node in (0, 1):
            # polling stays on the application's core: Figs. 6/7 isolate
            # the PIOMan/semaphore costs from cache-affinity effects
            attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[0])
    return bed


def _latency(
    policy: str,
    size: int,
    cfg: BenchConfig,
    wait_factory: Callable[[], WaitStrategy],
    *,
    pioman: bool,
) -> float:
    bed = _bed(policy, cfg, pioman=pioman)
    res = run_pingpong(
        bed, size, iterations=cfg.iterations, warmup=cfg.warmup,
        wait_factory=wait_factory,
    )
    return res.latency_us


def run_fig6(cfg: BenchConfig | None = None) -> ResultSet:
    """Figure 6: impact of PIOMan on latency.

    Four series: {coarse, fine} × {direct busy wait, PIOMan busy wait}.
    """
    cfg = cfg or BenchConfig()
    configs = {}
    for policy in ("coarse", "fine"):
        configs[f"{policy}"] = partial(
            _latency, policy, cfg=cfg, wait_factory=BusyWait, pioman=False
        )
        configs[f"pioman ({policy})"] = partial(
            _latency, policy, cfg=cfg, wait_factory=PiomanBusyWait, pioman=True
        )
    return run_sweep("fig6", configs, cfg)


def run_fig7(cfg: BenchConfig | None = None) -> ResultSet:
    """Figure 7: impact of semaphores (active vs. passive waiting)."""
    cfg = cfg or BenchConfig()
    configs = {}
    for policy in ("coarse", "fine"):
        configs[f"active ({policy})"] = partial(
            _latency, policy, cfg=cfg, wait_factory=PiomanBusyWait, pioman=True
        )
        configs[f"passive ({policy})"] = partial(
            _latency, policy, cfg=cfg, wait_factory=PassiveWait, pioman=True
        )
    return run_sweep("fig7", configs, cfg)


def run_fixed_spin_sweep(
    spin_values_ns: tuple[int, ...] = (0, 1_000, 2_000, 5_000, 10_000, 20_000),
    event_delay_ns: int = 8_000,
    *,
    iterations: int = 12,
    warmup: int = 2,
) -> ResultSet:
    """§3.3 / E9: one receive whose message arrives ``event_delay_ns`` after
    the wait starts, waited on with different spin thresholds.

    With ``spin >= delay`` the switch is avoided (latency ≈ active); with
    ``spin < delay`` the 750 ns switch cost appears but is bounded.
    """
    results = ResultSet()
    for spin_ns in spin_values_ns:
        waited: list[int] = []
        for _ in range(iterations):
            bed = build_testbed(policy="fine")
            for node in (0, 1):
                # polling pinned to the waiter's core, as in Figs. 6/7:
                # the sweep isolates the spin/block trade-off from
                # cache-affinity effects
                attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[0])

            def receiver():
                lib = bed.lib(0)
                req = yield from lib.irecv(1, 4, 8)
                t0 = bed.engine.now
                yield from lib.wait(req, FixedSpinWait(spin_ns=spin_ns))
                waited.append(bed.engine.now - t0)

            def sender():
                lib = bed.lib(1)
                yield Delay(event_delay_ns, "compute")
                req = yield from lib.isend(0, 4, 8)
                yield from lib.wait(req)

            tr = bed.machine(0).scheduler.spawn(receiver(), name="r", core=0, bound=True)
            ts = bed.machine(1).scheduler.spawn(sender(), name="s", core=0, bound=True)
            bed.run(until=lambda: tr.done and ts.done)
        steady = waited[warmup:]
        mean_us = sum(steady) / len(steady) / 1_000
        results.add(
            ResultRecord(
                # one series, spin threshold on the size axis: the sweep is
                # 1-D, and a per-threshold config would render a diagonal
                # table indistinguishable from a sweep full of holes
                "fixed-spin",
                "fixed-spin wait",
                spin_ns,
                mean_us,
                extra={"event_delay_ns": event_delay_ns},
            )
        )
    return results
