"""Content-addressed, on-disk cache of sweep points.

The figure and workload suites re-simulate every (config, size) point on
every invocation even when nothing changed — and a sweep point is a pure
function of the simulator source, the point function (with its bound
arguments), the benchmark config and the message size.  This module
fingerprints exactly those inputs into a SHA-256 key and stores the
measured latency (plus the point's serialized observation blob, when one
was captured) under ``results/.cache/``, so a warm re-run replays every
unchanged point instead of simulating it.

Key material, in order:

* the **package digest** — a combined SHA-256 over every ``*.py`` module
  of the installed ``repro`` package, so *any* source edit invalidates
  every entry (the conservative rule: simulated latencies may depend on
  any layer);
* the **point-function fingerprint** — module + qualname for plain
  functions, recursively expanded ``functools.partial`` args/keywords
  (pickled), with embedded :class:`~repro.bench.config.BenchConfig`
  values normalized so worker counts and cache flags never split keys;
* the **sweep config** (iterations, warmup, seed, jitter, time limit —
  *not* ``sizes``/``workers``/``cache``), the experiment id, the config
  label and the **message size**;
* the **observation spec** (trace flag + ring capacity) when a capture
  must ride along — entries recorded without a capture never satisfy an
  observed run.

Entries live one-per-file under ``objects/<k[:2]>/<key>.pkl`` beside an
``index.json`` of per-entry provenance.  A corrupted entry is discarded
*loudly* (``RuntimeWarning`` + invalidation counter), never served.

Opt-outs: ``REPRO_BENCH_CACHE=0`` (environment) or ``--no-cache`` on the
figure/workload CLIs; ``REPRO_BENCH_CACHE_DIR`` relocates the store.
Hit/miss/invalidation counters accumulate process-wide (:func:`stats`)
and every sweep report footnote prints the per-figure delta.  Inspect or
wipe the store with ``python -m repro.bench.cache stats|clear``.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import warnings
from pathlib import Path
from typing import Any, Mapping

#: set to ``0``/``false``/``no``/``off`` to disable the cache entirely
CACHE_ENV = "REPRO_BENCH_CACHE"

#: overrides the on-disk location (default ``results/.cache``)
CACHE_DIR_ENV = "REPRO_BENCH_CACHE_DIR"

#: default store location, relative to the working directory
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")

#: bump to orphan every existing entry after an incompatible layout change
ENTRY_FORMAT = 1


def enabled(flag: bool | None = None) -> bool:
    """Resolve whether caching is on.

    An explicit ``flag`` (e.g. a CLI ``--no-cache``) wins; otherwise the
    ``REPRO_BENCH_CACHE`` environment variable decides (default: on).
    """
    if flag is not None:
        return flag
    return os.environ.get(CACHE_ENV, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def cache_dir() -> Path:
    """The active store directory (``REPRO_BENCH_CACHE_DIR`` or default)."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


# -- statistics ---------------------------------------------------------------


@dataclasses.dataclass
class CacheStats:
    """Monotonic process-wide counters (snapshot via :func:`stats`)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counter difference since an ``earlier`` snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            invalidations=self.invalidations - earlier.invalidations,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_ratio": round(self.hit_ratio(), 4),
        }


_stats = CacheStats()


def stats() -> CacheStats:
    """A snapshot of the process-wide counters."""
    return dataclasses.replace(_stats)


def reset_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    global _stats
    _stats = CacheStats()


# -- package digest -----------------------------------------------------------

_package_digest_memo: str | None = None


def module_digests() -> dict[str, str]:
    """Per-module SHA-256 of every ``*.py`` file in the ``repro`` package,
    keyed by package-relative POSIX path, sorted."""
    import repro

    root = Path(repro.__file__).resolve().parent
    return {
        path.relative_to(root).as_posix(): hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
        for path in sorted(root.rglob("*.py"))
    }


def package_digest() -> str:
    """Combined digest over :func:`module_digests`, memoized per process.

    Any source edit anywhere in the package changes this value and thereby
    invalidates every cached point — the conservative invalidation rule.
    """
    global _package_digest_memo
    if _package_digest_memo is None:
        h = hashlib.sha256()
        for rel, digest in module_digests().items():
            h.update(rel.encode("utf-8"))
            h.update(b"\0")
            h.update(digest.encode("ascii"))
            h.update(b"\n")
        _package_digest_memo = h.hexdigest()
    return _package_digest_memo


# -- fingerprinting -----------------------------------------------------------


def _fingerprint_value(value: Any) -> Any:
    """Stable, picklable stand-in for one bound argument.

    :class:`~repro.bench.config.BenchConfig` values are normalized so that
    execution-only knobs (``workers``, ``cache``) and the sibling size list
    never split keys — a warm re-run at any ``--workers`` count must hit.
    """
    from repro.bench.config import BenchConfig

    if isinstance(value, BenchConfig):
        return ("BenchConfig", _normalize_config(value))
    return pickle.dumps(value, protocol=4)


def _normalize_config(cfg: Any) -> tuple:
    """The key-relevant fields of a BenchConfig, sorted by name."""
    fields = dataclasses.asdict(cfg)
    for execution_only in ("workers", "cache", "sizes"):
        fields.pop(execution_only, None)
    return tuple(sorted(fields.items()))


def _fingerprint_fn(fn: Any) -> Any:
    """Structural identity of a point function.

    Raises when the function cannot be attested (lambdas, closures): such
    points are simply not cacheable.
    """
    if isinstance(fn, functools.partial):
        return (
            "partial",
            _fingerprint_fn(fn.func),
            tuple(_fingerprint_value(v) for v in fn.args),
            tuple(
                sorted(
                    (k, _fingerprint_value(v)) for k, v in fn.keywords.items()
                )
            ),
        )
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(f"point function {fn!r} has no stable identity")
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        # bound method: the instance state is part of the identity
        return ("method", module, qualname, pickle.dumps(owner, protocol=4))
    return ("fn", module, qualname)


def point_key(
    fn: Any,
    *,
    experiment: str,
    config: str,
    size: int,
    cfg: Any,
    obs_spec: tuple | None = None,
) -> str | None:
    """The SHA-256 cache key of one sweep point, or ``None`` when the
    point cannot be fingerprinted (then it is measured every run)."""
    try:
        material = (
            ENTRY_FORMAT,
            package_digest(),
            _fingerprint_fn(fn),
            experiment,
            config,
            int(size),
            _normalize_config(cfg),
            obs_spec,
        )
        blob = pickle.dumps(material, protocol=4)
    except Exception:
        return None
    return hashlib.sha256(blob).hexdigest()


# -- the store ----------------------------------------------------------------


class PointCache:
    """One content-addressed store directory plus its provenance index.

    Only the sweep's parent process reads and writes the store — worker
    processes never touch it — so no cross-process locking is needed and
    hit/miss accounting stays deterministic.
    """

    def __init__(self, root: os.PathLike | str | None = None) -> None:
        self.root = Path(root) if root is not None else cache_dir()
        self._pending_index: dict[str, dict] = {}

    # the two leading key characters shard the object directory so no
    # single directory accumulates every entry
    def _entry_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def get(self, key: str, *, need_capture: bool = False) -> dict | None:
        """Load one entry; ``None`` (and a miss) when absent or unusable.

        ``need_capture=True`` refuses entries recorded without an
        observation blob — an observed run must never silently lose its
        trace to a cache recorded blind.  Corrupted entries are deleted
        and reported via ``RuntimeWarning``, never served.
        """
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            _stats.misses += 1
            return None
        try:
            entry = pickle.loads(blob)
            if not isinstance(entry, dict) or entry.get("format") != ENTRY_FORMAT:
                raise ValueError("unrecognized entry layout")
            float(entry["latency_us"])
            capture = entry.get("capture")
            if capture is not None:
                caps = capture["captures"]
                if not all(
                    isinstance(c, dict) and "machines" in c for c in caps
                ):
                    raise ValueError("malformed capture snapshot")
        except Exception as exc:
            warnings.warn(
                f"discarding corrupted sweep-cache entry {path}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            _stats.invalidations += 1
            _stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if need_capture and entry.get("capture") is None:
            _stats.misses += 1
            return None
        _stats.hits += 1
        return entry

    def put(
        self,
        key: str,
        *,
        latency_us: float,
        capture: dict | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        """Store one measured point (atomic rename, parent process only)."""
        entry = {
            "format": ENTRY_FORMAT,
            "latency_us": float(latency_us),
            "capture": capture,
        }
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(pickle.dumps(entry, protocol=4))
        os.replace(tmp, path)
        _stats.stores += 1
        self._pending_index[key] = dict(meta or {})

    def flush_index(self) -> None:
        """Merge this run's new entries into ``index.json`` (one write per
        sweep, not per point)."""
        if not self._pending_index:
            return
        index: dict[str, dict] = {}
        try:
            index = json.loads(self.index_path.read_text(encoding="utf-8"))
            if not isinstance(index, dict):
                index = {}
        except (OSError, ValueError):
            index = {}
        index.update(self._pending_index)
        self._pending_index = {}
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_name(f".index.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(index, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.index_path)

    # -- maintenance ----------------------------------------------------------

    def entry_count(self) -> int:
        objects = self.root / "objects"
        return sum(1 for _ in objects.rglob("*.pkl")) if objects.exists() else 0

    def disk_bytes(self) -> int:
        if not self.root.exists():
            return 0
        return sum(
            p.stat().st_size for p in self.root.rglob("*") if p.is_file()
        )

    def clear(self) -> int:
        """Delete the whole store; returns the number of entries removed."""
        import shutil

        removed = self.entry_count()
        if self.root.exists():
            shutil.rmtree(self.root)
        return removed


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.cache stats|clear``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cache",
        description="Inspect or wipe the incremental sweep cache",
    )
    parser.add_argument("command", choices=("stats", "clear"))
    args = parser.parse_args(argv)
    store = PointCache()
    if args.command == "clear":
        removed = store.clear()
        print(f"cleared {removed} entrie(s) from {store.root}")
        return 0
    print(f"cache dir:  {store.root}")
    print(f"enabled:    {enabled()}")
    print(f"entries:    {store.entry_count()}")
    print(f"disk bytes: {store.disk_bytes()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
