"""Measurement functions for the locking experiments (Figures 3 and 5).

All point functions are module-level and composed with
:func:`functools.partial`, so sweeps can cross a process boundary when
``run_sweep`` runs with ``workers > 1``.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.fit import constant_offset, ratio_series
from repro.bench.config import BenchConfig
from repro.bench.pingpong import run_concurrent_pingpong, run_pingpong
from repro.bench.runner import run_sweep
from repro.core.session import build_testbed
from repro.util.records import ResultSet

FIG3_POLICIES = ("none", "coarse", "fine")


def fig3_point(policy: str, size: int, cfg: BenchConfig) -> float:
    """Single-thread pingpong latency (us) under one locking policy."""
    bed = build_testbed(policy=policy, seed=cfg.seed, jitter_ns=cfg.jitter_ns)
    res = run_pingpong(
        bed, size, iterations=cfg.iterations, warmup=cfg.warmup
    )
    return res.latency_us


def run_fig3(cfg: BenchConfig | None = None) -> ResultSet:
    """Figure 3: impact of locking on latency (1 B – 2 KB)."""
    cfg = cfg or BenchConfig()
    return run_sweep(
        "fig3",
        {p: partial(fig3_point, p, cfg=cfg) for p in FIG3_POLICIES},
        cfg,
    )


def fig3_offsets(results: ResultSet) -> dict[str, float]:
    """Per-policy constant offsets over the no-locking baseline, in ns."""
    base = results.series("none")
    out = {}
    for policy in ("coarse", "fine"):
        fit = constant_offset(base, results.series(policy))
        out[policy] = fit.offset_ns * 1_000  # series are in us
    return out


#: flow count at which the simulated node reaches the message-rate
#: saturation the 2009 testbed hit with two threads.  The simulated
#: MX path has roughly twice the per-message capacity of the paper's
#: NewMadeleine/MX stack, so the Fig. 5 saturation point shifts from 2
#: concurrent flows to 4; the coarse-vs-fine contrast is evaluated there
#: (see EXPERIMENTS.md).
FIG5_SATURATION_FLOWS = 4

#: per-message timing noise used for the concurrent runs: real hardware
#: noise is what keeps concurrent flows colliding on the locks instead of
#: settling into a deterministic anti-phase schedule
FIG5_JITTER_NS = 120


def fig5_single_point(size: int, cfg: BenchConfig) -> float:
    """Single-thread baseline latency (us) for Figure 5 (fine locking,
    no jitter — one flow cannot collide with itself)."""
    bed = build_testbed(policy="fine", seed=cfg.seed)
    res = run_pingpong(bed, size, iterations=cfg.iterations, warmup=cfg.warmup)
    return res.latency_us


def fig5_concurrent_point(
    policy: str, nflows: int, size: int, cfg: BenchConfig
) -> float:
    """Mean per-flow latency (us) of ``nflows`` concurrent pingpongs."""
    bed = build_testbed(policy=policy, seed=cfg.seed, jitter_ns=FIG5_JITTER_NS)
    flows = run_concurrent_pingpong(
        bed, size, nflows=nflows, iterations=cfg.iterations, warmup=cfg.warmup
    )
    return sum(f.latency_us for f in flows) / len(flows)


def _fig5_extra(name: str, size: int) -> dict:
    """Recover the ``nflows`` annotation from a series label like
    ``"coarse (4 threads)"``; the baseline gets no extra."""
    if "(" not in name:
        return {}
    return {"nflows": int(name.split("(", 1)[1].split()[0])}


def run_fig5(
    cfg: BenchConfig | None = None, *, flow_counts: tuple[int, ...] = (2, FIG5_SATURATION_FLOWS)
) -> ResultSet:
    """Figure 5: threads perform pingpongs concurrently.

    Series: the single-thread baseline (``1 thread``) plus the mean
    per-flow latency under coarse and fine locking for each flow count.
    """
    cfg = cfg or BenchConfig()
    configs = {"1 thread": partial(fig5_single_point, cfg=cfg)}
    for policy in ("coarse", "fine"):
        for nflows in flow_counts:
            configs[f"{policy} ({nflows} threads)"] = partial(
                fig5_concurrent_point, policy, nflows, cfg=cfg
            )
    return run_sweep("fig5", configs, cfg, extra=_fig5_extra)


def fig5_ratios(results: ResultSet) -> dict[str, list[tuple[int, float]]]:
    """Per-size latency ratios of each concurrent series over the
    single-thread baseline — the paper's 'roughly twice' claim."""
    base = results.series("1 thread")
    out = {}
    for config in results.configs():
        if config == "1 thread":
            continue
        out[config] = ratio_series(base, results.series(config))
    return out
