"""Parameter sweeps: turn per-point measurement functions into ResultSets."""

from __future__ import annotations

import math
from typing import Callable, Mapping

from repro.bench.config import BenchConfig
from repro.bench.parallel import (
    points_picklable,
    resolve_workers,
    run_points_parallel,
)
from repro.obs import capture as obs_capture
from repro.util.records import ResultRecord, ResultSet

#: measures one (config, size) point; returns latency in microseconds
PointFn = Callable[[int], float]


def _check_latency(name: str, size: int, latency_us: float) -> None:
    """Reject non-finite (NaN/inf) and negative latencies loudly.

    ``latency < 0`` alone is not enough: ``NaN < 0`` is False, so a NaN
    would sail through and poison every downstream fit/ratio.
    """
    if not math.isfinite(latency_us):
        raise ValueError(
            f"non-finite latency from config {name!r} at size {size}: {latency_us}"
        )
    if latency_us < 0:
        raise ValueError(
            f"negative latency from config {name!r} at size {size}: {latency_us}"
        )


def run_sweep(
    experiment: str,
    configs: Mapping[str, PointFn],
    cfg: BenchConfig,
    *,
    extra: Callable[[str, int], dict] | None = None,
    workers: int | None = None,
) -> ResultSet:
    """Measure every (config, size) combination.

    Each point builds its own fresh testbed inside ``PointFn`` — points are
    fully independent, like separate benchmark runs on the paper's cluster —
    which is what makes the grid embarrassingly parallel.

    Args:
        workers: worker processes for the grid.  Defaults to
            ``cfg.workers``, then the ``REPRO_BENCH_WORKERS`` environment
            variable, then 1 (fully sequential, in-process).  Any
            ``workers > 1`` sweep whose point functions cannot be pickled
            (lambdas, closures) silently falls back to the sequential
            path; either way the returned ResultSet has the same records
            in the same order with the same JSON serialization.
    """
    if not configs:
        raise ValueError("run_sweep needs at least one config")
    nworkers = resolve_workers(cfg.workers if workers is None else workers)
    observation = obs_capture.active()
    results = ResultSet()
    if nworkers > 1 and len(cfg.sizes) * len(configs) > 1 and points_picklable(
        configs, extra
    ):
        spec = (
            (observation.trace, observation.max_events)
            if observation is not None
            else None
        )
        for row in run_points_parallel(
            configs, cfg.sizes, nworkers, capture=spec
        ):
            name, size, latency_us = row[0], row[1], row[2]
            _check_latency(name, size, latency_us)
            if observation is not None:
                # worker-side snapshots, absorbed in sequential sweep order
                # so merged traces are deterministic
                observation.absorb(
                    row[3], label=f"{experiment}/{name}/{size}"
                )
            results.add(
                ResultRecord(
                    experiment=experiment,
                    config=name,
                    size=size,
                    latency_us=latency_us,
                    extra=extra(name, size) if extra else {},
                )
            )
        return results
    for name, fn in configs.items():
        for size in cfg.sizes:
            if observation is not None:
                observation.set_label(f"{experiment}/{name}/{size}")
            latency_us = fn(size)
            _check_latency(name, size, latency_us)
            results.add(
                ResultRecord(
                    experiment=experiment,
                    config=name,
                    size=size,
                    latency_us=latency_us,
                    extra=extra(name, size) if extra else {},
                )
            )
    return results
