"""Parameter sweeps: turn per-point measurement functions into ResultSets."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.bench.config import BenchConfig
from repro.util.records import ResultRecord, ResultSet

#: measures one (config, size) point; returns latency in microseconds
PointFn = Callable[[int], float]


def run_sweep(
    experiment: str,
    configs: Mapping[str, PointFn],
    cfg: BenchConfig,
    *,
    extra: Callable[[str, int], dict] | None = None,
) -> ResultSet:
    """Measure every (config, size) combination.

    Each point builds its own fresh testbed inside ``PointFn`` — points are
    fully independent, like separate benchmark runs on the paper's cluster.
    """
    if not configs:
        raise ValueError("run_sweep needs at least one config")
    results = ResultSet()
    for name, fn in configs.items():
        for size in cfg.sizes:
            latency_us = fn(size)
            if latency_us < 0:
                raise ValueError(
                    f"negative latency from {name!r} at size {size}: {latency_us}"
                )
            results.add(
                ResultRecord(
                    experiment=experiment,
                    config=name,
                    size=size,
                    latency_us=latency_us,
                    extra=extra(name, size) if extra else {},
                )
            )
    return results
