"""Parameter sweeps: turn per-point measurement functions into ResultSets.

:func:`run_sweep` is the single funnel every figure and workload sweep
goes through, and therefore where the two pipeline optimisations meet:

* the **incremental point cache** (:mod:`repro.bench.cache`): each
  (config, size) point is fingerprinted and looked up before anything is
  simulated — warm points replay their stored latency (and observation
  blob), only cold points are measured, and fresh measurements are stored
  back;
* the **persistent worker pool** (:mod:`repro.bench.parallel`): the cold
  points fan out over a process pool shared across every sweep of the
  suite run, scheduled dynamically so skewed grids load-balance.

Both are pure wall-clock optimisations: the returned ResultSet has the
same records in the same order with the same JSON serialization whether
points were computed or replayed, sequentially or on any worker count.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Mapping

from repro.bench import cache as point_cache
from repro.bench.config import BenchConfig
from repro.bench.parallel import (
    points_picklable,
    resolve_workers,
    run_tasks,
)
from repro.obs import capture as obs_capture
from repro.util.records import ResultRecord, ResultSet

#: measures one (config, size) point; returns latency in microseconds
PointFn = Callable[[int], float]

#: sweeps already warned about the sequential fallback (one warning per
#: experiment per process, not one per point)
_warned_fallback: set[str] = set()


def _warn_sequential_fallback(experiment: str) -> None:
    """One-time warning: ``workers > 1`` requested but the sweep's point
    functions cannot cross a process boundary."""
    if experiment in _warned_fallback:
        return
    _warned_fallback.add(experiment)
    warnings.warn(
        f"sweep {experiment!r}: point functions are not picklable "
        f"(closures/lambdas), so --workers has no effect here; running "
        f"sequentially in-process",
        RuntimeWarning,
        stacklevel=3,
    )


def _check_latency(name: str, size: int, latency_us: float) -> None:
    """Reject non-finite (NaN/inf) and negative latencies loudly.

    ``latency < 0`` alone is not enough: ``NaN < 0`` is False, so a NaN
    would sail through and poison every downstream fit/ratio.
    """
    if not math.isfinite(latency_us):
        raise ValueError(
            f"non-finite latency from config {name!r} at size {size}: {latency_us}"
        )
    if latency_us < 0:
        raise ValueError(
            f"negative latency from config {name!r} at size {size}: {latency_us}"
        )


def run_sweep(
    experiment: str,
    configs: Mapping[str, PointFn],
    cfg: BenchConfig,
    *,
    extra: Callable[[str, int], dict] | None = None,
    workers: int | None = None,
) -> ResultSet:
    """Measure every (config, size) combination.

    Each point builds its own fresh testbed inside ``PointFn`` — points are
    fully independent, like separate benchmark runs on the paper's cluster —
    which is what makes the grid embarrassingly parallel *and* cacheable.

    Args:
        workers: worker processes for the grid.  Defaults to
            ``cfg.workers``, then the ``REPRO_BENCH_WORKERS`` environment
            variable, then 1 (fully sequential, in-process).  Any
            ``workers > 1`` sweep whose point functions cannot be pickled
            (lambdas, closures) falls back to the sequential path with a
            one-time warning; either way the returned ResultSet has the
            same records in the same order with the same JSON
            serialization.

    Caching: with the incremental cache enabled (``cfg.cache``, the
    ``REPRO_BENCH_CACHE`` environment variable, default on), every
    fingerprintable point is looked up before measuring and stored after;
    a warm re-run replays the whole grid without building a single
    testbed.  When an observation is active, cached entries must carry
    the point's capture blob (recorded under the same observation spec)
    or they are treated as misses — replayed traces are byte-identical
    to recomputed ones.
    """
    if not configs:
        raise ValueError("run_sweep needs at least one config")
    nworkers = resolve_workers(cfg.workers if workers is None else workers)
    observation = obs_capture.active()
    spec = (
        (observation.trace, observation.max_events)
        if observation is not None
        else None
    )
    obs_key = ("obs", *spec) if spec is not None else None

    points = [
        (name, fn, size)
        for name, fn in configs.items()
        for size in cfg.sizes
    ]
    picklable = points_picklable(configs, extra)
    if nworkers > 1 and len(points) > 1 and not picklable:
        _warn_sequential_fallback(experiment)

    store = (
        point_cache.PointCache() if point_cache.enabled(cfg.cache) else None
    )
    keys: list[str | None] = [None] * len(points)
    latencies: list[float | None] = [None] * len(points)
    blobs: list[dict | None] = [None] * len(points)

    if store is not None:
        for i, (name, fn, size) in enumerate(points):
            keys[i] = point_cache.point_key(
                fn,
                experiment=experiment,
                config=name,
                size=size,
                cfg=cfg,
                obs_spec=obs_key,
            )
            if keys[i] is None:
                continue
            entry = store.get(keys[i], need_capture=observation is not None)
            if entry is None:
                continue
            latencies[i] = float(entry["latency_us"])
            blobs[i] = entry.get("capture")

    miss_idx = [i for i, v in enumerate(latencies) if v is None]

    def remember(i: int, latency_us: float, blob: dict | None) -> None:
        name, _fn, size = points[i]
        _check_latency(name, size, latency_us)
        latencies[i] = latency_us
        blobs[i] = blob
        if store is not None and keys[i] is not None:
            store.put(
                keys[i],
                latency_us=latency_us,
                capture=blob,
                meta={
                    "experiment": experiment,
                    "config": name,
                    "size": size,
                    "seed": cfg.seed,
                    "observed": blob is not None,
                },
            )

    # absorbed mode: every point's capture travels as a serialized blob
    # (worker-side or nested observation), merged in sweep order below —
    # the representation the cache stores and replays.  Without cache and
    # without workers, live registration (set_label) is kept as-is.
    absorbed = observation is not None and (
        store is not None or (nworkers > 1 and picklable)
    )

    if miss_idx and nworkers > 1 and len(miss_idx) > 1 and picklable:
        outcomes = run_tasks(
            [points[i] for i in miss_idx], nworkers, capture=spec
        )
        for i, outcome in zip(miss_idx, outcomes):
            if spec is None:
                remember(i, outcome, None)
            else:
                latency_us, blob = outcome
                remember(i, latency_us, blob)
    else:
        for i in miss_idx:
            name, fn, size = points[i]
            if observation is not None and absorbed:
                # run under a nested observation so this point's capture
                # serializes exactly like a worker's would — and can
                # round-trip through the cache
                with obs_capture.observe(
                    trace=observation.trace, max_events=observation.max_events
                ) as inner:
                    latency_us = fn(size)
                remember(i, latency_us, inner.serialize())
            elif observation is not None:
                observation.set_label(f"{experiment}/{name}/{size}")
                remember(i, fn(size), None)
            else:
                remember(i, fn(size), None)

    results = ResultSet()
    for i, (name, fn, size) in enumerate(points):
        if absorbed and blobs[i] is not None:
            # sweep order, whether the blob was replayed or just measured
            observation.absorb(blobs[i], label=f"{experiment}/{name}/{size}")
        results.add(
            ResultRecord(
                experiment=experiment,
                config=name,
                size=size,
                latency_us=latencies[i],
                extra=extra(name, size) if extra else {},
            )
        )
    if store is not None:
        store.flush_index()
    return results
