"""Parallel sweep execution: fan independent (config, size) points out
to a process pool.

Every sweep point builds its own fresh testbed inside its ``PointFn``
(see :mod:`repro.bench.runner`), so points are fully independent — like
separate benchmark runs on the paper's cluster — and can execute in any
order on any process.  This module supplies the worker-pool machinery:

* :func:`resolve_workers` — pick the worker count from an explicit
  argument, the ``REPRO_BENCH_WORKERS`` environment variable, or the
  sequential default of 1;
* :func:`points_picklable` — decide whether a sweep can cross a process
  boundary at all (closures can't; ``functools.partial`` over
  module-level functions can);
* :func:`run_points_parallel` — execute the full grid on a pool and
  reassemble the per-point results **in sequential order**, so the
  returned list is indistinguishable from a sequential run.

Determinism: the task list is built config-major/size-minor exactly like
the sequential loop, ``Pool.map`` returns results positionally, and each
point's simulation is seeded by its own testbed — so the merged
ResultSet serializes byte-identically to the sequential one.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Callable, Mapping, Sequence

#: environment variable consulted when no explicit worker count is given
WORKERS_ENV = "REPRO_BENCH_WORKERS"

#: measures one (config, size) point; returns latency in microseconds
PointFn = Callable[[int], float]


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit ``workers`` argument, then the
    ``REPRO_BENCH_WORKERS`` environment variable, then 1 (sequential).

    Raises:
        ValueError: on a non-positive or non-integer setting.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    if workers <= 0:
        raise ValueError(f"workers must be > 0, got {workers}")
    return workers


def points_picklable(
    configs: Mapping[str, PointFn],
    extra: Callable[[str, int], dict] | None = None,
) -> bool:
    """True when every point function (and ``extra``) survives pickling.

    Lambdas and locally-defined closures do not; the benchmark modules
    therefore express their points as ``functools.partial`` over
    module-level measurement functions.  A non-picklable sweep silently
    falls back to in-process execution — parallelism is an optimisation,
    never a requirement.
    """
    try:
        for fn in configs.values():
            pickle.dumps(fn)
        if extra is not None:
            pickle.dumps(extra)
    except Exception:
        return False
    return True


def _measure_point(task: tuple) -> float | tuple[float, dict]:
    """Worker-side shim: run one point.  Must stay module-level so the
    pool can import it under the ``spawn`` start method.

    With a 4th ``(trace, max_events)`` element, the point runs under the
    worker's own observation context (:mod:`repro.obs.capture`) and the
    serialized capture rides back with the measurement, so the parent can
    merge per-worker traces in deterministic sweep order.
    """
    _name, fn, size = task[:3]
    spec = task[3] if len(task) > 3 else None
    if spec is None:
        return fn(size)
    from repro.obs import capture as obs_capture

    trace, max_events = spec
    with obs_capture.observe(trace=trace, max_events=max_events) as obs:
        latency = fn(size)
    return latency, obs.serialize()


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (cheap, inherits sys.path), else the
    platform default (``spawn`` on Windows/macOS)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_points_parallel(
    configs: Mapping[str, PointFn],
    sizes: Sequence[int],
    workers: int,
    *,
    capture: tuple[bool, int] | None = None,
) -> list[tuple]:
    """Measure the whole (config, size) grid on ``workers`` processes.

    Returns ``(config, size, latency_us)`` triples in **sequential sweep
    order** (config-major, size-minor), regardless of which worker
    finished first — ``Pool.map`` keeps results positionally aligned
    with the task list.

    Args:
        capture: optional ``(trace, max_events)`` observation spec; when
            given, each point runs under its own worker-side observation
            and the rows become ``(config, size, latency_us, snapshot)``
            — snapshots arrive in sequential order, so merged traces are
            deterministic.
    """
    tasks = [
        (name, fn, size) if capture is None else (name, fn, size, capture)
        for name, fn in configs.items()
        for size in sizes
    ]
    nproc = min(workers, len(tasks))
    ctx = _pool_context()
    with ctx.Pool(processes=nproc) as pool:
        outcomes = pool.map(_measure_point, tasks, chunksize=1)
    if capture is None:
        return [
            (task[0], task[2], latency)
            for task, latency in zip(tasks, outcomes)
        ]
    return [
        (task[0], task[2], latency, snapshot)
        for task, (latency, snapshot) in zip(tasks, outcomes)
    ]
