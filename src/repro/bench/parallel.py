"""Parallel sweep execution: fan independent (config, size) points out
to a persistent process pool.

Every sweep point builds its own fresh testbed inside its ``PointFn``
(see :mod:`repro.bench.runner`), so points are fully independent — like
separate benchmark runs on the paper's cluster — and can execute in any
order on any process.  This module supplies the worker-pool machinery:

* :func:`resolve_workers` — pick the worker count from an explicit
  argument, the ``REPRO_BENCH_WORKERS`` environment variable, or the
  sequential default of 1;
* :func:`points_picklable` — decide whether a sweep can cross a process
  boundary at all (closures can't; ``functools.partial`` over
  module-level functions can);
* :func:`get_pool` — the **persistent pool**: one process pool shared by
  every sweep of a suite run (created on first use, reused until the
  requested worker count changes, torn down at interpreter exit), so the
  per-sweep spawn cost is paid once per suite instead of once per figure;
* :func:`compute_chunksize` — the size-aware dispatch granularity: big
  uniform grids batch a few points per IPC round-trip, skewed grids
  (one huge point among small ones — fig8b's shape) dispatch
  point-by-point so a long-tail point never serializes a chunk of quick
  ones behind it;
* :func:`run_tasks` / :func:`run_points_parallel` — execute tasks via
  index-tagged ``imap_unordered`` (workers pull work dynamically) and
  reassemble the results **positionally**, so the returned list is
  indistinguishable from a sequential run.

Determinism: the task list is built config-major/size-minor exactly like
the sequential loop, every task carries its own index, results are
written back by index, and each point's simulation is seeded by its own
testbed — so the merged ResultSet serializes byte-identically to the
sequential one at any worker count and with any chunking.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
from typing import Callable, Mapping, Sequence

#: environment variable consulted when no explicit worker count is given
WORKERS_ENV = "REPRO_BENCH_WORKERS"

#: measures one (config, size) point; returns latency in microseconds
PointFn = Callable[[int], float]

#: dispatch granularity target: ~this many chunks per worker keeps the
#: scheduling dynamic (idle workers keep pulling) without one IPC
#: round-trip per point on big uniform grids
CHUNKS_PER_WORKER = 4

#: a grid whose heaviest point exceeds this multiple of the mean point
#: weight is *skewed*: dispatch point-by-point so the long tail never
#: waits behind a batch of cheap points
SKEW_RATIO = 2.0


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit ``workers`` argument, then the
    ``REPRO_BENCH_WORKERS`` environment variable, then 1 (sequential).

    Raises:
        ValueError: on a non-positive or non-integer setting.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    if workers <= 0:
        raise ValueError(f"workers must be > 0, got {workers}")
    return workers


def points_picklable(
    configs: Mapping[str, PointFn],
    extra: Callable[[str, int], dict] | None = None,
) -> bool:
    """True when every point function (and ``extra``) survives pickling.

    Lambdas and locally-defined closures do not; the benchmark modules
    therefore express their points as ``functools.partial`` over
    module-level measurement functions.  A non-picklable sweep falls back
    to in-process execution (with a one-time warning from
    :func:`repro.bench.runner.run_sweep` naming the sweep) — parallelism
    is an optimisation, never a requirement.
    """
    try:
        for fn in configs.values():
            pickle.dumps(fn)
        if extra is not None:
            pickle.dumps(extra)
    except Exception:
        return False
    return True


def compute_chunksize(weights: Sequence[float], workers: int) -> int:
    """Explicit dispatch chunk size for a task list with per-task
    ``weights`` (the message sizes — the best cheap proxy for point cost).

    Uniform grids get ``len // (workers * CHUNKS_PER_WORKER)`` tasks per
    chunk (bounded below by 1): enough batching to amortize IPC, enough
    chunks that finishing workers keep pulling.  A skewed grid — heaviest
    point above :data:`SKEW_RATIO` × the mean — always uses 1, because
    any chunk containing the long-tail point would serialize its
    neighbours behind it and stretch the sweep's makespan.
    """
    n = len(weights)
    if n == 0 or workers <= 0:
        return 1
    chunk = max(1, n // (workers * CHUNKS_PER_WORKER))
    if chunk == 1:
        return 1
    mean = sum(weights) / n
    if mean > 0 and max(weights) / mean > SKEW_RATIO:
        return 1
    return chunk


def _measure_point(task: tuple) -> float | tuple[float, dict]:
    """Worker-side shim: run one point.  Must stay module-level so the
    pool can import it under the ``spawn`` start method.

    With a 4th ``(trace, max_events)`` element, the point runs under the
    worker's own observation context (:mod:`repro.obs.capture`) and the
    serialized capture rides back with the measurement, so the parent can
    merge per-worker traces in deterministic sweep order.
    """
    _name, fn, size = task[:3]
    spec = task[3] if len(task) > 3 else None
    if spec is None:
        return fn(size)
    from repro.obs import capture as obs_capture

    trace, max_events = spec
    with obs_capture.observe(trace=trace, max_events=max_events) as obs:
        latency = fn(size)
    return latency, obs.serialize()


def _measure_indexed(item: tuple[int, tuple]) -> tuple[int, object]:
    """Worker-side shim for ``imap_unordered``: tag the outcome with the
    task's sweep index so the parent can reassemble positionally."""
    index, task = item
    return index, _measure_point(task)


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (cheap, inherits sys.path), else the
    platform default (``spawn`` on Windows/macOS)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


#: the persistent pool and its worker count, shared by every sweep
_pool: tuple[multiprocessing.pool.Pool, int] | None = None

_pool_stats = {"created": 0, "reused": 0, "dispatched": 0}


def get_pool(workers: int) -> multiprocessing.pool.Pool:
    """The shared process pool, created on first use and reused by every
    subsequent sweep requesting the same worker count.

    A different count tears the old pool down and spawns a fresh one —
    within one suite run the count is constant, so the spawn cost is paid
    exactly once however many sweeps the suite fans out.
    """
    global _pool
    if _pool is not None:
        pool, size = _pool
        if size == workers:
            _pool_stats["reused"] += 1
            return pool
        shutdown_pool()
    pool = _pool_context().Pool(processes=workers)
    _pool = (pool, workers)
    _pool_stats["created"] += 1
    return pool


def shutdown_pool() -> None:
    """Tear down the persistent pool (no-op when none is alive)."""
    global _pool
    if _pool is None:
        return
    pool, _ = _pool
    _pool = None
    pool.terminate()
    pool.join()


atexit.register(shutdown_pool)


def pool_stats() -> dict[str, int]:
    """Snapshot of pool lifecycle counters: pools ``created``, sweeps that
    ``reused`` a live pool, tasks ``dispatched``."""
    return dict(_pool_stats)


def pool_stats_delta(before: Mapping[str, int]) -> dict[str, int]:
    """Counter difference since a :func:`pool_stats` snapshot."""
    return {k: v - before.get(k, 0) for k, v in _pool_stats.items()}


def run_tasks(
    tasks: Sequence[tuple],
    workers: int,
    *,
    capture: tuple[bool, int] | None = None,
) -> list:
    """Measure an arbitrary ``(name, fn, size)`` task list on the
    persistent pool; outcomes return positionally aligned with ``tasks``.

    Scheduling is dynamic — index-tagged ``imap_unordered`` with
    :func:`compute_chunksize` granularity — so skewed grids load-balance;
    the index tags restore sequential order on the way back.
    """
    if not tasks:
        return []
    full = [
        task if capture is None else (*task, capture) for task in tasks
    ]
    pool = get_pool(workers)
    chunksize = compute_chunksize(
        [task[2] for task in full], min(workers, len(full))
    )
    outcomes: list = [None] * len(full)
    for index, outcome in pool.imap_unordered(
        _measure_indexed, list(enumerate(full)), chunksize=chunksize
    ):
        outcomes[index] = outcome
    _pool_stats["dispatched"] += len(full)
    return outcomes


def run_points_parallel(
    configs: Mapping[str, PointFn],
    sizes: Sequence[int],
    workers: int,
    *,
    capture: tuple[bool, int] | None = None,
) -> list[tuple]:
    """Measure the whole (config, size) grid on ``workers`` processes.

    Returns ``(config, size, latency_us)`` triples in **sequential sweep
    order** (config-major, size-minor), regardless of which worker
    finished first.

    Args:
        capture: optional ``(trace, max_events)`` observation spec; when
            given, each point runs under its own worker-side observation
            and the rows become ``(config, size, latency_us, snapshot)``
            — snapshots arrive in sequential order, so merged traces are
            deterministic.
    """
    tasks = [
        (name, fn, size)
        for name, fn in configs.items()
        for size in sizes
    ]
    outcomes = run_tasks(tasks, workers, capture=capture)
    if capture is None:
        return [
            (task[0], task[2], latency)
            for task, latency in zip(tasks, outcomes)
        ]
    return [
        (task[0], task[2], latency, snapshot)
        for task, (latency, snapshot) in zip(tasks, outcomes)
    ]
