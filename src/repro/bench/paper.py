"""The paper's reported numbers, as machine-checkable claims.

Every measured artefact of the paper is captured here as a
:class:`PaperClaim`; the benchmark harness evaluates each claim against
fresh measurements and EXPERIMENTS.md records the outcome.  Tolerances are
generous on purpose: the goal is *shape* agreement (who wins, by roughly
what factor) on a simulated substrate, not nanosecond identity with 2009
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative statement from the paper."""

    claim_id: str
    experiment: str  # figure / section reference
    description: str
    #: expected value (ns for offsets, dimensionless for ratios/fractions)
    expected: float
    #: acceptable absolute deviation
    tolerance: float
    unit: str = "ns"

    def check(self, measured: float) -> bool:
        return abs(measured - self.expected) <= self.tolerance

    def verdict(self, measured: float) -> str:
        status = "OK " if self.check(measured) else "OFF"
        return (
            f"[{status}] {self.claim_id}: expected {self.expected:g} {self.unit} "
            f"(±{self.tolerance:g}), measured {measured:g} {self.unit} — "
            f"{self.description}"
        )


CLAIMS: dict[str, PaperClaim] = {
    claim.claim_id: claim
    for claim in [
        PaperClaim(
            "fig3-coarse-offset",
            "Figure 3 / §3.1",
            "coarse-grain locking adds a constant 140 ns to latency",
            expected=140,
            tolerance=60,
        ),
        PaperClaim(
            "fig3-fine-offset",
            "Figure 3 / §3.2",
            "fine-grain locking adds a constant 230 ns to latency",
            expected=230,
            tolerance=80,
        ),
        PaperClaim(
            "fig3-offset-flat",
            "Figure 3",
            "locking overhead does not grow with message size (spread of the "
            "per-size offset, should stay within a poll quantum)",
            expected=0,
            tolerance=120,
        ),
        PaperClaim(
            "fig5-coarse-ratio",
            "Figure 5 / §3.1",
            "two concurrent pingpongs under coarse locking: per-thread latency "
            "roughly twice the single-thread latency",
            expected=2.0,
            tolerance=0.6,
            unit="x",
        ),
        PaperClaim(
            "fig5-fine-better",
            "Figure 5 / §3.2",
            "fine-grain locking performs better than coarse-grain for "
            "concurrent flows (ratio fine/coarse < 1)",
            expected=0.75,
            tolerance=0.25,
            unit="x",
        ),
        PaperClaim(
            "fig6-pioman-offset",
            "Figure 6 / §3.3",
            "routing the polling through PIOMan costs ~200 ns of list "
            "management",
            expected=200,
            tolerance=150,
        ),
        PaperClaim(
            "fig7-passive-offset",
            "Figure 7 / §3.3",
            "semaphore-based passive waiting costs ~750 ns of context switches",
            expected=750,
            tolerance=400,
        ),
        PaperClaim(
            "fig8-shared-l2",
            "Figure 8 / §4.1",
            "polling on the shared-L2 sibling (CPU 1) costs +400 ns",
            expected=400,
            tolerance=250,
        ),
        PaperClaim(
            "fig8-no-shared-cache",
            "Figure 8 / §4.1",
            "polling on a core with no shared cache (CPU 2/3) costs +1.2 us",
            expected=1_200,
            tolerance=450,
        ),
        PaperClaim(
            "fig8b-shared-l2",
            "§4.1 (dual quad-core)",
            "dual quad-core: polling on the shared-cache sibling costs +400 ns",
            expected=400,
            tolerance=250,
        ),
        PaperClaim(
            "fig8b-same-chip",
            "§4.1 (dual quad-core)",
            "dual quad-core: polling on the same chip, different cache: +2.3 us",
            expected=2_300,
            tolerance=700,
        ),
        PaperClaim(
            "fig8b-other-chip",
            "§4.1 (dual quad-core)",
            "dual quad-core: polling on the other chip: +3.1 us",
            expected=3_100,
            tolerance=800,
        ),
        PaperClaim(
            "fig9-tasklet-offset",
            "Figure 9 / §4.2",
            "offloading submission with tasklets adds ~2 us",
            expected=2_000,
            tolerance=1_200,
        ),
        PaperClaim(
            "fig9-idlecore-offset",
            "Figure 9 / §4.2",
            "offloading submission to an idle core (no tasklets) adds ~400 ns",
            expected=400,
            tolerance=400,
        ),
        PaperClaim(
            "text-spin-cycle",
            "§3.1",
            "one spinlock acquire/release cycle costs 70 ns",
            expected=70,
            tolerance=10,
        ),
        PaperClaim(
            "text-dedicated-core",
            "§3.3",
            "dedicating one core in four to communication cuts compute "
            "throughput by up to 25 %",
            expected=0.25,
            tolerance=0.08,
            unit="fraction",
        ),
        PaperClaim(
            "text-fixed-spin",
            "§3.3",
            "fixed-spin waiting avoids the context switch whenever the event "
            "arrives within the spin window: a covering spin window saves "
            "roughly the 750 ns switch round trip over pure blocking",
            expected=-750,
            tolerance=500,
        ),
    ]
}


def claim(claim_id: str) -> PaperClaim:
    try:
        return CLAIMS[claim_id]
    except KeyError:
        raise KeyError(
            f"unknown claim {claim_id!r}; known: {sorted(CLAIMS)}"
        ) from None
