"""Microbenchmarks of the locking primitives themselves (§3.1 text).

E7: the paper measures 70 ns per spinlock acquire/release cycle and counts
two cycles per message under coarse-grain locking.  These functions measure
the cycle on the simulated machine and count the actual lock traffic of one
message under each policy.
"""

from __future__ import annotations

from repro.core.session import build_testbed
from repro.sim import Acquire, Delay, Engine, Machine, Release, SpinLock, quad_xeon_x5460


def measure_spin_cycle_ns(cycles: int = 1_000) -> float:
    """Average cost of an uncontended acquire/release cycle."""
    if cycles <= 0:
        raise ValueError("cycles must be > 0")
    engine = Engine()
    machine = Machine(engine, quad_xeon_x5460())
    lock = SpinLock("bench", costs=machine.costs)

    def worker():
        for _ in range(cycles):
            yield Acquire(lock)
            yield Release(lock)

    t = machine.scheduler.spawn(worker(), name="w", core=0)
    engine.run(until=lambda: t.done)
    return engine.now / cycles


def measure_contended_handoff_ns(iterations: int = 200) -> float:
    """Average extra wait a contender pays when the lock is held for a
    fixed 500 ns critical section."""
    if iterations <= 0:
        raise ValueError("iterations must be > 0")
    engine = Engine()
    machine = Machine(engine, quad_xeon_x5460())
    lock = SpinLock("bench", costs=machine.costs)
    hold_ns = 500

    def holder():
        for _ in range(iterations):
            yield Acquire(lock)
            yield Delay(hold_ns)
            yield Release(lock)
            yield Delay(hold_ns)  # window for the contender

    def contender():
        for _ in range(iterations):
            yield Acquire(lock)
            yield Release(lock)
            yield Delay(hold_ns)

    th = machine.scheduler.spawn(holder(), name="h", core=0, bound=True)
    tc = machine.scheduler.spawn(contender(), name="c", core=1, bound=True)
    engine.run(until=lambda: th.done and tc.done)
    spin_ns = machine.cores[1].busy_ns("spin")
    return spin_ns / max(lock.contentions, 1)


def lock_cycles_per_message(policy: str) -> float:
    """Spinlock acquisitions on one message's path (the paper's 'held and
    released twice' accounting for coarse grain; three points for fine).

    One message is sent while the receiver sleeps; the receiver then runs
    exactly one progress pass to ingest it — so every counted acquisition
    belongs to the message path (no busy-wait poll noise).
    """
    bed = build_testbed(policy=policy)

    def sender():
        lib = bed.lib(0)
        req = yield from lib.isend(1, 3, 8)
        yield from lib.wait(req)

    def receiver():
        from repro.sim import Delay

        lib = bed.lib(1)
        req = yield from lib.irecv(0, 3, 8)
        yield Delay(50_000)  # message is in the NIC ring by now
        yield from lib.progress()
        assert req.done

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0, bound=True)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0, bound=True)
    bed.run(until=lambda: ts.done and tr.done)
    acquisitions = sum(
        lock.acquisitions
        for lib in bed.libs
        for lock in lib.policy.lock_objects()
    )
    return float(acquisitions)
