#!/usr/bin/env python3
"""Profiling lock contention with the execution tracer.

"We have extensively profiled the code" (§1) — this example shows the
reproduction's equivalent instrument.  It runs the Figure 5 workload
(four concurrent pingpong flows) under coarse and fine locking with a
:class:`~repro.sim.trace.Tracer` attached, and reports where the time
went: how often threads spun on the library's locks, for how long, and
what fraction of each core's busy time that wasted.

Run:  python examples/lock_contention_trace.py
(set REPRO_EXAMPLES_QUICK=1 for the reduced CI-sized run)
"""

import os

from repro.bench.pingpong import run_concurrent_pingpong
from repro.core import build_testbed
from repro.sim.trace import Tracer
from repro.util.tables import render_table
from repro.util.units import format_ns

FLOWS = 4
SIZE = 64
ITERATIONS = 8 if os.environ.get("REPRO_EXAMPLES_QUICK") == "1" else 24


def profile(policy: str):
    bed = build_testbed(policy=policy, jitter_ns=120)
    tracer = Tracer()
    bed.machine(0).attach_tracer(tracer)
    flows = run_concurrent_pingpong(
        bed, SIZE, nflows=FLOWS, iterations=ITERATIONS, warmup=4
    )
    latency = sum(f.latency_us for f in flows) / len(flows)
    machine = bed.machine(0)
    spin_ns = sum(core.busy_ns("spin") for core in machine.cores)
    busy_ns = sum(core.busy_ns() for core in machine.cores)
    contentions = sum(
        lock.contentions for lib in bed.libs for lock in lib.policy.lock_objects()
    )
    acquisitions = sum(
        lock.acquisitions for lib in bed.libs for lock in lib.policy.lock_objects()
    )
    episodes = tracer.spin_episodes()
    return {
        "latency_us": latency,
        "spin_share": spin_ns / busy_ns if busy_ns else 0.0,
        "contentions": contentions,
        "acquisitions": acquisitions,
        "episodes": len(episodes),
        "longest_spin": max((d for _, _, d in episodes), default=0),
    }


def main() -> None:
    print(
        f"Profiling {FLOWS} concurrent pingpong flows ({SIZE} B) under each "
        f"locking policy...\n"
    )
    rows = []
    profiles = {}
    for policy in ("coarse", "fine"):
        p = profile(policy)
        profiles[policy] = p
        rows.append(
            [
                policy,
                p["latency_us"],
                f"{p['spin_share'] * 100:.1f} %",
                p["contentions"],
                p["acquisitions"],
                format_ns(p["longest_spin"]),
            ]
        )
    print(
        render_table(
            ["policy", "latency (us)", "time spinning", "contended", "acquisitions",
             "longest spin"],
            rows,
            title="Node A under concurrent load (tracer + lock instrumentation)",
        )
    )
    coarse, fine = profiles["coarse"], profiles["fine"]
    print(
        f"\nUnder the global lock the threads spent "
        f"{coarse['spin_share'] * 100:.0f} % of their cycles spinning "
        f"({coarse['contentions']} contended acquisitions); fine-grain locking "
        f"cuts that to {fine['spin_share'] * 100:.0f} % and the per-flow "
        f"latency from {coarse['latency_us']:.2f} to {fine['latency_us']:.2f} us "
        f"— the Figure 5 effect, seen from inside the scheduler."
    )


if __name__ == "__main__":
    main()
