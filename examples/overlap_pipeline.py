#!/usr/bin/env python3
"""Communication/computation overlap with background progression (§4).

A producer rank streams large (rendezvous) blocks to a consumer while
both sides compute between messages — the workload the paper's §4 is
about: "rendezvous handshakes can be managed by idle cores, allowing to
overlap computation and communication of large messages".

Three configurations are compared:

* **no progression** — the application thread is the only one driving the
  library: every rendezvous handshake waits for the next nm_wait;
* **background progression** — PIOMan polls from an idle core
  (shared-L2 sibling of the app's CPU): handshakes complete during the
  compute phases, overlapping transfer and computation;
* **background + tasklet submission** — additionally offloads message
  submission via tasklets, showing their ~2 us convenience tax (Fig. 9).

Run:  python examples/overlap_pipeline.py
(set REPRO_EXAMPLES_QUICK=1 for the reduced CI-sized run)
"""

import os

from repro.core import BusyWait, build_testbed
from repro.pioman import TaskletSubmit, attach_pioman, set_offload
from repro.sim.process import Delay
from repro.util.tables import render_table

BLOCK_BYTES = 64 * 1024  # rendezvous territory
BLOCKS = 6 if os.environ.get("REPRO_EXAMPLES_QUICK") == "1" else 16
COMPUTE_NS = 30_000  # per-block computation on both sides


def producer(bed, lib, peer):
    for i in range(BLOCKS):
        req = yield from lib.isend(peer, 40 + i, BLOCK_BYTES)
        yield Delay(COMPUTE_NS, "compute")  # produce the next block
        yield from lib.wait(req, BusyWait())


def consumer(bed, lib, peer, done):
    # pre-post every receive: arriving rendezvous handshakes then only
    # need *someone* to answer them — with background progression that
    # happens during the compute phases; without it, only at nm_wait
    reqs = []
    for i in range(BLOCKS):
        req = yield from lib.irecv(peer, 40 + i, BLOCK_BYTES)
        reqs.append(req)
    for req in reqs:
        yield from lib.wait(req, BusyWait())
        yield Delay(COMPUTE_NS, "compute")  # consume the block
    done["at"] = bed.engine.now


def run(config: str) -> float:
    """Returns the pipeline makespan in microseconds."""
    bed = build_testbed(policy="fine")
    if config in ("background", "tasklet"):
        for node in (0, 1):
            attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[1])
    if config == "tasklet":
        for node in (0, 1):
            set_offload(bed.lib(node), TaskletSubmit(target_core=1))
    done: dict = {}
    tp = bed.machine(0).scheduler.spawn(
        producer(bed, bed.lib(0), 1), name="producer", core=0, bound=True
    )
    tc = bed.machine(1).scheduler.spawn(
        consumer(bed, bed.lib(1), 0, done), name="consumer", core=0, bound=True
    )
    bed.run(until=lambda: tp.done and tc.done)
    return done["at"] / 1000


def main() -> None:
    print(
        f"Streaming {BLOCKS} x {BLOCK_BYTES // 1024} KiB rendezvous blocks with "
        f"{COMPUTE_NS / 1000:.0f} us of compute per block...\n"
    )
    results = []
    for config, label in [
        ("none", "no progression"),
        ("background", "idle-core progression"),
        ("tasklet", "idle-core + tasklet submission"),
    ]:
        makespan = run(config)
        results.append((label, makespan))
    base = results[0][1]
    rows = [
        [label, makespan, base / makespan]
        for label, makespan in results
    ]
    print(
        render_table(
            ["configuration", "makespan (us)", "speedup"],
            rows,
            title="Pipeline makespan",
        )
    )
    print(
        "\nBackground progression lets the rendezvous handshakes (RTS/CTS)\n"
        "complete during the compute phases instead of waiting for the next\n"
        "library call; tasklet submission adds its per-message protocol cost\n"
        "back on top (Fig. 9)."
    )


if __name__ == "__main__":
    main()
