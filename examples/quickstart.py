#!/usr/bin/env python3
"""Quickstart: a pingpong over the simulated NewMadeleine stack.

Builds the paper's two-node testbed (quad-core Xeon X5460 machines wired
with Myri-10G/MX), runs a latency pingpong under each locking policy, and
prints the Figure 3 comparison: no locking vs. coarse-grain (+140 ns) vs.
fine-grain (+230 ns).

Run:  python examples/quickstart.py
(set REPRO_EXAMPLES_QUICK=1 for the reduced CI-sized run)
"""

import os

from repro.bench.pingpong import run_pingpong
from repro.core import build_testbed
from repro.util.tables import render_table
from repro.util.units import format_size


QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"


def measure(policy: str, size: int) -> float:
    """One (policy, size) latency point in microseconds."""
    bed = build_testbed(policy=policy, jitter_ns=150)
    result = run_pingpong(bed, size, iterations=8 if QUICK else 32, warmup=4)
    return result.latency_us


def main() -> None:
    sizes = [1, 64, 2048] if QUICK else [1, 8, 64, 512, 2048]
    policies = ["none", "coarse", "fine"]

    print("Measuring pingpong latency on the simulated MX testbed...")
    rows = []
    for size in sizes:
        row = [format_size(size)]
        for policy in policies:
            row.append(measure(policy, size))
        rows.append(row)

    print()
    print(
        render_table(
            ["size"] + policies,
            rows,
            title="Pingpong latency by locking policy (us, half round trip)",
        )
    )
    print()

    base = rows[0][1]
    coarse_overhead = (rows[0][2] - base) * 1000
    fine_overhead = (rows[0][3] - base) * 1000
    print(f"coarse-grain locking overhead at 1 B: {coarse_overhead:.0f} ns (paper: 140 ns)")
    print(f"fine-grain   locking overhead at 1 B: {fine_overhead:.0f} ns (paper: 230 ns)")
    print()
    print("Next steps:")
    print("  python -m repro.bench.figures fig3     # full Figure 3 sweep")
    print("  python -m repro.bench.figures all      # every figure of the paper")
    print("  python examples/hybrid_stencil.py      # hybrid MPI+threads application")
    print("  python examples/overlap_pipeline.py    # communication/computation overlap")


if __name__ == "__main__":
    main()
