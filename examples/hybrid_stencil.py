#!/usr/bin/env python3
"""Hybrid MPI + threads: a 1-D heat-equation stencil.

The paper's introduction motivates thread-safe communication libraries
with exactly this kind of application: "hybrid solutions that mix the use
of threads and MPI processes seem to be the best candidate".  This example
solves du/dt = alpha * d2u/dx2 with:

* **domain decomposition** across 4 simulated nodes (Mad-MPI ranks);
* **multi-threaded compute** inside each rank: the rank's subdomain is
  split across the node's 4 cores;
* **halo exchange** performed concurrently by two communication threads
  per rank — one per neighbour — which is only legal with
  ``MPI_THREAD_MULTIPLE``, the thread level §3 of the paper is about.

The numerical result is verified against a single-threaded reference
solve, and the run is timed under coarse-grain vs. fine-grain locking.

Run:  python examples/hybrid_stencil.py
"""

import numpy as np

from repro.core import build_testbed
from repro.madmpi import ThreadLevel, create_world
from repro.sim.process import Delay
from repro.sim.sync import Semaphore

POINTS_PER_RANK = 256
RANKS = 4
STEPS = 20
ALPHA = 0.4  # dt*alpha/dx^2, stable for the explicit scheme
#: simulated cost of one stencil update of one subdomain slice
COMPUTE_NS_PER_SLICE = 2_000


def reference_solution(u0: np.ndarray, steps: int) -> np.ndarray:
    """Single-threaded explicit Euler with fixed boundaries."""
    u = u0.copy()
    for _ in range(steps):
        nxt = u.copy()
        nxt[1:-1] = u[1:-1] + ALPHA * (u[2:] - 2 * u[1:-1] + u[:-2])
        u = nxt
    return u


def initial_field() -> np.ndarray:
    x = np.linspace(0.0, 1.0, POINTS_PER_RANK * RANKS)
    return np.exp(-100.0 * (x - 0.5) ** 2)


def rank_program(comm, full_u0: np.ndarray, result_box: dict):
    """One rank: compute threads + concurrent halo-exchange threads."""
    rank, size = comm.rank, comm.size
    lo = rank * POINTS_PER_RANK
    u = full_u0[lo : lo + POINTS_PER_RANK].copy()
    machine = comm.lib.machine
    ncores = machine.ncores

    for step in range(STEPS):
        # ---- halo exchange: one thread per neighbour, concurrently ----
        halos = {"left": None, "right": None}
        done_sem = Semaphore(machine, 0, name=f"halo{rank}s{step}")
        tag = 1000 + step

        def exchange(direction: str, neighbour: int, boundary: float):
            try:
                value, _ = yield from comm.Sendrecv(
                    neighbour, 8, neighbour, 8, sendtag=tag, recvtag=tag,
                    payload=boundary,
                )
                halos[direction] = value
            finally:
                done_sem.post()

        nthreads = 0
        if rank > 0:
            machine.scheduler.spawn(
                exchange("left", rank - 1, float(u[0])),
                name=f"halo-left-{rank}-{step}",
                core=1 % ncores,
                bound=True,
            )
            nthreads += 1
        if rank < size - 1:
            machine.scheduler.spawn(
                exchange("right", rank + 1, float(u[-1])),
                name=f"halo-right-{rank}-{step}",
                core=2 % ncores,
                bound=True,
            )
            nthreads += 1
        for _ in range(nthreads):
            yield from done_sem.wait()

        left = halos["left"] if halos["left"] is not None else u[0]
        right = halos["right"] if halos["right"] is not None else u[-1]

        # ---- multi-threaded compute: slices across the node's cores ----
        padded = np.concatenate(([left], u, [right]))
        nxt = u + ALPHA * (padded[2:] - 2 * u + padded[:-2])
        # fixed global boundaries
        if rank == 0:
            nxt[0] = u[0]
        if rank == size - 1:
            nxt[-1] = u[-1]

        compute_sem = Semaphore(machine, 0, name=f"comp{rank}s{step}")
        slices = ncores

        def compute_slice():
            yield Delay(COMPUTE_NS_PER_SLICE, "compute")
            compute_sem.post()

        for c in range(slices):
            machine.scheduler.spawn(
                compute_slice(), name=f"slice{rank}-{step}-{c}", core=c, bound=True
            )
        for _ in range(slices):
            yield from compute_sem.wait()
        u = nxt

    result_box[rank] = u
    # gather for verification
    gathered = yield from comm.Gather(u, root=0)
    if rank == 0:
        result_box["global"] = np.concatenate(gathered)


def run(policy: str) -> tuple[np.ndarray, float]:
    bed = build_testbed(nodes=RANKS, policy=policy)
    comms = create_world(bed, thread_level=ThreadLevel.MULTIPLE)
    u0 = initial_field()
    results: dict = {}
    threads = [
        bed.machine(c.rank).scheduler.spawn(
            rank_program(c, u0, results), name=f"rank{c.rank}", core=0, bound=True
        )
        for c in comms
    ]
    bed.run(until=lambda: all(t.done for t in threads))
    elapsed_us = bed.engine.now / 1000
    return results["global"], elapsed_us


def main() -> None:
    u0 = initial_field()
    expect = reference_solution(u0, STEPS)
    print(f"1-D heat equation: {RANKS} ranks x {POINTS_PER_RANK} points, {STEPS} steps")
    print(f"hybrid setup: {RANKS} nodes, 4 cores each, MPI_THREAD_MULTIPLE\n")

    for policy in ("coarse", "fine"):
        field, elapsed_us = run(policy)
        err = float(np.max(np.abs(field - expect)))
        ok = "OK " if err < 1e-9 else "BAD"
        print(
            f"[{ok}] {policy:6s} locking: simulated time {elapsed_us:9.1f} us, "
            f"max error vs serial reference {err:.2e}"
        )
    print(
        "\nBoth policies compute identical physics; fine-grain locking lets the\n"
        "two halo threads of each rank drive the library concurrently (§3.2)."
    )


if __name__ == "__main__":
    main()
