#!/usr/bin/env python3
"""Hybrid MPI + threads: a 1-D heat-equation stencil.

The paper's introduction motivates thread-safe communication libraries
with exactly this kind of application: "hybrid solutions that mix the use
of threads and MPI processes seem to be the best candidate".  The stencil
itself lives in the workload subsystem (:mod:`repro.workloads.stencil`):
domain decomposition across 4 simulated ranks, halo exchange by two
concurrent communication threads per rank (``MPI_THREAD_MULTIPLE``), and
multi-threaded compute.  This example runs its *physics form* — real
heat-equation arithmetic riding on the simulated communication — and
verifies the result against a single-threaded reference solve, timing the
run under several mechanisms of the paper's design space.

Run:  python examples/hybrid_stencil.py
(set REPRO_EXAMPLES_QUICK=1 for the reduced CI-sized run)
"""

import os

import numpy as np

from repro.workloads.stencil import ALPHA, run_stencil

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"
POINTS_PER_RANK = 64 if QUICK else 256
RANKS = 4
STEPS = 8 if QUICK else 20
MECHANISMS = (
    "coarse/busy/inline",
    "fine/busy/inline",
    "fine/passive/idle",
)


def reference_solution(u0: np.ndarray, steps: int) -> np.ndarray:
    """Single-threaded explicit Euler with fixed boundaries."""
    u = u0.copy()
    for _ in range(steps):
        nxt = u.copy()
        nxt[1:-1] = u[1:-1] + ALPHA * (u[2:] - 2 * u[1:-1] + u[:-2])
        u = nxt
    return u


def initial_field() -> np.ndarray:
    x = np.linspace(0.0, 1.0, POINTS_PER_RANK * RANKS)
    return np.exp(-100.0 * (x - 0.5) ** 2)


def main() -> None:
    u0 = initial_field()
    expect = reference_solution(u0, STEPS)
    print(f"1-D heat equation: {RANKS} ranks x {POINTS_PER_RANK} points, {STEPS} steps")
    print(f"hybrid setup: {RANKS} nodes, 4 cores each, MPI_THREAD_MULTIPLE\n")

    for mech in MECHANISMS:
        run = run_stencil(mech, ranks=RANKS, steps=STEPS, field=u0)
        err = float(np.max(np.abs(run.field - expect)))
        ok = "OK " if err < 1e-9 else "BAD"
        print(
            f"[{ok}] {mech:22s}: simulated time {run.makespan_us:9.1f} us, "
            f"max error vs serial reference {err:.2e}"
        )
    print(
        "\nEvery mechanism computes identical physics; fine-grain locking lets\n"
        "the two halo threads of each rank drive the library concurrently\n"
        "(§3.2), and passive waiting frees the cores between halo arrivals\n"
        "(§3.3) at the price of wake-up latency."
    )


if __name__ == "__main__":
    main()
