#!/usr/bin/env python3
"""Mad-MPI collectives: distributed power iteration.

Estimates the dominant eigenvalue of a symmetric matrix with the power
method, distributed over 4 ranks by block rows:

* each rank owns a block of matrix rows and the matching vector slice;
* ``Allgather`` assembles the full vector before each mat-vec;
* ``Allreduce`` computes the global norm and the Rayleigh quotient;
* ``Bcast`` distributes the initial vector, ``Barrier`` separates phases.

The result is verified against ``numpy.linalg.eigvalsh`` and the
simulated communication time is reported per collective pattern.

Run:  python examples/mpi_collectives.py
(set REPRO_EXAMPLES_QUICK=1 for the reduced CI-sized run)
"""

import operator
import os

import numpy as np

from repro.core import build_testbed
from repro.madmpi import ThreadLevel, create_world, run_ranks
from repro.sim.process import Delay

RANKS = 4
N = 64  # matrix dimension (divisible by RANKS)
ITERATIONS = 25 if os.environ.get("REPRO_EXAMPLES_QUICK") == "1" else 60
#: simulated cost of one local block mat-vec
MATVEC_NS = 15_000


def make_matrix(seed: int = 42) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(N, N))
    sym = (a + a.T) / 2 + N * np.eye(N)
    # plant a well-separated dominant eigenvalue so the power method
    # converges quickly
    u = np.ones(N) / np.sqrt(N)
    return sym + 3 * N * np.outer(u, u)


def rank_program(comm, matrix: np.ndarray, out: dict):
    rank = comm.rank
    rows = N // RANKS
    block = matrix[rank * rows : (rank + 1) * rows, :]

    # rank 0 draws the start vector; everyone gets it
    x0 = np.ones(N) if rank == 0 else None
    x = yield from comm.Bcast(x0, root=0)
    local = x[rank * rows : (rank + 1) * rows].copy()

    eigenvalue = 0.0
    for _ in range(ITERATIONS):
        # assemble the full vector from every rank's slice
        slices = yield from comm.Allgather(local)
        full = np.concatenate(slices)
        # local block mat-vec (costed compute)
        yield Delay(MATVEC_NS, "compute")
        local = block @ full
        # global norm via allreduce of the partial sums of squares
        sq = float(local @ local)
        norm2 = yield from comm.Allreduce(sq, operator.add)
        norm = norm2**0.5
        local = local / norm
        eigenvalue = norm
    yield from comm.Barrier()
    out[rank] = eigenvalue


def main() -> None:
    matrix = make_matrix()
    expect = float(np.linalg.eigvalsh(matrix)[-1])

    bed = build_testbed(nodes=RANKS, policy="fine")
    comms = create_world(bed, thread_level=ThreadLevel.MULTIPLE)
    out: dict = {}
    run_ranks(bed, comms, lambda c: rank_program(c, matrix, out))

    estimates = [out[r] for r in range(RANKS)]
    agreed = max(estimates) - min(estimates) < 1e-9
    err = abs(estimates[0] - expect) / expect
    elapsed_us = bed.engine.now / 1000

    print(f"Distributed power iteration: {RANKS} ranks, {N}x{N} matrix, "
          f"{ITERATIONS} iterations")
    print(f"  dominant eigenvalue (numpy) : {expect:.6f}")
    print(f"  dominant eigenvalue (ranks) : {estimates[0]:.6f}")
    print(f"  ranks agree                 : {agreed}")
    print(f"  relative error              : {err:.2e}")
    print(f"  simulated wall-clock        : {elapsed_us:.1f} us")
    status = "converged" if err < 1e-6 and agreed else "DID NOT CONVERGE"
    print(f"\n{status}: Allgather + Allreduce + Bcast + Barrier over "
          f"the simulated MX fabric.")


if __name__ == "__main__":
    main()
