"""Unit tests for the PIOMan manager and its scheduler integration."""

import pytest

from repro.core import PassiveWait
from repro.core.session import build_testbed
from repro.pioman import PIOMan, attach_pioman
from repro.sim import Engine, Machine, quad_xeon_x5460


class TestAttachment:
    def test_attach_sets_back_reference(self):
        bed = build_testbed()
        pioman = attach_pioman(bed.machine(0), [bed.lib(0)])
        assert bed.lib(0).pioman is pioman

    def test_attach_wrong_machine_rejected(self):
        bed = build_testbed()
        pioman = PIOMan(bed.machine(0))
        with pytest.raises(ValueError):
            pioman.attach(bed.lib(1))

    def test_double_attach_rejected(self):
        bed = build_testbed()
        pioman = PIOMan(bed.machine(0))
        pioman.attach(bed.lib(0))
        with pytest.raises(ValueError):
            pioman.attach(bed.lib(0))

    def test_attach_pioman_needs_libs(self):
        m = Machine(Engine(), quad_xeon_x5460())
        with pytest.raises(ValueError):
            attach_pioman(m, [])

    def test_bad_poll_core_rejected(self):
        bed = build_testbed()
        with pytest.raises(ValueError):
            attach_pioman(bed.machine(0), [bed.lib(0)], poll_cores=[9])


class TestRegistration:
    def test_register_is_idempotent(self):
        bed = build_testbed()
        pioman = attach_pioman(bed.machine(0), [bed.lib(0)], enable_idle=False)
        state = {}

        def worker():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 0, 8)
            yield from pioman.register(req)
            yield from pioman.register(req)
            state["count"] = pioman.pending_count

        t = bed.machine(0).scheduler.spawn(worker(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert state["count"] <= 1  # eager send may complete at injection
        assert pioman.registered_total <= 1

    def test_register_done_request_skipped(self):
        bed = build_testbed()
        pioman = attach_pioman(bed.machine(0), [bed.lib(0)], enable_idle=False)
        state = {}

        def worker():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 0, 8)  # completes at injection
            assert req.done
            yield from pioman.register(req)
            state["count"] = pioman.pending_count

        t = bed.machine(0).scheduler.spawn(worker(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert state["count"] == 0

    def test_poll_reaps_completed(self):
        bed = build_testbed()
        pioman0 = attach_pioman(bed.machine(0), [bed.lib(0)])
        attach_pioman(bed.machine(1), [bed.lib(1)])
        res = {}

        def sender():
            lib = bed.lib(1)
            req = yield from lib.isend(0, 0, 8)
            yield from lib.wait(req)

        def receiver():
            lib = bed.lib(0)
            req = yield from lib.irecv(1, 0, 8)
            yield from pioman0.register(req)
            while pioman0.pending_count:
                yield from pioman0.poll()
            res["reaped"] = pioman0.completed_total

        ts = bed.machine(1).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(0).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        assert res["reaped"] >= 1


class TestDemand:
    def test_no_demand_when_quiet(self):
        bed = build_testbed()
        pioman = attach_pioman(bed.machine(0), [bed.lib(0)], enable_idle=False)
        assert not pioman.demand()

    def test_demand_with_pending_request(self):
        bed = build_testbed()
        pioman = attach_pioman(bed.machine(0), [bed.lib(0)], enable_idle=False)

        def worker():
            lib = bed.lib(0)
            req = yield from lib.irecv(1, 0, 8)
            yield from pioman.register(req)

        t = bed.machine(0).scheduler.spawn(worker(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert pioman.demand()

    def test_idle_loops_park_when_no_demand(self):
        from repro.sim import ThreadState

        bed = build_testbed()
        attach_pioman(bed.machine(0), [bed.lib(0)])
        bed.engine.run(
            until=lambda: all(
                c.idle_thread is not None
                and c.idle_thread.state is ThreadState.SLEEPING
                for c in bed.machine(0).cores
            ),
            max_time=10_000_000,
        )
        # quiet machine: no runaway event churn
        assert bed.engine.pending() == 0


class TestPollCores:
    def test_only_selected_cores_poll(self):
        """Fig. 8 mechanism: polling restricted to one core."""
        bed = build_testbed()
        for node in (0, 1):
            attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[2])
        from repro.bench.pingpong import run_pingpong

        run_pingpong(bed, 8, iterations=4, warmup=1, wait_factory=PassiveWait)
        m = bed.machine(0)
        assert m.cores[2].busy_ns("poll") > 0
        assert m.cores[1].busy_ns("poll") == 0
        assert m.cores[3].busy_ns("poll") == 0
