"""Submission offloading tests (paper §4.2, Fig. 9)."""

import pytest

from repro.bench.overlap import build_overlap_bed, make_offload, run_overlap
from repro.core import PacketKind
from repro.pioman.offload import IdleCoreSubmit, InlineSubmit, TaskletSubmit


class TestFactories:
    def test_make_offload_names(self):
        assert make_offload("inline").name == "inline"
        assert make_offload("idle-core").name == "idle-core"
        assert make_offload("tasklet").name == "tasklet"

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_offload("gpu")

    def test_inline_flags(self):
        assert InlineSubmit().inline
        assert not IdleCoreSubmit().inline
        assert not TaskletSubmit().inline

    def test_tasklet_bad_core(self):
        with pytest.raises(ValueError):
            TaskletSubmit(target_core=-1)


class TestOffloadCorrectness:
    @pytest.mark.parametrize("mode", ["inline", "idle-core", "tasklet"])
    def test_messages_still_flow(self, mode):
        bed = build_overlap_bed(mode)
        res = run_overlap(bed, 2048, iterations=4, warmup=1)
        assert len(res.rtts_ns) == 4
        assert res.latency_us > 0

    def test_idle_core_submission_happens_on_poll_core(self):
        bed = build_overlap_bed("idle-core", poll_core=1)
        run_overlap(bed, 2048, iterations=4, warmup=1)
        # the application core did not pay the send overheads...
        m = bed.machine(0)
        assert m.cores[1].busy_ns("net") > 0

    def test_tasklets_actually_ran(self):
        bed = build_overlap_bed("tasklet", poll_core=1)
        run_overlap(bed, 2048, iterations=4, warmup=1)
        assert bed.machine(0).tasklets.executed_total >= 4

    def test_rendezvous_sizes_work_offloaded(self):
        bed = build_overlap_bed("tasklet")
        res = run_overlap(bed, 32 * 1024, iterations=3, warmup=1)
        assert res.latency_us > 0
        assert bed.lib(0).packets_posted[PacketKind.RTS] >= 3


class TestFig9Shape:
    """Ordering and rough offsets: reference < idle-core < tasklet."""

    @staticmethod
    def lat(mode, size):
        bed = build_overlap_bed(mode)
        return run_overlap(bed, size, iterations=8, warmup=2).latency_ns

    def test_ordering_at_8k(self):
        ref = self.lat("inline", 8 * 1024)
        idle = self.lat("idle-core", 8 * 1024)
        tasklet = self.lat("tasklet", 8 * 1024)
        assert ref < idle < tasklet

    def test_tasklet_overhead_about_2us(self):
        """Fig. 9: 'offloading message submission with tasklet introduces
        an overhead of 2 us'."""
        ref = self.lat("inline", 16 * 1024)
        tasklet = self.lat("tasklet", 16 * 1024)
        assert tasklet - ref == pytest.approx(2_000, rel=0.6)

    def test_idle_core_overhead_under_1us(self):
        """Fig. 9: 'using idle cores to transmit the data costs 400 ns'."""
        ref = self.lat("inline", 16 * 1024)
        idle = self.lat("idle-core", 16 * 1024)
        assert 100 <= idle - ref <= 1_000
