"""Timer-interrupt progression (paper §3.3: hooks on "timer interrupts").

When every core runs compute threads, neither the application nor the
idle loops can poll; the timer hook's interrupt-context poll is the
liveness backstop.
"""

from repro.core import build_testbed
from repro.pioman import attach_pioman
from repro.sim.process import Delay

COMPUTE_NS = 2_000_000  # 2 ms of compute hogging every core


def busy_all_cores(machine, duration_ns):
    """Spawn compute threads occupying every core."""
    threads = []
    for core in range(machine.ncores):

        def burn():
            yield Delay(duration_ns, "compute")

        threads.append(
            machine.scheduler.spawn(burn(), name=f"burn{core}", core=core, bound=True)
        )
    return threads


def send_and_measure(timers: bool) -> int:
    """Time from send to recv completion while node B's cores all compute."""
    bed = build_testbed(policy="fine")
    pioman_kw = dict(timers=timers, timer_period_ns=50_000)
    for node in (0, 1):
        attach_pioman(bed.machine(node), [bed.lib(node)], **pioman_kw)
    state = {}

    def receiver_setup():
        lib = bed.lib(1)
        req = yield from lib.irecv(0, 5, 64)
        state["rreq"] = req

    t_setup = bed.machine(1).scheduler.spawn(receiver_setup(), name="setup", core=0)
    bed.run(until=lambda: t_setup.done)

    # every core of node B now computes for 2 ms
    burners = busy_all_cores(bed.machine(1), COMPUTE_NS)

    def sender():
        lib = bed.lib(0)
        req = yield from lib.isend(1, 5, 64)
        yield from lib.wait(req)
        state["sent_at"] = bed.engine.now

    t_send = bed.machine(0).scheduler.spawn(sender(), name="send", core=0)
    rreq = state["rreq"]
    bed.run(
        until=lambda: rreq.done or all(b.done for b in burners),
        max_time=1_000_000_000,
    )
    if not rreq.done:
        bed.run(until=lambda: rreq.done, max_time=1_000_000_000)
    return rreq.completed_at - state["sent_at"]


class TestTimerProgression:
    def test_without_timers_arrival_waits_for_compute(self):
        delay = send_and_measure(timers=False)
        # nobody could poll: completion waited for the 2 ms compute burst
        assert delay > COMPUTE_NS / 2

    def test_timer_hook_completes_arrival_mid_compute(self):
        delay = send_and_measure(timers=True)
        # the 50 us timer tick polled from interrupt context
        assert delay < 300_000

    def test_timer_hook_charges_interrupt_time(self):
        bed = build_testbed(policy="fine")
        for node in (0, 1):
            attach_pioman(
                bed.machine(node), [bed.lib(node)], timers=True, timer_period_ns=20_000
            )
        bed.engine.run(until=lambda: bed.engine.now > 100_000, max_time=10_000_000)
        assert bed.machine(0).cores[0].busy_ns("timer") > 0


class TestInlineProgress:
    def test_inline_pass_is_nonblocking_under_contention(self):
        """A held rx lock makes the inline pass bail out, not spin."""
        from repro.sim import Acquire, Release
        from repro.sim.process import run_inline

        bed = build_testbed(policy="coarse")
        lib = bed.lib(1)
        lock = lib.policy.rx_lock(lib.drivers[0])
        held = {}

        def holder():
            yield Acquire(lock)
            held["yes"] = True
            yield Delay(50_000)
            yield Release(lock)

        bed.machine(1).scheduler.spawn(holder(), name="h", core=0, bound=True)
        bed.engine.run(until=lambda: held.get("yes"), max_time=10_000_000)
        # inject an arrival so there is rx work
        drv = bed.drivers[(0, 1)][0]

        class FakePacket:
            wire_size = 48
            host_copy_bytes = 8

        drv.nic.inject(FakePacket(), 48)
        bed.engine.run(until=lambda: lib.drivers[0].rx_pending > 0, max_time=10_000_000)
        ns, did = run_inline(lib.try_progress_inline(), core_index=1)
        assert did is False  # bailed out: lock held
        assert ns < 1_000  # no spinning

    def test_inline_pass_processes_arrival(self):
        from repro.core import BusyWait
        from repro.sim.process import run_inline

        bed = build_testbed(policy="fine")
        state = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 9, 32, payload="inline")
            yield from lib.wait(req, BusyWait())

        def receiver_post():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 9, 32)
            state["req"] = req

        tp = bed.machine(1).scheduler.spawn(receiver_post(), name="p", core=0)
        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        bed.run(until=lambda: ts.done and bed.lib(1).drivers[0].rx_pending > 0)
        ns, did = run_inline(bed.lib(1).try_progress_inline(), core_index=2)
        assert did is True
        assert state["req"].done
        assert state["req"].payload == "inline"
        assert ns > 0
