"""Cache-affinity effects of delegated polling (paper §4.1, Fig. 8)."""

import pytest

from repro.bench.pingpong import run_pingpong
from repro.core import PassiveWait
from repro.core.session import build_testbed
from repro.pioman import attach_pioman
from repro.sim.topology import dual_quad_xeon


def latency_polling_on(core, topology_factory=None, size=8):
    """Passive-wait pingpong with background polling pinned to ``core``."""
    kw = {}
    if topology_factory is not None:
        kw["topology_factory"] = topology_factory
    bed = build_testbed(policy="fine", **kw)
    for node in (0, 1):
        attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[core])
    res = run_pingpong(
        bed, size, iterations=10, warmup=2, wait_factory=PassiveWait,
        core_a=0, core_b=0,
    )
    return res.latency_ns


class TestQuadCoreAffinity:
    """App thread on CPU 0; polling on CPU 0/1/2/3 (Fig. 8)."""

    def test_shared_l2_costs_about_400ns(self):
        base = latency_polling_on(0)
        shared = latency_polling_on(1)
        assert shared - base == pytest.approx(400, abs=250)

    def test_no_shared_cache_costs_about_1200ns(self):
        base = latency_polling_on(0)
        far = latency_polling_on(2)
        assert far - base == pytest.approx(1_200, abs=400)

    def test_cpu2_and_cpu3_equivalent(self):
        assert latency_polling_on(2) == pytest.approx(latency_polling_on(3), abs=150)

    def test_ordering(self):
        """Fig. 8's visual ordering: cpu0 < cpu1 < cpu2/cpu3."""
        l0, l1, l2 = latency_polling_on(0), latency_polling_on(1), latency_polling_on(2)
        assert l0 < l1 < l2


class TestDualQuadAffinity:
    """§4.1 in-text dual quad-core results: 400 ns / 2.3 us / 3.1 us."""

    def test_three_tiers(self):
        base = latency_polling_on(0, dual_quad_xeon)
        shared = latency_polling_on(1, dual_quad_xeon)
        same_chip = latency_polling_on(2, dual_quad_xeon)
        other_chip = latency_polling_on(4, dual_quad_xeon)
        assert shared - base == pytest.approx(400, abs=250)
        assert same_chip - base == pytest.approx(2_300, abs=600)
        assert other_chip - base == pytest.approx(3_100, abs=700)
        assert base < shared < same_chip < other_chip
