"""Integration: the example scripts run end-to-end and print sane output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "Pingpong latency by locking policy" in out
    assert "coarse-grain locking overhead" in out


@pytest.mark.slow
def test_hybrid_stencil():
    out = run_example("hybrid_stencil.py")
    assert out.count("[OK ]") == 3
    assert "[BAD]" not in out
    assert "max error vs serial reference 0.00e+00" in out


@pytest.mark.slow
def test_overlap_pipeline():
    out = run_example("overlap_pipeline.py")
    assert "Pipeline makespan" in out
    # background progression visibly beats no progression
    lines = [l for l in out.splitlines() if "progression" in l]
    none_line = next(l for l in lines if l.startswith("no progression"))
    bg_line = next(l for l in lines if l.startswith("idle-core progression"))
    none_us = float(none_line.split()[-2])
    bg_us = float(bg_line.split()[-2])
    assert bg_us < none_us * 0.85


@pytest.mark.slow
def test_mpi_collectives_example():
    out = run_example("mpi_collectives.py")
    assert "converged" in out.lower() or "eigenvalue" in out.lower()


@pytest.mark.slow
def test_lock_contention_trace_example():
    out = run_example("lock_contention_trace.py")
    assert "time spinning" in out
    # the narrative line quantifies the coarse-vs-fine contrast
    assert "fine-grain locking" in out
