"""Failure injection: the stack fails loudly and precisely, not silently."""

import pytest

from repro.core import BusyWait, build_testbed
from repro.sim import Engine, SimThreadError, SimTimeLimit


class TestBufferErrors:
    def test_undersized_receive_buffer_detected(self):
        """An arrival larger than the posted buffer is an error, not a
        truncation."""
        bed = build_testbed()

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 4, 1024)
            yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 4, 16)  # too small
            yield from lib.wait(req, BusyWait())

        bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        with pytest.raises(SimThreadError) as info:
            bed.run(until=lambda: False, max_time=1_000_000_000)
        assert "smaller than" in str(info.value.__cause__)

    def test_undersized_rendezvous_buffer_detected(self):
        bed = build_testbed()

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 4, 64 * 1024)
            yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 4, 1024)
            yield from lib.wait(req, BusyWait())

        bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        with pytest.raises(SimThreadError):
            bed.run(until=lambda: False, max_time=1_000_000_000)


class TestLostWaiters:
    def test_wait_for_message_that_never_comes_hits_time_limit(self):
        bed = build_testbed()

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 4, 16)
            yield from lib.wait(req, BusyWait())  # nobody ever sends

        t = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        with pytest.raises(SimTimeLimit):
            bed.engine.run(until=lambda: t.done, max_time=5_000_000)

    def test_passive_wait_without_pollers_deadlocks_loudly(self):
        from repro.core import PassiveWait
        from repro.pioman import PIOMan

        bed = build_testbed()
        # PIOMan attached but no idle loops: nobody will ever poll
        pioman = PIOMan(bed.machine(1))
        pioman.attach(bed.lib(1))

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 4, 16)
            yield from lib.wait(req, PassiveWait())

        t = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        from repro.sim import SimDeadlock

        with pytest.raises(SimDeadlock):
            bed.engine.run(until=lambda: t.done, max_time=1_000_000_000)


class TestEngineGuards:
    def test_runaway_zero_cost_loop_caught_by_max_events(self):
        from repro.sim import Machine, YieldCore, quad_xeon_x5460

        eng = Engine()
        m = Machine(eng, quad_xeon_x5460())

        def spinner():
            while True:
                yield YieldCore()

        m.scheduler.spawn(spinner(), name="w", core=0)
        with pytest.raises(SimTimeLimit):
            eng.run(until=lambda: False, max_events=5_000)

    def test_exception_in_library_names_the_thread(self):
        bed = build_testbed()

        def bad():
            lib = bed.lib(0)
            yield from lib.isend(42, 0, 1)  # unknown peer

        bed.machine(0).scheduler.spawn(bad(), name="culprit", core=0)
        with pytest.raises(SimThreadError) as info:
            bed.run(until=lambda: False, max_time=1_000_000)
        assert "culprit" in str(info.value)
        assert isinstance(info.value.__cause__, LookupError)


class TestProtocolGuards:
    def test_cts_for_unknown_request_is_fatal(self):
        """A CTS arriving for a send the library does not track indicates
        protocol corruption and must crash the progress engine."""
        from repro.core.packets import cts_packet

        bed = build_testbed()
        # inject a rogue CTS directly into node 0's NIC
        rogue = cts_packet(1, 0, req_id=999_999, header_bytes=40)
        bed.drivers[(1, 0)][0].nic.inject(rogue, rogue.wire_size)

        def victim():
            from repro.sim import Delay

            lib = bed.lib(0)
            yield Delay(5_000)  # let the rogue packet arrive
            yield from lib.progress()

        bed.machine(0).scheduler.spawn(victim(), name="v", core=0)
        with pytest.raises(SimThreadError) as info:
            bed.run(until=lambda: False, max_time=1_000_000_000)
        assert "unknown send request" in str(info.value.__cause__)

    def test_double_complete_is_fatal(self):
        from repro.core.requests import RecvRequest
        from repro.sim import Machine, quad_xeon_x5460

        m = Machine(Engine(), quad_xeon_x5460())
        req = RecvRequest(m, 1, 0, 8)
        req.complete()
        with pytest.raises(RuntimeError):
            req.complete()
