"""Property-based tests of system invariants (hypothesis)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BusyWait, build_testbed
from repro.sim import Engine

# simulation-heavy properties: modest example counts, no deadline
SIM_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEngineDeterminism:
    @given(st.lists(st.integers(0, 1_000), min_size=1, max_size=40))
    def test_same_schedule_same_trace(self, delays):
        def trace(seed_list):
            eng = Engine()
            log = []
            for i, d in enumerate(seed_list):
                eng.schedule(d, lambda i=i: log.append((eng.now, i)))
            eng.run()
            return log

        assert trace(delays) == trace(delays)


messages = st.lists(
    st.tuples(
        st.integers(0, 3),  # tag
        st.integers(0, 16 * 1024),  # size (eager and rendezvous)
    ),
    min_size=1,
    max_size=10,
)


class TestTransferConservation:
    @SIM_SETTINGS
    @given(messages)
    def test_every_message_arrives_once_in_order(self, msgs):
        """All posted receives complete; per-tag FIFO order; payloads and
        byte counts conserved."""
        bed = build_testbed(policy="fine")
        recv_log: list[tuple[int, object]] = []

        def sender():
            lib = bed.lib(0)
            reqs = []
            for i, (tag, size) in enumerate(msgs):
                req = yield from lib.isend(1, tag, size, payload=("msg", i))
                reqs.append(req)
            for req in reqs:
                yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(1)
            reqs = []
            for tag, size in msgs:
                req = yield from lib.irecv(0, tag, size)
                reqs.append(req)
            for tag_size, req in zip(msgs, reqs):
                yield from lib.wait(req, BusyWait())
                recv_log.append((tag_size[0], req.payload))

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done, max_time=1_000_000_000)

        # bookkeeping stayed consistent throughout
        from repro.sim import check_invariants, check_lock_invariants

        for machine in bed.machines:
            check_invariants(machine)
        for lib in bed.libs:
            check_lock_invariants(lib.policy.lock_objects())

        # every payload delivered exactly once
        delivered = [p for _, p in recv_log]
        assert sorted(i for _, i in delivered) == list(range(len(msgs)))
        # per-tag FIFO: the i-th send of tag t matches the i-th recv of tag t
        for tag in set(t for t, _ in msgs):
            sent_order = [i for i, (t, _) in enumerate(msgs) if t == tag]
            recv_order = [i for t, (_, i) in recv_log if t == tag]
            assert recv_order == sent_order
        # wire conservation
        drv_a = bed.drivers[(0, 1)][0]
        drv_b = bed.drivers[(1, 0)][0]
        assert drv_a.nic.tx_packets == drv_b.nic.rx_packets
        assert drv_a.nic.tx_bytes == drv_b.nic.rx_bytes

    @SIM_SETTINGS
    @given(messages, st.sampled_from(["none", "coarse", "fine"]))
    def test_policies_agree_on_outcome(self, msgs, policy):
        """Locking changes timing, never semantics."""
        bed = build_testbed(policy=policy)
        got = []

        def sender():
            lib = bed.lib(0)
            reqs = []
            for i, (tag, size) in enumerate(msgs):
                req = yield from lib.isend(1, tag, size, payload=i)
                reqs.append(req)
            for req in reqs:
                yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(1)
            reqs = []
            for tag, size in msgs:
                req = yield from lib.irecv(0, tag, size)
                reqs.append(req)
            for req in reqs:
                yield from lib.wait(req, BusyWait())
                got.append(req.payload)

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done, max_time=1_000_000_000)
        assert sorted(got) == list(range(len(msgs)))


class TestAccountingInvariants:
    @SIM_SETTINGS
    @given(st.integers(1, 2048), st.sampled_from(["none", "coarse", "fine"]))
    def test_core_busy_time_bounded_by_elapsed(self, size, policy):
        from repro.bench.pingpong import run_pingpong

        bed = build_testbed(policy=policy)
        run_pingpong(bed, size, iterations=3, warmup=1)
        elapsed = bed.engine.now
        for machine in bed.machines:
            for core in machine.cores:
                assert core.busy_ns() <= elapsed

    @SIM_SETTINGS
    @given(st.integers(1, 2048))
    def test_latency_monotone_under_policy_cost(self, size):
        """More locking never makes the deterministic pingpong faster by
        more than the phase quantum."""
        from repro.bench.pingpong import run_pingpong

        def lat(policy):
            bed = build_testbed(policy=policy)
            return run_pingpong(bed, size, iterations=8, warmup=2).latency_ns

        none, coarse, fine = lat("none"), lat("coarse"), lat("fine")
        quantum = 900  # one poll pass
        assert coarse >= none - quantum
        assert fine >= none - quantum


class TestLockInvariants:
    @SIM_SETTINGS
    @given(st.integers(2, 4), st.integers(1, 6))
    def test_spinlock_mutual_exclusion(self, nthreads, crit_us):
        """No two threads ever inside the critical section at once."""
        from repro.sim import Acquire, Delay, Machine, Release, SpinLock, quad_xeon_x5460

        eng = Engine()
        machine = Machine(eng, quad_xeon_x5460())
        lock = SpinLock("crit", costs=machine.costs)
        inside = [0]
        max_inside = [0]

        def worker():
            for _ in range(3):
                yield Acquire(lock)
                inside[0] += 1
                max_inside[0] = max(max_inside[0], inside[0])
                yield Delay(crit_us * 1_000)
                inside[0] -= 1
                yield Release(lock)
                yield Delay(500)

        threads = [
            machine.scheduler.spawn(worker(), name=f"w{i}", core=i, bound=True)
            for i in range(nthreads)
        ]
        eng.run(until=lambda: all(t.done for t in threads), max_time=1_000_000_000)
        assert max_inside[0] == 1
        assert lock.acquisitions == 3 * nthreads
