"""Integration: every figure regenerator runs and its claims hold.

These use the quick sweeps; the benchmarks/ directory runs the full ones.
"""

import pytest

from repro.bench import figures


@pytest.mark.parametrize("name", sorted(figures.FIGURES))
def test_figure_claims_hold_quick(name):
    results, checks = figures.FIGURES[name](True)
    assert len(results) > 0
    assert not results.missing_points(), "figure sweep left grid holes"
    failed = [
        f"{c.claim_id}: expected {c.expected}±{c.tolerance}, measured {m:.3g}"
        for c, m in checks
        if not c.check(m)
    ]
    assert not failed, failed


def test_render_produces_table_and_verdicts(capsys):
    figures.render("lockcost", quick=True)
    out = capsys.readouterr().out
    assert "spin cycle" in out
    assert "[OK ]" in out


def test_render_unknown_figure():
    with pytest.raises(KeyError):
        figures.render("fig42")


def test_main_cli(capsys):
    assert figures.main(["lockcost", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "§3.1" in out or "spin" in out.lower()


def test_titles_cover_all_figures():
    assert set(figures.TITLES) == set(figures.FIGURES)
