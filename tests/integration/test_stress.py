"""Stress scenarios: many flows, incast, mixed sizes, all features at once."""

import pytest

from repro.core import (
    BusyWait,
    FullStrategy,
    PacketKind,
    PiomanBusyWait,
    add_rail_pair,
    build_testbed,
)
from repro.net.drivers.ib import IBDriver
from repro.pioman import attach_pioman


class TestIncast:
    """N senders converge on one receiver."""

    @pytest.mark.parametrize("nsenders", [2, 3, 5])
    def test_all_messages_arrive(self, nsenders):
        bed = build_testbed(nodes=nsenders + 1, policy="fine")
        target = 0
        received = []

        def sender(node):
            lib = bed.lib(node)
            req = yield from lib.isend(target, 7, 512, payload=node)
            yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(target)
            reqs = []
            for node in range(1, nsenders + 1):
                req = yield from lib.irecv(node, 7, 512)
                reqs.append(req)
            for req in reqs:
                yield from lib.wait(req, BusyWait())
                received.append(req.payload)

        threads = [
            bed.machine(n).scheduler.spawn(sender(n), name=f"s{n}", core=0)
            for n in range(1, nsenders + 1)
        ]
        threads.append(
            bed.machine(target).scheduler.spawn(receiver(), name="r", core=0)
        )
        bed.run(until=lambda: all(t.done for t in threads))
        assert sorted(received) == list(range(1, nsenders + 1))

    def test_incast_of_rendezvous_messages(self):
        nsenders = 3
        bed = build_testbed(nodes=nsenders + 1, policy="fine")
        target = 0

        def sender(node):
            lib = bed.lib(node)
            req = yield from lib.isend(target, 7, 64 * 1024)
            yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(target)
            reqs = []
            for node in range(1, nsenders + 1):
                req = yield from lib.irecv(node, 7, 64 * 1024)
                reqs.append(req)
            for req in reqs:
                yield from lib.wait(req, BusyWait())

        threads = [
            bed.machine(n).scheduler.spawn(sender(n), name=f"s{n}", core=0)
            for n in range(1, nsenders + 1)
        ]
        tr = bed.machine(target).scheduler.spawn(receiver(), name="r", core=0)
        threads.append(tr)
        bed.run(until=lambda: all(t.done for t in threads))
        # every rendezvous completed: one RTS per sender reached the target
        assert bed.lib(target).packets_posted[PacketKind.CTS] == nsenders


class TestKitchenSink:
    """Everything on: aggregation + weighted multirail + heterogeneous
    rails + PIOMan + mixed message sizes + concurrent threads."""

    def test_mixed_workload_converges_and_conserves(self):
        bed = build_testbed(policy="fine", strategy_factory=FullStrategy)
        add_rail_pair(bed, 0, 1, IBDriver)
        for node in (0, 1):
            attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[3])
        sizes = [1, 64, 100, 4096, 4097, 32 * 1024, 7, 2048]
        done = {"sent": 0, "received": 0}

        def sender(thread_id, my_sizes):
            lib = bed.lib(0)
            reqs = []
            for i, size in enumerate(my_sizes):
                req = yield from lib.isend(
                    1, 100 + thread_id, size, payload=(thread_id, i, size)
                )
                reqs.append(req)
            for req in reqs:
                yield from lib.wait(req, PiomanBusyWait())
                done["sent"] += 1

        def receiver(thread_id, my_sizes):
            lib = bed.lib(1)
            reqs = []
            for size in my_sizes:
                req = yield from lib.irecv(0, 100 + thread_id, size)
                reqs.append(req)
            for i, req in enumerate(reqs):
                yield from lib.wait(req, PiomanBusyWait())
                tid, idx, size = req.payload
                assert (tid, idx) == (thread_id, i)
                assert req.bytes_done == size
                done["received"] += 1

        threads = []
        for tid in range(2):
            my_sizes = sizes if tid == 0 else list(reversed(sizes))
            threads.append(
                bed.machine(0).scheduler.spawn(
                    sender(tid, my_sizes), name=f"s{tid}", core=tid, bound=True
                )
            )
            threads.append(
                bed.machine(1).scheduler.spawn(
                    receiver(tid, my_sizes), name=f"r{tid}", core=tid, bound=True
                )
            )
        bed.run(until=lambda: all(t.done for t in threads))
        assert done == {"sent": 16, "received": 16}
        # both rails carried traffic (weighted multirail on the big messages)
        mx, ib = bed.drivers[(0, 1)]
        assert mx.nic.tx_bytes > 0
        assert ib.nic.tx_bytes > 0

    def test_long_run_has_no_leaks(self):
        """After a long exchange everything quiesces: no pending requests,
        no queued packets, empty matching tables."""
        bed = build_testbed(policy="fine")
        ITER = 40

        def sender():
            lib = bed.lib(0)
            for i in range(ITER):
                req = yield from lib.isend(1, i % 5, 128)
                yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(1)
            for i in range(ITER):
                req = yield from lib.irecv(0, i % 5, 128)
                yield from lib.wait(req, BusyWait())

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        for lib in bed.libs:
            assert lib.pending_incomplete() == 0
            assert not lib.has_work()
            assert lib.matching.posted_count == 0
            assert lib.matching.unexpected_count == 0
            assert not lib.collect.has_pending
            assert not lib.transfer.has_pending
