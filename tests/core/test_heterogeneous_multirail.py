"""Heterogeneous multirail: MX + InfiniBand rails between the same nodes."""

import pytest

from repro.core import (
    BusyWait,
    MultirailStrategy,
    WeightedMultirailStrategy,
    add_rail_pair,
    build_testbed,
)
from repro.net.drivers.ib import IBDriver
from repro.net.drivers.mx import MXDriver

SIZE = 512 * 1024


def transfer_time(strategy_factory, *, heterogeneous=True):
    bed = build_testbed(policy="none", strategy_factory=strategy_factory)
    if heterogeneous:
        add_rail_pair(bed, 0, 1, IBDriver)
    done = {}

    def sender():
        lib = bed.lib(0)
        req = yield from lib.isend(1, 1, SIZE)
        yield from lib.wait(req, BusyWait())

    def receiver():
        lib = bed.lib(1)
        req = yield from lib.irecv(0, 1, SIZE)
        yield from lib.wait(req, BusyWait())
        done["at"] = bed.engine.now

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0, bound=True)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0, bound=True)
    bed.run(until=lambda: ts.done and tr.done)
    return done["at"], bed


class TestAddRailPair:
    def test_rails_registered_both_sides(self):
        bed = build_testbed(policy="none")
        drv_a, drv_b = add_rail_pair(bed, 0, 1, IBDriver)
        assert isinstance(drv_a, IBDriver)
        assert drv_a in bed.lib(0).rails(1)
        assert drv_b in bed.lib(1).rails(0)
        assert len(bed.lib(0).rails(1)) == 2
        assert drv_a.nic.peer is drv_b.nic

    def test_same_node_rejected(self):
        bed = build_testbed(policy="none")
        with pytest.raises(ValueError):
            add_rail_pair(bed, 0, 0, MXDriver)

    def test_traffic_still_flows_after_adding(self):
        from repro.bench.pingpong import run_pingpong

        bed = build_testbed(policy="fine")
        add_rail_pair(bed, 0, 1, IBDriver)
        res = run_pingpong(bed, 64, iterations=4, warmup=1)
        assert res.latency_us > 0


class TestWeightedSplit:
    def test_chunks_weighted_by_bandwidth(self):
        _, bed = transfer_time(WeightedMultirailStrategy)
        mx = bed.drivers[(0, 1)][0]
        ib = bed.drivers[(0, 1)][1]
        assert mx.nic.tx_bytes > 0 and ib.nic.tx_bytes > 0
        # MX: 0.8 ns/B, IB: 0.5 ns/B -> IB should carry ~8/5 of MX's bytes
        ratio = ib.nic.tx_bytes / mx.nic.tx_bytes
        assert ratio == pytest.approx(0.8 / 0.5, rel=0.15)

    def test_weighted_beats_even_split_on_heterogeneous_rails(self):
        even, _ = transfer_time(MultirailStrategy)
        weighted, _ = transfer_time(WeightedMultirailStrategy)
        assert weighted < even

    def test_weighted_beats_single_rail(self):
        single, _ = transfer_time(WeightedMultirailStrategy, heterogeneous=False)
        weighted, _ = transfer_time(WeightedMultirailStrategy)
        assert weighted < single * 0.8

    def test_bytes_conserved(self):
        _, bed = transfer_time(WeightedMultirailStrategy)
        payload = sum(
            d.nic.tx_bytes for d in bed.drivers[(0, 1)]
        )
        # payload plus per-packet headers (2 data packets + handshake)
        assert payload >= SIZE
        assert payload <= SIZE + 1_000

    def test_small_messages_not_split(self):
        bed = build_testbed(
            policy="none", strategy_factory=WeightedMultirailStrategy
        )
        add_rail_pair(bed, 0, 1, IBDriver)
        done = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 1, 256)
            yield from lib.wait(req, BusyWait())

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 1, 256)
            yield from lib.wait(req, BusyWait())
            done["ok"] = True

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        assert bed.lib(0).strategy.split_messages == 0
