"""End-to-end tests of the NewMadeleine library on the simulated testbed."""

import pytest

from repro.core import BusyWait, PacketKind, build_testbed
from repro.sim.process import Delay


def simple_bed(policy="none", **kw):
    return build_testbed(policy=policy, **kw)


def send_one(bed, size, tag=3, policy_wait=BusyWait):
    """Drive one eager/rdv message from node 0 to node 1; return (sreq, rreq)."""
    out = {}

    def sender():
        lib = bed.lib(0)
        req = yield from lib.isend(1, tag, size)
        yield from lib.wait(req, policy_wait())
        out["sreq"] = req

    def receiver():
        lib = bed.lib(1)
        req = yield from lib.irecv(0, tag, size)
        yield from lib.wait(req, policy_wait())
        out["rreq"] = req

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0, bound=True)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0, bound=True)
    bed.run(until=lambda: ts.done and tr.done)
    return out["sreq"], out["rreq"]


class TestEagerTransfer:
    def test_small_message_completes_both_sides(self):
        bed = simple_bed()
        sreq, rreq = send_one(bed, 64)
        assert sreq.done and rreq.done
        assert rreq.bytes_done == 64
        assert sreq.eager

    def test_zero_byte_message(self):
        bed = simple_bed()
        sreq, rreq = send_one(bed, 0)
        assert sreq.done and rreq.done

    def test_latency_in_expected_range(self):
        """No locking, 1 byte: the Fig. 3 baseline is ~3-4 us one way."""
        bed = simple_bed()
        t0 = bed.engine.now
        _, rreq = send_one(bed, 1)
        oneway = rreq.completed_at - t0
        assert 2_500 <= oneway <= 5_000

    def test_unexpected_arrival_then_post(self):
        """The receive posted after the data arrived still completes."""
        bed = simple_bed()
        done = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 9, 128)
            yield from lib.wait(req)

        def receiver():
            lib = bed.lib(1)
            # let the message arrive, then ingest it with no receive posted
            # so it lands on the unexpected queue
            yield Delay(50_000)
            yield from lib.progress()
            req = yield from lib.irecv(0, 9, 128)
            yield from lib.wait(req)
            done["rreq"] = req

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        assert done["rreq"].done
        assert bed.lib(1).matching.unexpected_hits >= 1

    def test_two_messages_same_tag_fifo(self):
        bed = simple_bed()
        order = []

        def sender():
            lib = bed.lib(0)
            r1 = yield from lib.isend(1, 3, 16)
            r2 = yield from lib.isend(1, 3, 16)
            yield from lib.wait(r1)
            yield from lib.wait(r2)

        def receiver():
            lib = bed.lib(1)
            ra = yield from lib.irecv(0, 3, 16)
            rb = yield from lib.irecv(0, 3, 16)
            yield from lib.wait(ra)
            order.append("first-done")
            yield from lib.wait(rb)
            order.append("second-done")

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        assert order == ["first-done", "second-done"]

    def test_bidirectional_same_time(self):
        bed = simple_bed()
        results = {}

        def node(me, other, key):
            lib = bed.lib(me)
            rreq = yield from lib.irecv(other, 5, 32)
            sreq = yield from lib.isend(other, 5, 32)
            yield from lib.wait(sreq)
            yield from lib.wait(rreq)
            results[key] = (sreq.done, rreq.done)

        t0 = bed.machine(0).scheduler.spawn(node(0, 1, "a"), name="a", core=0)
        t1 = bed.machine(1).scheduler.spawn(node(1, 0, "b"), name="b", core=0)
        bed.run(until=lambda: t0.done and t1.done)
        assert results["a"] == (True, True)
        assert results["b"] == (True, True)


class TestRendezvousTransfer:
    def test_large_message_uses_rdv(self):
        bed = simple_bed()
        sreq, rreq = send_one(bed, 32 * 1024)
        assert not sreq.eager
        assert sreq.done and rreq.done
        assert rreq.bytes_done == 32 * 1024
        # the handshake really happened
        assert bed.lib(0).packets_posted[PacketKind.RTS] == 1
        assert bed.lib(1).packets_posted[PacketKind.CTS] == 1

    def test_rdv_boundary(self):
        bed = simple_bed()
        sreq, _ = send_one(bed, 4096)
        assert sreq.eager
        bed2 = simple_bed()
        sreq2, _ = send_one(bed2, 4097)
        assert not sreq2.eager

    def test_rdv_unexpected_rts(self):
        """RTS before the receive is posted: CTS goes out on posting."""
        bed = simple_bed()

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 2, 64 * 1024)
            yield from lib.wait(req)

        def receiver():
            lib = bed.lib(1)
            yield Delay(100_000)  # let the RTS arrive unexpected... but
            # nobody polls node 1 while we sleep, so poll once to ingest it
            yield from lib.progress()
            req = yield from lib.irecv(0, 2, 64 * 1024)
            yield from lib.wait(req)

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)

    def test_rdv_data_is_zero_copy(self):
        bed = simple_bed()
        send_one(bed, 32 * 1024)
        # receiver's copy costs: only the eager path charges copies; verify
        # by accounting: 'net' on node1 core0 excludes a 32K copy (~22 us)
        net_ns = bed.machine(1).cores[0].busy_ns("net")
        assert net_ns < 10_000


class TestPolicyOverheadCalibration:
    """The heart of Fig. 3: constant per-message offsets of 140/230 ns.

    Measured like the figure harness: small calibrated jitter averages the
    polling loop's phase quantisation away (real hardware noise does the
    same), and offsets are medians over several sizes.
    """

    @staticmethod
    def offsets(sizes=(1, 64, 1024)):
        from repro.bench import locking
        from repro.bench.config import BenchConfig

        cfg = BenchConfig(iterations=32, warmup=4, sizes=sizes, jitter_ns=150)
        results = locking.run_fig3(cfg)
        return locking.fig3_offsets(results), results

    def test_offsets_match_paper(self):
        offsets, _ = self.offsets()
        assert offsets["coarse"] == pytest.approx(140, abs=60)
        assert offsets["fine"] == pytest.approx(230, abs=80)

    def test_ordering_none_coarse_fine(self):
        """Fig. 3's visual ordering: no locking < coarse < fine (on the
        median offsets — single sizes carry up to a pass of phase bias)."""
        offsets, _ = self.offsets()
        assert 0 < offsets["coarse"] < offsets["fine"]

    def test_offsets_do_not_scale_with_size(self):
        """'a constant overhead ... that does not impact bandwidth'."""
        _, results = self.offsets(sizes=(1, 2048))
        small = results.point("coarse", 1) - results.point("none", 1)
        big = results.point("coarse", 2048) - results.point("none", 2048)
        assert abs(big - small) * 1_000 < 150


class TestApiValidation:
    def test_unknown_peer_rejected(self):
        bed = simple_bed()

        def bad():
            yield from bed.lib(0).isend(42, 0, 1)

        t = bed.machine(0).scheduler.spawn(bad(), name="b", core=0)
        from repro.sim import SimThreadError

        with pytest.raises(SimThreadError):
            bed.engine.run(until=lambda: t.done)

    def test_test_api(self):
        bed = simple_bed()
        outcome = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 3, 8)
            # eager sends complete at injection: test sees it promptly
            ok = yield from lib.test(req)
            outcome["sent"] = ok

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 3, 8)
            while not (yield from lib.test(req)):
                pass
            outcome["recv"] = True

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        assert outcome == {"sent": True, "recv": True}

    def test_library_stats(self):
        bed = simple_bed()
        send_one(bed, 64)
        lib0 = bed.lib(0)
        assert lib0.isend_count == 1
        assert lib0.packets_posted[PacketKind.DATA] == 1
        assert bed.lib(1).irecv_count == 1

    def test_testbed_validation(self):
        with pytest.raises(ValueError):
            build_testbed(nodes=1)
        with pytest.raises(ValueError):
            build_testbed(rails=0)
