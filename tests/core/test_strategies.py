"""Unit tests for optimization-layer strategies (aggregation, multirail)."""

import pytest

from repro.core import (
    AggregatingStrategy,
    DefaultStrategy,
    FullStrategy,
    MultirailStrategy,
    PacketKind,
    build_testbed,
)
from repro.core.waiting import BusyWait


def run_burst(strategy_factory, *, nmsgs=8, size=256, rails=1, policy="none"):
    """Send a burst of messages 0->1; return (bed, recv_ok)."""
    bed = build_testbed(policy=policy, strategy_factory=strategy_factory, rails=rails)
    state = {}

    def sender():
        lib = bed.lib(0)
        reqs = []
        for i in range(nmsgs):
            req = yield from lib.isend(1, 50, size)
            reqs.append(req)
        for req in reqs:
            yield from lib.wait(req, BusyWait())
        state["send"] = all(r.done for r in reqs)

    def receiver():
        lib = bed.lib(1)
        reqs = []
        for i in range(nmsgs):
            req = yield from lib.irecv(0, 50, size)
            reqs.append(req)
        for req in reqs:
            yield from lib.wait(req, BusyWait())
        state["recv"] = all(r.done for r in reqs)

    ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
    tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
    bed.run(until=lambda: ts.done and tr.done)
    return bed, state


class TestDefaultStrategy:
    def test_one_packet_per_message(self):
        bed, state = run_burst(DefaultStrategy, nmsgs=5)
        assert state == {"send": True, "recv": True}
        assert bed.lib(0).packets_posted[PacketKind.DATA] == 5

    def test_rdv_single_rail(self):
        bed = build_testbed(policy="none", rails=2)
        done = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 1, 64 * 1024)
            yield from lib.wait(req)
            done["s"] = True

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 1, 64 * 1024)
            yield from lib.wait(req)
            done["r"] = True

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        # default strategy: all data on rail 0 only
        rail0, rail1 = bed.drivers[(0, 1)]
        assert rail0.nic.tx_packets > 0
        assert rail1.nic.tx_packets == 0


class TestAggregatingStrategy:
    def test_burst_is_coalesced(self):
        bed, state = run_burst(AggregatingStrategy, nmsgs=8, size=128)
        assert state == {"send": True, "recv": True}
        # fewer packets than messages: aggregation happened while the NIC
        # was busy with earlier packets
        assert bed.lib(0).packets_posted[PacketKind.DATA] < 8
        strat = bed.lib(0).strategy
        assert strat.aggregate_packets >= 1
        assert strat.aggregated_messages >= 2

    def test_respects_size_limit(self):
        bed, state = run_burst(lambda: AggregatingStrategy(max_bytes=256), nmsgs=6, size=200)
        assert state["recv"]
        # no packet may carry more than 256 B of payload -> at most one
        # message per packet here
        assert bed.lib(0).packets_posted[PacketKind.DATA] == 6

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            AggregatingStrategy(max_bytes=0)

    def test_aggregation_reduces_total_time(self):
        """A1 ablation core claim: fewer packets => less per-packet cost."""
        bed_agg, _ = run_burst(AggregatingStrategy, nmsgs=16, size=64)
        t_agg = bed_agg.engine.now
        bed_def, _ = run_burst(DefaultStrategy, nmsgs=16, size=64)
        t_def = bed_def.engine.now
        assert t_agg < t_def


class TestMultirailStrategy:
    def test_large_message_split_across_rails(self):
        bed = build_testbed(
            policy="none", rails=2, strategy_factory=lambda: MultirailStrategy()
        )
        done = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 1, 64 * 1024)
            yield from lib.wait(req)
            done["s"] = True

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 1, 64 * 1024)
            yield from lib.wait(req)
            done["r"] = req

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        rail0, rail1 = bed.drivers[(0, 1)]
        assert rail0.nic.tx_packets > 0 and rail1.nic.tx_packets > 0
        assert done["r"].bytes_done == 64 * 1024
        assert bed.lib(0).strategy.split_messages == 1

    def test_small_rdv_not_split(self):
        bed = build_testbed(
            policy="none",
            rails=2,
            strategy_factory=lambda: MultirailStrategy(min_split_bytes=1 << 20),
        )
        done = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 1, 32 * 1024)
            yield from lib.wait(req)
            done["s"] = True

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 1, 32 * 1024)
            yield from lib.wait(req)
            done["r"] = True

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        bed.run(until=lambda: ts.done and tr.done)
        assert bed.lib(0).strategy.split_messages == 0

    def test_multirail_speeds_up_large_transfers(self):
        """A2 ablation core claim: 2 rails beat 1 for big messages."""

        def time_transfer(rails, strategy_factory):
            bed = build_testbed(
                policy="none", rails=rails, strategy_factory=strategy_factory
            )
            done = {}

            def sender():
                lib = bed.lib(0)
                req = yield from lib.isend(1, 1, 256 * 1024)
                yield from lib.wait(req)

            def receiver():
                lib = bed.lib(1)
                req = yield from lib.irecv(0, 1, 256 * 1024)
                yield from lib.wait(req)
                done["at"] = bed.engine.now

            ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
            tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
            bed.run(until=lambda: ts.done and tr.done)
            return done["at"]

        single = time_transfer(1, DefaultStrategy)
        dual = time_transfer(2, lambda: MultirailStrategy())
        assert dual < single * 0.75

    def test_bad_min_split(self):
        with pytest.raises(ValueError):
            MultirailStrategy(min_split_bytes=1)


class TestFullStrategy:
    def test_combines_both(self):
        bed, state = run_burst(FullStrategy, nmsgs=8, size=128)
        assert state["recv"]
        assert bed.lib(0).strategy.aggregate_packets >= 1

    def test_multirail_delegation(self):
        strat = FullStrategy(min_split_bytes=4096)
        assert strat.split_messages == 0
