"""Core-level tests for nm_probe and receive cancellation."""

import pytest

from repro.core import BusyWait, build_testbed
from repro.sim.process import Delay


class TestProbe:
    def test_probe_empty(self):
        bed = build_testbed(policy="none")
        out = {}

        def prober():
            lib = bed.lib(1)
            found, size = yield from lib.probe(0, 5)
            out["r"] = (found, size)

        t = bed.machine(1).scheduler.spawn(prober(), name="p", core=0)
        bed.run(until=lambda: t.done)
        assert out["r"] == (False, None)

    def test_probe_finds_unexpected_eager(self):
        bed = build_testbed(policy="none")
        out = {}

        def sender():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 5, 96)
            yield from lib.wait(req, BusyWait())

        def prober():
            lib = bed.lib(1)
            yield Delay(50_000)
            found, size = yield from lib.probe(0, 5)
            out["tagged"] = (found, size)
            found_any, size_any = yield from lib.probe(0, -1)
            out["wild"] = (found_any, size_any)
            # the message is still receivable
            req = yield from lib.irecv(0, 5, 96)
            yield from lib.wait(req, BusyWait())
            out["recv"] = req.bytes_done

        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        tp = bed.machine(1).scheduler.spawn(prober(), name="p", core=0)
        bed.run(until=lambda: ts.done and tp.done)
        assert out["tagged"] == (True, 96)
        assert out["wild"] == (True, 96)
        assert out["recv"] == 96

    def test_probe_unknown_peer(self):
        bed = build_testbed(policy="none")

        def prober():
            lib = bed.lib(1)
            yield from lib.probe(42, 5)

        t = bed.machine(1).scheduler.spawn(prober(), name="p", core=0)
        from repro.sim import SimThreadError

        with pytest.raises(SimThreadError):
            bed.run(until=lambda: t.done)


class TestCancelCore:
    def test_cancel_requires_recv(self):
        bed = build_testbed(policy="none")

        def bad():
            lib = bed.lib(0)
            sreq = yield from lib.isend(1, 1, 8)
            yield from lib.wait(sreq, BusyWait())
            yield from lib.cancel_recv(sreq)

        t = bed.machine(0).scheduler.spawn(bad(), name="b", core=0)
        from repro.sim import SimThreadError

        with pytest.raises(SimThreadError) as info:
            bed.run(until=lambda: t.done)
        assert isinstance(info.value.__cause__, TypeError)

    def test_cancelled_request_fires_completion(self):
        bed = build_testbed(policy="none")
        out = {}

        def worker():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 7, 16)
            ok = yield from lib.cancel_recv(req)
            # waiting on a cancelled request returns immediately
            yield from lib.wait(req, BusyWait())
            out["r"] = (ok, req.done, req.cancelled, req.bytes_done)

        t = bed.machine(1).scheduler.spawn(worker(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert out["r"] == (True, True, True, 0)

    def test_double_cancel_second_fails(self):
        bed = build_testbed(policy="none")
        out = {}

        def worker():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 7, 16)
            first = yield from lib.cancel_recv(req)
            second = yield from lib.cancel_recv(req)
            out["r"] = (first, second)

        t = bed.machine(1).scheduler.spawn(worker(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert out["r"] == (True, False)

    def test_matching_table_quiesced_after_cancel(self):
        bed = build_testbed(policy="none")

        def worker():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 7, 16)
            yield from lib.cancel_recv(req)

        t = bed.machine(1).scheduler.spawn(worker(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert bed.lib(1).matching.posted_count == 0
        assert not bed.lib(1).has_pending_requests()
