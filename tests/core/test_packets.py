"""Unit tests for packets and chunks."""

import pytest
from hypothesis import given, strategies as st

from repro.core.packets import (
    Chunk,
    Packet,
    PacketKind,
    cts_packet,
    data_packet,
    rts_packet,
)


def chunk(size=100, offset=0, length=None, req_id=1, tag=5):
    return Chunk(
        src_node=0,
        send_req_id=req_id,
        tag=tag,
        msg_size=size,
        offset=offset,
        length=size if length is None else length,
    )


class TestChunk:
    def test_full_message(self):
        assert chunk(100).is_full_message

    def test_partial(self):
        c = chunk(100, offset=50, length=25)
        assert not c.is_full_message

    def test_geometry_overflow_rejected(self):
        with pytest.raises(ValueError):
            chunk(100, offset=60, length=60)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Chunk(0, 1, 1, -1, 0, 0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            chunk().offset = 3

    @given(
        st.integers(0, 10_000),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    )
    def test_valid_geometry_accepted(self, size, offset, length):
        if offset + length <= size:
            c = Chunk(0, 1, 0, size, offset, length)
            assert c.length == length
        else:
            with pytest.raises(ValueError):
                Chunk(0, 1, 0, size, offset, length)


class TestDataPacket:
    def test_wire_size_includes_header(self):
        p = data_packet(0, 1, (chunk(100),), header_bytes=40, eager=True)
        assert p.wire_size == 140
        assert p.payload_bytes == 100

    def test_eager_copies_payload(self):
        p = data_packet(0, 1, (chunk(100),), header_bytes=40, eager=True)
        assert p.host_copy_bytes == 100

    def test_rendezvous_zero_copy(self):
        p = data_packet(0, 1, (chunk(100),), header_bytes=40, eager=False)
        assert p.host_copy_bytes == 0

    def test_aggregate_payload_sums_chunks(self):
        p = data_packet(
            0, 1, (chunk(100, req_id=1), chunk(50, req_id=2)), header_bytes=40, eager=True
        )
        assert p.payload_bytes == 150

    def test_needs_chunks(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.DATA, 0, 1, 40)

    def test_unique_ids(self):
        a = data_packet(0, 1, (chunk(),), header_bytes=40, eager=True)
        b = data_packet(0, 1, (chunk(),), header_bytes=40, eager=True)
        assert a.packet_id != b.packet_id


class TestControlPackets:
    def test_rts_fields(self):
        p = rts_packet(0, 1, req_id=9, tag=4, size=64_000, header_bytes=40)
        assert p.kind is PacketKind.RTS
        assert p.wire_size == 40
        assert p.host_copy_bytes == 0
        assert p.rdv_req_id == 9
        assert p.rdv_size == 64_000

    def test_cts_fields(self):
        p = cts_packet(1, 0, req_id=9, header_bytes=40)
        assert p.kind is PacketKind.CTS
        assert p.rdv_req_id == 9
        assert p.wire_size == 40

    def test_control_with_chunks_rejected(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.RTS, 0, 1, 40, chunks=(chunk(),), rdv_req_id=1)

    def test_rts_needs_metadata(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.RTS, 0, 1, 40, rdv_req_id=1)

    def test_control_needs_req_id(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.CTS, 0, 1, 40)
