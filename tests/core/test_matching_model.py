"""Model-based testing of the matching table.

Hypothesis drives random interleavings of posts and arrivals against a
simple reference model (a per-(peer, tag) FIFO queue with MPI matching
semantics); the real table must agree at every step.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.core.matching import MatchingTable
from repro.core.packets import Chunk
from repro.core.requests import ANY_TAG, RecvRequest
from repro.sim import Engine, Machine, quad_xeon_x5460


class ReferenceModel:
    """Spec: arrivals match the oldest posted receive whose (peer, tag)
    accepts them; otherwise they queue as unexpected.  Posts claim the
    oldest matching unexpected arrival first."""

    def __init__(self) -> None:
        self.posted: deque[tuple[int, int, int]] = deque()  # (peer, tag, id)
        self.unexpected: deque[tuple[int, int, int]] = deque()  # (src, tag, msg_id)

    def post(self, peer: int, tag: int, rid: int) -> int | None:
        """Returns the matched unexpected msg_id, or None if queued."""
        for entry in list(self.unexpected):
            src, mtag, mid = entry
            if src == peer and (tag == ANY_TAG or tag == mtag):
                self.unexpected.remove(entry)
                return mid
        self.posted.append((peer, tag, rid))
        return None

    def arrive(self, src: int, tag: int, mid: int) -> int | None:
        """Returns the matched posted rid, or None if stashed."""
        for entry in list(self.posted):
            peer, ptag, rid = entry
            if peer == src and (ptag == ANY_TAG or ptag == tag):
                self.posted.remove(entry)
                return rid
        self.unexpected.append((src, tag, mid))
        return None


# operations: ("post", peer, tag) | ("arrive", src, tag)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("post"), st.integers(0, 1), st.sampled_from([0, 1, 2, ANY_TAG])),
        st.tuples(st.just("arrive"), st.integers(0, 1), st.integers(0, 2)),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_matching_agrees_with_reference(operations):
    machine = Machine(Engine(), quad_xeon_x5460())
    table = MatchingTable()
    model = ReferenceModel()
    req_by_id: dict[int, RecvRequest] = {}
    msg_counter = 0

    for op in operations:
        if op[0] == "post":
            _, peer, tag = op
            req = RecvRequest(machine, peer, tag, size=100)
            req_by_id[req.req_id] = req
            # real table: posting only; unexpected claims are the library's
            # job, emulate it like repro.core.library does
            chunks = table.take_unexpected_chunks(req)
            if chunks:
                expected_mid = model.post(peer, tag, req.req_id)
                assert expected_mid is not None, "table matched, model did not"
                assert chunks[0].send_req_id == expected_mid
            else:
                assert model.post(peer, tag, req.req_id) is None
                table.post(req)
        else:
            _, src, tag = op
            msg_counter += 1
            chunk = Chunk(src, 10_000 + msg_counter, tag, 100, 0, 100)
            got = table.match_chunk(chunk)
            expected_rid = model.arrive(src, tag, 10_000 + msg_counter)
            if expected_rid is None:
                assert got is None, "table matched, model stashed"
            else:
                assert got is not None, "model matched, table stashed"
                assert got.req_id == expected_rid

    # final queue sizes agree
    assert table.posted_count == len(model.posted)
    assert len(table.unexpected_chunks()) == len(model.unexpected)
