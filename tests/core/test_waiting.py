"""Unit tests for wait strategies (busy / pioman / passive / fixed-spin)."""

import pytest

from repro.bench.pingpong import run_pingpong
from repro.core import BusyWait, FixedSpinWait, PassiveWait, PiomanBusyWait, WaitError
from repro.core.session import build_testbed
from repro.pioman import attach_pioman


def bed_with_pioman(policy="fine", poll_cores=None, jitter_ns=0):
    bed = build_testbed(policy=policy, jitter_ns=jitter_ns)
    for node in (0, 1):
        attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=poll_cores)
    return bed


class TestBusyWait:
    def test_pingpong(self):
        bed = build_testbed(policy="none")
        res = run_pingpong(bed, 64, iterations=6, warmup=2, wait_factory=BusyWait)
        assert res.latency_us > 0

    def test_requires_nothing(self):
        bed = build_testbed(policy="none")
        assert bed.lib(0).pioman is None  # works without PIOMan


class TestPiomanBusyWait:
    def test_requires_pioman(self):
        bed = build_testbed(policy="none")
        res = {}

        def waiter():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 0, 8)
            try:
                yield from lib.wait(req, PiomanBusyWait())
            except WaitError:
                res["raised"] = True

        t = bed.machine(0).scheduler.spawn(waiter(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert res.get("raised")

    def test_pingpong_with_pioman(self):
        bed = bed_with_pioman()
        res = run_pingpong(bed, 64, iterations=6, warmup=2, wait_factory=PiomanBusyWait)
        assert res.latency_us > 0
        assert bed.lib(0).pioman.completed_total > 0

    def test_fig6_pioman_costs_about_200ns(self):
        """Fig. 6: PIOMan management adds ~200 ns over direct progress."""

        def lat(wait_factory, with_pioman, size):
            if with_pioman:
                bed = bed_with_pioman(poll_cores=[0], jitter_ns=150)
            else:
                bed = build_testbed(policy="fine", jitter_ns=150)
            return run_pingpong(
                bed, size, iterations=32, warmup=4, wait_factory=wait_factory
            ).latency_ns

        deltas = [
            lat(PiomanBusyWait, True, size) - lat(BusyWait, False, size)
            for size in (8, 256)
        ]
        mean = sum(deltas) / len(deltas)
        assert mean == pytest.approx(200, abs=150)


class TestPassiveWait:
    def test_requires_pioman(self):
        bed = build_testbed(policy="none")
        res = {}

        def waiter():
            lib = bed.lib(0)
            req = yield from lib.isend(1, 0, 8)
            try:
                yield from lib.wait(req, PassiveWait())
            except WaitError:
                res["raised"] = True

        t = bed.machine(0).scheduler.spawn(waiter(), name="w", core=0)
        bed.run(until=lambda: t.done)
        assert res.get("raised")

    def test_pingpong_passive(self):
        """Both sides block; idle-core hooks do all the polling."""
        bed = bed_with_pioman()
        res = run_pingpong(bed, 64, iterations=6, warmup=2, wait_factory=PassiveWait)
        assert res.latency_us > 0
        # the application threads context-switched every iteration
        assert bed.machine(0).scheduler.ctx_switches > 6

    def test_fig7_passive_costs_about_750ns_over_active(self):
        """Fig. 7: semaphore-based waiting adds ~750 ns of switches."""

        def lat(wait_factory):
            bed = bed_with_pioman(policy="fine", poll_cores=[0], jitter_ns=150)
            return run_pingpong(
                bed, 8, iterations=32, warmup=4, wait_factory=wait_factory
            ).latency_ns

        active = lat(PiomanBusyWait)
        passive = lat(PassiveWait)
        delta = passive - active
        assert 350 <= delta <= 1_200


class TestFixedSpinWait:
    def test_short_events_resolve_spinning(self):
        """Events within the spin window avoid the context switch."""
        bed = bed_with_pioman()
        strategies = []

        def factory():
            s = FixedSpinWait(spin_ns=1_000_000)
            strategies.append(s)
            return s

        run_pingpong(bed, 8, iterations=6, warmup=2, wait_factory=factory)
        assert sum(s.resolved_spinning for s in strategies) > 0
        assert sum(s.resolved_blocking for s in strategies) == 0

    def test_long_events_fall_back_to_blocking(self):
        bed = bed_with_pioman()
        outcome = {}

        def receiver():
            lib = bed.lib(1)
            req = yield from lib.irecv(0, 5, 8)
            strat = FixedSpinWait(spin_ns=2_000)
            yield from lib.wait(req, strat)
            outcome["blocking"] = strat.resolved_blocking

        def sender():
            from repro.sim.process import Delay

            lib = bed.lib(0)
            yield Delay(200_000)  # way beyond the spin window
            req = yield from lib.isend(1, 5, 8)
            yield from lib.wait(req)

        tr = bed.machine(1).scheduler.spawn(receiver(), name="r", core=0)
        ts = bed.machine(0).scheduler.spawn(sender(), name="s", core=0)
        bed.run(until=lambda: tr.done and ts.done)
        assert outcome["blocking"] == 1

    def test_default_threshold_from_costmodel(self):
        bed = bed_with_pioman()
        assert bed.costs.fixed_spin_ns == 5_000

    def test_negative_spin_rejected(self):
        with pytest.raises(ValueError):
            FixedSpinWait(spin_ns=-1)

    def test_fixed_spin_beats_pure_passive_for_fast_events(self):
        """§3.3: the switch is avoided when the event lands inside the
        spin window, so fixed-spin tracks active waiting.

        Polling is pinned to the waiting core (the Figs. 6/7 methodology);
        with free-roaming pollers the comparison would mix in the Fig. 8
        cache-affinity effects.
        """

        def lat(wait_factory):
            bed = bed_with_pioman(poll_cores=[0], jitter_ns=150)
            return run_pingpong(
                bed, 8, iterations=24, warmup=4, wait_factory=wait_factory
            ).latency_ns

        fixed = lat(lambda: FixedSpinWait(spin_ns=50_000))
        passive = lat(PassiveWait)
        assert fixed < passive
