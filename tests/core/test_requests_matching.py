"""Unit tests for requests and the matching table."""

import pytest

from repro.core.matching import MatchingTable
from repro.core.packets import Chunk
from repro.core.requests import ANY_TAG, RecvRequest, ReqState, SendRequest
from repro.sim import Engine, Machine, quad_xeon_x5460


def machine():
    return Machine(Engine(), quad_xeon_x5460())


def chunk(src=1, req_id=10, tag=5, size=100, offset=0, length=None):
    return Chunk(src, req_id, tag, size, offset, size if length is None else length)


class TestRequests:
    def test_send_request_fields(self):
        m = machine()
        req = SendRequest(m, peer=1, tag=3, size=256, eager=True)
        assert req.state is ReqState.PENDING
        assert not req.done
        assert req.eager

    def test_send_rejects_any_tag(self):
        with pytest.raises(ValueError):
            SendRequest(machine(), 1, ANY_TAG, 10, eager=True)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SendRequest(machine(), 1, 0, -1, eager=True)

    def test_recv_any_tag_matches_everything(self):
        req = RecvRequest(machine(), 1, ANY_TAG, 10)
        assert req.matches(0) and req.matches(999)

    def test_recv_concrete_tag(self):
        req = RecvRequest(machine(), 1, 5, 10)
        assert req.matches(5)
        assert not req.matches(6)

    def test_complete_sets_time_and_fires(self):
        m = machine()
        req = RecvRequest(m, 1, 5, 10)
        req.complete(core=0)
        assert req.done
        assert req.completed_at == 0
        assert req.completion.fired

    def test_double_complete_rejected(self):
        req = RecvRequest(machine(), 1, 5, 10)
        req.complete()
        with pytest.raises(RuntimeError):
            req.complete()

    def test_byte_accounting(self):
        req = RecvRequest(machine(), 1, 5, 100)
        req.add_bytes(60)
        assert not req.all_bytes_done
        req.add_bytes(40)
        assert req.all_bytes_done

    def test_byte_overflow_rejected(self):
        req = RecvRequest(machine(), 1, 5, 100)
        with pytest.raises(RuntimeError):
            req.add_bytes(101)

    def test_unique_ids(self):
        m = machine()
        a = SendRequest(m, 1, 0, 1, eager=True)
        b = RecvRequest(m, 1, 0, 1)
        assert a.req_id != b.req_id


class TestMatchingPosted:
    def test_match_posted_receive(self):
        m, table = machine(), MatchingTable()
        req = RecvRequest(m, peer=1, tag=5, size=100)
        table.post(req)
        assert table.match_chunk(chunk()) is req
        assert table.posted_count == 0

    def test_fifo_order_among_equal_matches(self):
        m, table = machine(), MatchingTable()
        first = RecvRequest(m, 1, 5, 100)
        second = RecvRequest(m, 1, 5, 100)
        table.post(first)
        table.post(second)
        assert table.match_chunk(chunk(req_id=10)) is first
        assert table.match_chunk(chunk(req_id=11)) is second

    def test_peer_mismatch_not_matched(self):
        m, table = machine(), MatchingTable()
        table.post(RecvRequest(m, peer=2, tag=5, size=100))
        assert table.match_chunk(chunk(src=1)) is None
        assert table.unexpected_count == 1

    def test_any_tag_matches(self):
        m, table = machine(), MatchingTable()
        req = RecvRequest(m, 1, ANY_TAG, 100)
        table.post(req)
        assert table.match_chunk(chunk(tag=42)) is req

    def test_small_buffer_rejected(self):
        m, table = machine(), MatchingTable()
        table.post(RecvRequest(m, 1, 5, 10))
        with pytest.raises(RuntimeError):
            table.match_chunk(chunk(size=100))

    def test_multichunk_message_stays_associated(self):
        m, table = machine(), MatchingTable()
        req = RecvRequest(m, 1, 5, 100)
        table.post(req)
        c1 = chunk(offset=0, length=60)
        c2 = chunk(offset=60, length=40)
        got = table.match_chunk(c1)
        assert got is req
        assert not table.finish_chunk(c1, req)
        # second chunk matches through in-progress association, not posting
        assert table.match_chunk(c2) is req
        assert table.finish_chunk(c2, req)

    def test_finish_chunk_clears_in_progress(self):
        m, table = machine(), MatchingTable()
        req = RecvRequest(m, 1, 5, 100)
        table.post(req)
        c1 = chunk(offset=0, length=60)
        table.match_chunk(c1)
        table.finish_chunk(c1, req)
        c2 = chunk(offset=60, length=40)
        table.match_chunk(c2)
        table.finish_chunk(c2, req)
        assert table._in_progress == {}


class TestMatchingUnexpected:
    def test_unexpected_then_post_claims(self):
        m, table = machine(), MatchingTable()
        c = chunk()
        assert table.match_chunk(c) is None
        req = RecvRequest(m, 1, 5, 100)
        taken = table.take_unexpected_chunks(req)
        assert taken == [c]
        assert table.unexpected_count == 0
        assert table.unexpected_hits == 1

    def test_take_claims_single_message_only(self):
        m, table = machine(), MatchingTable()
        table.match_chunk(chunk(req_id=10))
        table.match_chunk(chunk(req_id=11))  # a different message, same tag
        req = RecvRequest(m, 1, 5, 100)
        taken = table.take_unexpected_chunks(req)
        assert len(taken) == 1
        assert taken[0].send_req_id == 10
        assert table.unexpected_count == 1

    def test_take_claims_all_chunks_of_message(self):
        m, table = machine(), MatchingTable()
        table.match_chunk(chunk(req_id=10, offset=0, length=50))
        table.match_chunk(chunk(req_id=10, offset=50, length=50))
        req = RecvRequest(m, 1, 5, 100)
        assert len(table.take_unexpected_chunks(req)) == 2

    def test_non_matching_post_takes_nothing(self):
        m, table = machine(), MatchingTable()
        table.match_chunk(chunk(tag=5))
        req = RecvRequest(m, 1, 99, 100)
        assert table.take_unexpected_chunks(req) == []
        assert table.unexpected_count == 1


class TestMatchingRts:
    def test_rts_matches_posted(self):
        m, table = machine(), MatchingTable()
        req = RecvRequest(m, 1, 5, 64_000)
        table.post(req)
        got = table.match_rts(src_node=1, req_id=77, tag=5, size=64_000)
        assert got is req
        # the rendezvous is registered for the coming data chunks
        data = chunk(req_id=77, size=64_000)
        assert table.match_chunk(data) is req

    def test_rts_unexpected_then_posted(self):
        m, table = machine(), MatchingTable()
        assert table.match_rts(1, 77, 5, 64_000) is None
        req = RecvRequest(m, 1, 5, 64_000)
        rts = table.take_unexpected_rts(req)
        assert rts is not None and rts.req_id == 77

    def test_rts_buffer_too_small(self):
        m, table = machine(), MatchingTable()
        table.post(RecvRequest(m, 1, 5, 10))
        with pytest.raises(RuntimeError):
            table.match_rts(1, 77, 5, 64_000)

    def test_take_unexpected_rts_respects_filter(self):
        m, table = machine(), MatchingTable()
        table.match_rts(2, 77, 5, 100)
        req = RecvRequest(m, 1, 5, 100)
        assert table.take_unexpected_rts(req) is None
