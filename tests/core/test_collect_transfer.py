"""Direct unit tests for the collect and transfer layers."""

import pytest

from repro.core.collect import CollectLayer
from repro.core.packets import data_packet, Chunk
from repro.core.requests import SendRequest
from repro.core.transfer import TransferLayer
from repro.net.drivers.mx import MXDriver
from repro.sim import Engine, Machine, quad_xeon_x5460


def send_req(machine, peer=1, tag=0, size=8):
    return SendRequest(machine, peer, tag, size, eager=True)


@pytest.fixture
def machine():
    return Machine(Engine(), quad_xeon_x5460())


class TestCollectLayer:
    def test_fifo_per_peer(self, machine):
        layer = CollectLayer()
        r1, r2 = send_req(machine), send_req(machine)
        layer.submit(r1)
        layer.submit(r2)
        assert layer.pop(1) is r1
        assert layer.pop(1) is r2

    def test_peers_independent(self, machine):
        layer = CollectLayer()
        a = send_req(machine, peer=1)
        b = send_req(machine, peer=2)
        layer.submit(a)
        layer.submit(b)
        assert layer.pending(1) == 1
        assert layer.pending(2) == 1
        assert sorted(layer.peers_with_pending()) == [1, 2]

    def test_pop_empty_raises(self, machine):
        with pytest.raises(LookupError):
            CollectLayer().pop(1)

    def test_peek_does_not_remove(self, machine):
        layer = CollectLayer()
        req = send_req(machine)
        layer.submit(req)
        assert layer.peek(1) is req
        assert layer.pending(1) == 1

    def test_peek_empty_none(self):
        assert CollectLayer().peek(9) is None

    def test_drain_upto(self, machine):
        layer = CollectLayer()
        reqs = [send_req(machine) for _ in range(5)]
        for req in reqs:
            layer.submit(req)
        first = layer.drain_upto(1, 3)
        assert first == reqs[:3]
        assert layer.pending(1) == 2

    def test_drain_upto_validates(self, machine):
        with pytest.raises(ValueError):
            CollectLayer().drain_upto(1, 0)

    def test_totals(self, machine):
        layer = CollectLayer()
        assert not layer.has_pending
        layer.submit(send_req(machine, peer=1))
        layer.submit(send_req(machine, peer=2))
        assert layer.has_pending
        assert layer.pending_total() == 2
        assert layer.submitted_total == 2


def packet(req_id=1, size=8):
    chunk = Chunk(0, req_id, 0, size, 0, size)
    return data_packet(0, 1, (chunk,), header_bytes=40, eager=True)


class TestTransferLayer:
    def test_fifo_per_driver(self, machine):
        drv = MXDriver(machine)
        layer = TransferLayer([drv])
        p1, p2 = packet(1), packet(2)
        layer.push(drv, p1)
        layer.push(drv, p2)
        assert layer.pop(drv) is p1
        assert layer.pop(drv) is p2
        assert layer.pop(drv) is None

    def test_unknown_driver_rejected(self, machine):
        drv = MXDriver(machine, name="known")
        other = MXDriver(machine, name="unknown")
        layer = TransferLayer([drv])
        with pytest.raises(LookupError):
            layer.push(other, packet())
        with pytest.raises(LookupError):
            layer.pop(other)
        with pytest.raises(LookupError):
            layer.pending(other)

    def test_needs_a_driver(self):
        with pytest.raises(ValueError):
            TransferLayer([])

    def test_totals(self, machine):
        d1 = MXDriver(machine, name="a")
        d2 = MXDriver(machine, name="b")
        layer = TransferLayer([d1, d2])
        layer.push(d1, packet())
        layer.push(d2, packet())
        layer.push(d2, packet())
        assert layer.pending(d1) == 1
        assert layer.pending(d2) == 2
        assert layer.pending_total() == 3
        assert layer.has_pending
        assert layer.enqueued_total == 3
