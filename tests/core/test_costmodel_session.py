"""Unit tests for the cost model and testbed assembly."""

import pytest

from repro.core import CostModel, build_testbed
from repro.core.session import TestBed as SessionTestBed
from repro.net.drivers.ib import IBDriver
from repro.sim import SimCosts, SimThreadError
from repro.sim.topology import dual_quad_xeon


class TestCostModel:
    def test_paper_totals(self):
        cm = CostModel()
        assert cm.pioman_per_message_ns == 200  # Fig. 6
        assert cm.fixed_spin_ns == 5_000  # §3.3
        assert cm.sim.spin_cycle_ns == 70  # §3.1
        assert cm.sim.block_roundtrip_ns == 750  # §3.3 / Fig. 7
        assert (
            cm.sim.tasklet_schedule_ns + cm.sim.tasklet_invoke_ns == 1_600
        )  # Fig. 9 (2 us minus the 400 ns cache crossing)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().submit_ns = 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(submit_ns=-1)
        with pytest.raises(ValueError):
            CostModel(rdv_threshold_bytes=0)
        with pytest.raises(ValueError):
            CostModel(header_bytes=-1)

    def test_custom_sim_costs_compose(self):
        cm = CostModel(sim=SimCosts(ctx_switch_ns=100, wake_latency_ns=100))
        assert cm.sim.block_roundtrip_ns == 200


class TestBuildTestbed:
    def test_default_shape(self):
        bed = build_testbed()
        assert isinstance(bed, SessionTestBed)
        assert len(bed.machines) == 2
        assert len(bed.libs) == 2
        assert bed.machine(0).ncores == 4
        assert bed.lib(0).peers == [1]

    def test_full_mesh(self):
        bed = build_testbed(nodes=4)
        for lib in bed.libs:
            assert lib.peers == [n for n in range(4) if n != lib.node_id]
        # every ordered pair has a rail
        assert len(bed.drivers) == 12

    def test_multi_rail(self):
        bed = build_testbed(rails=3)
        assert len(bed.drivers[(0, 1)]) == 3
        assert len(bed.lib(0).drivers) == 3

    def test_driver_class(self):
        bed = build_testbed(driver_cls=IBDriver)
        assert all(isinstance(d, IBDriver) for d in bed.lib(0).drivers)

    def test_topology_factory(self):
        bed = build_testbed(topology_factory=dual_quad_xeon)
        assert bed.machine(0).ncores == 8

    def test_distinct_strategy_instances(self):
        bed = build_testbed()
        assert bed.lib(0).strategy is not bed.lib(1).strategy

    def test_run_surfaces_thread_failures(self):
        bed = build_testbed()

        def bad():
            yield from ()
            raise RuntimeError("boom")

        t = bed.machine(0).scheduler.spawn(bad(), name="bad", core=0)
        with pytest.raises(SimThreadError):
            bed.run(until=lambda: t.done)

    def test_shutdown_drains(self):
        bed = build_testbed()
        from repro.pioman import attach_pioman

        attach_pioman(bed.machine(0), [bed.lib(0)])
        bed.shutdown()
        assert bed.engine.run() == "drained"

    def test_validation(self):
        with pytest.raises(ValueError):
            build_testbed(nodes=1)
        with pytest.raises(ValueError):
            build_testbed(rails=0)
