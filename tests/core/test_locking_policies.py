"""Unit tests for the locking policies."""

import pytest

from repro.core.locking import (
    POLICY_NAMES,
    CoarseLocking,
    FineLocking,
    NoLocking,
    make_policy,
)
from repro.net.drivers.mx import MXDriver
from repro.sim import Engine, Machine, SimCosts, quad_xeon_x5460


def drivers(n=2):
    eng = Engine()
    m = Machine(eng, quad_xeon_x5460())
    return [MXDriver(m, name=f"mx{i}") for i in range(n)]


class TestFactory:
    def test_names(self):
        costs = SimCosts()
        for name in POLICY_NAMES:
            assert make_policy(name, costs).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("banana", SimCosts())


class TestNoLocking:
    def test_everything_null(self):
        p = NoLocking()
        d = drivers(1)[0]
        assert p.send_section().is_null
        assert p.collect_lock().is_null
        assert p.tx_lock(d).is_null
        assert p.rx_lock(d).is_null
        assert p.lock_objects() == []
        assert p.per_message_extra_ns == 0


class TestCoarseLocking:
    def test_single_library_lock(self):
        p = CoarseLocking(SimCosts())
        d1, d2 = drivers(2)
        # the send section and rx path share the one library lock
        assert p.send_section() is p.rx_lock(d1)
        assert p.rx_lock(d1) is p.rx_lock(d2)
        # inner points are covered (null) to avoid re-acquisition
        assert p.collect_lock().is_null
        assert p.tx_lock(d1).is_null
        assert len(p.lock_objects()) == 1

    def test_cycle_cost_is_70ns(self):
        p = CoarseLocking(SimCosts())
        lock = p.send_section()
        assert lock.acquire_ns + lock.release_ns == 70


class TestFineLocking:
    def test_distinct_locks_per_point(self):
        p = FineLocking(SimCosts())
        d1, d2 = drivers(2)
        locks = {
            id(p.collect_lock()),
            id(p.tx_lock(d1)),
            id(p.tx_lock(d2)),
            id(p.rx_lock(d1)),
            id(p.rx_lock(d2)),
        }
        assert len(locks) == 5
        assert p.send_section().is_null

    def test_locks_cached_per_driver(self):
        p = FineLocking(SimCosts())
        d = drivers(1)[0]
        assert p.tx_lock(d) is p.tx_lock(d)
        assert p.rx_lock(d) is p.rx_lock(d)

    def test_extra_ns(self):
        assert FineLocking(SimCosts()).per_message_extra_ns == 20
        assert make_policy("fine", SimCosts(), fine_extra_ns=5).per_message_extra_ns == 5

    def test_lock_objects_enumerates_created(self):
        p = FineLocking(SimCosts())
        d1, d2 = drivers(2)
        p.tx_lock(d1)
        p.rx_lock(d2)
        assert len(p.lock_objects()) == 3  # collect + tx(d1) + rx(d2)


class TestPaperCalibration:
    def test_coarse_two_cycles_is_140(self):
        """§3.1: 'a constant overhead of 140 ns ... held and released twice'."""
        costs = SimCosts()
        p = CoarseLocking(costs)
        lock = p.send_section()
        per_message = 2 * (lock.acquire_ns + lock.release_ns)
        assert per_message == 140

    def test_fine_three_cycles_plus_extra_is_230(self):
        """§3.2: fine-grain locking costs 230 ns per message."""
        costs = SimCosts()
        p = FineLocking(costs)
        d = drivers(1)[0]
        cycles = sum(
            lock.acquire_ns + lock.release_ns
            for lock in (p.collect_lock(), p.tx_lock(d), p.rx_lock(d))
        )
        assert cycles + p.per_message_extra_ns == 230
