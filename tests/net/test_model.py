"""Unit tests for the link cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.net import IB_MODEL, MX_MODEL, TCP_MODEL, LinkModel


def model(**kw):
    base = dict(
        name="t",
        wire_latency_ns=1_000,
        ns_per_byte=1.0,
        send_overhead_ns=100,
        recv_overhead_ns=50,
        poll_ns=10,
        copy_ns_per_byte=0.5,
    )
    base.update(kw)
    return LinkModel(**base)


class TestLinkModel:
    def test_serialize(self):
        assert model().serialize_ns(100) == 100
        assert model(ns_per_byte=0.8).serialize_ns(1000) == 800

    def test_wire_time_adds_latency(self):
        assert model().wire_time_ns(100) == 1_100

    def test_copy(self):
        assert model().copy_ns(1000) == 500

    def test_zero_bytes(self):
        m = model()
        assert m.serialize_ns(0) == 0
        assert m.wire_time_ns(0) == m.wire_latency_ns
        assert m.copy_ns(0) == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            model().serialize_ns(-1)
        with pytest.raises(ValueError):
            model().copy_ns(-1)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            model(poll_ns=-1)
        with pytest.raises(ValueError):
            model(ns_per_byte=-0.1)

    def test_floor_eager_includes_copies(self):
        m = model()
        eager = m.half_roundtrip_floor_ns(1000, eager=True)
        rdv = m.half_roundtrip_floor_ns(1000, eager=False)
        assert eager - rdv == 2 * m.copy_ns(1000)

    @given(st.integers(min_value=0, max_value=1 << 22))
    def test_floor_monotone_in_size(self, n):
        m = model()
        assert m.half_roundtrip_floor_ns(n + 1) >= m.half_roundtrip_floor_ns(n)


class TestPresets:
    def test_mx_small_message_floor_under_fig3_baseline(self):
        """The analytic floor sits below the ~3 us measured Fig. 3
        baseline (the library adds ~1 us of bookkeeping + detection)."""
        floor = MX_MODEL.half_roundtrip_floor_ns(1)
        assert 1_200 <= floor <= 3_000

    def test_mx_2k_floor_in_fig3_range(self):
        """...and reaches the 5-8 us regime at 2 KB (measured ~7-8 us)."""
        floor = MX_MODEL.half_roundtrip_floor_ns(2048)
        assert 5_000 <= floor <= 8_000

    def test_ib_slightly_faster_than_mx(self):
        assert IB_MODEL.half_roundtrip_floor_ns(1) < MX_MODEL.half_roundtrip_floor_ns(1)

    def test_tcp_much_slower(self):
        assert TCP_MODEL.half_roundtrip_floor_ns(1) > 5 * MX_MODEL.half_roundtrip_floor_ns(1)

    def test_models_frozen(self):
        with pytest.raises(Exception):
            MX_MODEL.poll_ns = 1
