"""Unit tests for SimNIC, Driver and Fabric."""

from dataclasses import dataclass

import pytest

from repro.net import Fabric, IBDriver, MXDriver, TCPDriver, wire_pair
from repro.net.drivers.base import Driver, DriverCaps
from repro.net.model import LinkModel
from repro.sim import Engine, Machine, quad_xeon_x5460


@dataclass
class FakePacket:
    wire_size: int
    host_copy_bytes: int = 0
    tag: str = ""


def two_nodes(driver_cls=MXDriver):
    eng = Engine()
    a = Machine(eng, quad_xeon_x5460(), name="A")
    b = Machine(eng, quad_xeon_x5460(), name="B")
    fabric = Fabric()
    drv_a, drv_b = wire_pair(fabric, a, b, driver_cls)
    return eng, a, b, drv_a, drv_b


class TestWiring:
    def test_wire_pair_connects(self):
        _, _, _, da, db = two_nodes()
        assert da.nic.peer is db.nic
        assert db.nic.peer is da.nic

    def test_double_wire_rejected(self):
        eng, a, b, da, db = two_nodes()
        c = Machine(eng, quad_xeon_x5460(), name="C")
        other = MXDriver(c, name="mx1")
        with pytest.raises(RuntimeError):
            other.nic.connect(da.nic)

    def test_self_wire_rejected(self):
        eng = Engine()
        a = Machine(eng, name="A")
        drv = MXDriver(a)
        with pytest.raises(ValueError):
            drv.nic.connect(drv.nic)

    def test_wire_pair_same_machine_rejected(self):
        eng = Engine()
        a = Machine(eng, name="A")
        with pytest.raises(ValueError):
            wire_pair(Fabric(), a, a, MXDriver)

    def test_inject_unwired_rejected(self):
        eng = Engine()
        a = Machine(eng, name="A")
        drv = MXDriver(a)
        with pytest.raises(RuntimeError):
            drv.nic.inject(FakePacket(8), 8)


class TestTransmission:
    def test_packet_arrives_after_processing_and_wire_time(self):
        eng, a, b, da, db = two_nodes()
        pkt = FakePacket(wire_size=1000)
        da.nic.inject(pkt, 1000)
        eng.run()
        assert db.nic.rx_pending == 1
        expect = (
            da.model.tx_occupancy_ns(1000)
            + da.model.wire_latency_ns
            + db.model.min_rx_gap_ns
        )
        assert eng.now == expect

    def test_tx_serialization_queues_back_to_back(self):
        eng, a, b, da, db = two_nodes()
        da.nic.inject(FakePacket(1000), 1000)
        da.nic.inject(FakePacket(1000), 1000)
        eng.run()
        # the second departure waits for the first's engine occupancy; the
        # receiver's rx slots don't queue here (arrivals are spaced wider
        # than the rx gap)
        occupancy = da.model.tx_occupancy_ns(1000)
        expect = 2 * occupancy + da.model.wire_latency_ns + db.model.min_rx_gap_ns
        assert eng.now == expect
        assert db.nic.rx_packets == 2

    def test_small_packet_occupancy_is_rate_limited(self):
        eng, a, b, da, db = two_nodes()
        da.nic.inject(FakePacket(8), 8)
        assert da.nic.engine_free_at == da.model.min_tx_gap_ns

    def test_tx_idle_reflects_serialization(self):
        eng, a, b, da, db = two_nodes()
        assert da.tx_idle
        da.nic.inject(FakePacket(4096), 4096)
        assert not da.tx_idle
        eng.run()
        assert da.tx_idle

    def test_counters(self):
        eng, a, b, da, db = two_nodes()
        da.nic.inject(FakePacket(64), 64)
        eng.run()
        assert da.nic.tx_packets == 1
        assert da.nic.tx_bytes == 64
        assert db.nic.rx_bytes == 64

    def test_delivery_observer(self):
        eng, a, b, da, db = two_nodes()
        seen = []
        db.nic.on_delivery = lambda nic, pkt: seen.append(pkt.tag)
        da.nic.inject(FakePacket(8, tag="x"), 8)
        eng.run()
        assert seen == ["x"]


class TestDriverGenerators:
    def test_post_send_charges_overhead_and_copy(self):
        eng, a, b, da, db = two_nodes()
        pkt = FakePacket(wire_size=1000, host_copy_bytes=1000)

        def sender():
            yield from da.post_send(pkt)

        t = a.scheduler.spawn(sender(), name="s", core=0)
        eng.run(until=lambda: t.done)
        expect = da.model.send_overhead_ns + da.model.copy_ns(1000)
        assert a.cores[0].busy_ns("net") == expect

    def test_poll_empty_returns_none_and_charges(self):
        eng, a, b, da, db = two_nodes()

        def poller():
            result = yield from db.poll()
            return result

        t = b.scheduler.spawn(poller(), name="p", core=0)
        eng.run(until=lambda: t.done)
        assert t.result is None
        assert b.cores[0].busy_ns("poll") == db.model.poll_ns
        assert db.nic.empty_polls == 1

    def test_poll_returns_packet_and_charges_recv(self):
        eng, a, b, da, db = two_nodes()
        pkt = FakePacket(wire_size=128, host_copy_bytes=128)

        def sender():
            yield from da.post_send(pkt)

        def receiver():
            got = None
            while got is None:
                got = yield from db.poll()
            return got

        a.scheduler.spawn(sender(), name="s", core=0)
        t = b.scheduler.spawn(receiver(), name="r", core=0)
        eng.run(until=lambda: t.done)
        assert t.result is pkt
        assert b.cores[0].busy_ns("net") == db.model.recv_overhead_ns + db.model.copy_ns(128)

    def test_polls_fifo(self):
        eng, a, b, da, db = two_nodes()
        for i in range(3):
            da.nic.inject(FakePacket(8, tag=str(i)), 8)
        eng.run()
        got = []

        def drain():
            while db.rx_pending:
                pkt = yield from db.poll()
                got.append(pkt.tag)

        t = b.scheduler.spawn(drain(), name="d", core=0)
        eng.run(until=lambda: t.done)
        assert got == ["0", "1", "2"]


class TestEagerDecision:
    def test_mx_eager_boundary(self):
        eng = Engine()
        m = Machine(eng, name="A")
        drv = MXDriver(m)
        assert drv.is_eager(4096)
        assert not drv.is_eager(4097)

    def test_custom_caps(self):
        eng = Engine()
        m = Machine(eng, name="A")
        drv = Driver(
            m,
            LinkModel("x", 10, 1.0, 1, 1, 1),
            "d",
            DriverCaps(eager_max_bytes=10, thread_safe_poll=False),
        )
        assert drv.is_eager(10)
        assert not drv.is_eager(11)
        assert not drv.caps.thread_safe_poll


class TestPresetsSmoke:
    @pytest.mark.parametrize("cls", [MXDriver, IBDriver, TCPDriver])
    def test_roundtrip_on_each_technology(self, cls):
        eng, a, b, da, db = two_nodes(cls)

        def sender():
            yield from da.post_send(FakePacket(wire_size=256, host_copy_bytes=256))

        def receiver():
            got = None
            while got is None:
                got = yield from db.poll()
            return eng.now

        a.scheduler.spawn(sender(), name="s", core=0)
        t = b.scheduler.spawn(receiver(), name="r", core=0)
        eng.run(until=lambda: t.done)
        assert t.result >= da.model.wire_time_ns(256)
