"""Unit tests for repro.util.validate."""

import pytest

from repro.util.validate import check_in, check_nonneg, check_pos, check_type


class TestCheckType:
    def test_pass(self):
        assert check_type("x", 3, int) == 3

    def test_tuple(self):
        assert check_type("x", 3.0, (int, float)) == 3.0

    def test_fail_message(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "s", int)

    def test_fail_tuple_message(self):
        with pytest.raises(TypeError, match="int or float"):
            check_type("x", "s", (int, float))


class TestCheckNonneg:
    def test_zero_ok(self):
        assert check_nonneg("n", 0) == 0

    def test_negative(self):
        with pytest.raises(ValueError, match="n must be >= 0"):
            check_nonneg("n", -1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            check_nonneg("n", True)

    def test_non_number(self):
        with pytest.raises(TypeError):
            check_nonneg("n", "3")


class TestCheckPos:
    def test_positive(self):
        assert check_pos("n", 0.5) == 0.5

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_pos("n", 0)


class TestCheckIn:
    def test_member(self):
        assert check_in("mode", "a", ["a", "b"]) == "a"

    def test_not_member(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "z", ["a", "b"])

    def test_accepts_generator(self):
        assert check_in("m", 2, (i for i in range(3))) == 2
