"""Unit tests for repro.util.units."""

import pytest
from hypothesis import given, strategies as st

from repro.util import units


class TestParseSize:
    def test_plain_int(self):
        assert units.parse_size(17) == 17

    def test_zero(self):
        assert units.parse_size(0) == 0

    def test_digit_string(self):
        assert units.parse_size("512") == 512

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("1K", 1024),
            ("2K", 2048),
            ("32K", 32 * 1024),
            ("1k", 1024),
            ("4KB", 4096),
            ("1M", 1024 * 1024),
            ("2MB", 2 * 1024 * 1024),
            ("8B", 8),
            (" 16K ", 16 * 1024),
        ],
    )
    def test_suffixes(self, spec, expected):
        assert units.parse_size(spec) == expected

    @pytest.mark.parametrize("bad", ["", "K", "1Q", "-3", "1.5K", "one", None, 1.5, []])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            units.parse_size(bad)

    def test_negative_int(self):
        with pytest.raises(ValueError):
            units.parse_size(-1)

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            units.parse_size(True)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_roundtrip_through_format(self, n):
        assert units.parse_size(units.format_size(n)) == n


class TestFormatSize:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, "0"), (1, "1"), (100, "100"), (1024, "1K"), (2048, "2K"), (1536, "1536"),
         (1024 * 1024, "1M"), (32 * 1024, "32K")],
    )
    def test_labels(self, n, expected):
        assert units.format_size(n) == expected


class TestTimeConversions:
    def test_us_to_ns(self):
        assert units.us_to_ns(1) == 1000
        assert units.us_to_ns(2.5) == 2500
        assert units.us_to_ns(0.0001) == 0

    def test_ns_to_us(self):
        assert units.ns_to_us(1500) == 1.5

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_roundtrip(self, us):
        assert units.ns_to_us(units.us_to_ns(us)) == pytest.approx(us, abs=1e-3)

    def test_constants(self):
        assert units.US == 1_000
        assert units.MS == 1_000_000
        assert units.SEC == 1_000_000_000
        assert units.KIB == 1024


class TestFormatNs:
    @pytest.mark.parametrize(
        "ns,expected",
        [(140, "140 ns"), (999, "999 ns"), (2500, "2.50 us"), (750, "750 ns"),
         (1_500_000, "1.500 ms"), (2_000_000_000, "2.000 s")],
    )
    def test_scales(self, ns, expected):
        assert units.format_ns(ns) == expected
