"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["size", "lat"], [["1K", 3.5], ["2K", 4.25]])
        lines = out.splitlines()
        assert lines[0].split() == ["size", "lat"]
        assert set(lines[1]) <= {"-", " "}
        assert "3.50" in lines[2]
        assert "4.25" in lines[3]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Figure 3")
        assert out.splitlines()[0] == "Figure 3"
        assert out.splitlines()[1].startswith("=")

    def test_first_column_left_aligned(self):
        out = render_table(["name", "v"], [["x", 1], ["longer", 2]])
        row = out.splitlines()[2]
        assert row.startswith("x ")

    def test_numbers_right_aligned(self):
        out = render_table(["n", "value"], [["a", 7]])
        assert out.splitlines()[2].endswith("7")

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_custom_float_fmt(self):
        out = render_table(["x"], [[1.23456]], float_fmt="{:.4f}")
        assert "1.2346" in out

    def test_bool_not_float_formatted(self):
        out = render_table(["ok"], [[True]])
        assert "True" in out

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert len(out.splitlines()) == 2
