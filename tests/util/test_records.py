"""Unit tests for repro.util.records."""

import pytest
from hypothesis import given, strategies as st

from repro.util.records import ResultRecord, ResultSet


def rec(config="coarse", size=8, lat=3.5, exp="fig3", **extra):
    return ResultRecord(experiment=exp, config=config, size=size, latency_us=lat, extra=extra)


class TestResultRecord:
    def test_roundtrip_dict(self):
        r = rec(extra_metric=42)
        assert ResultRecord.from_dict(r.to_dict()) == r

    def test_frozen(self):
        with pytest.raises(AttributeError):
            rec().latency_us = 1.0


class TestResultSet:
    def test_empty(self):
        rs = ResultSet()
        assert len(rs) == 0
        assert rs.configs() == []
        assert rs.sizes() == []

    def test_add_iter(self):
        rs = ResultSet()
        rs.add(rec(size=1))
        rs.add(rec(size=2))
        assert len(rs) == 2
        assert [r.size for r in rs] == [1, 2]
        assert rs[1].size == 2

    def test_configs_first_seen_order(self):
        rs = ResultSet([rec(config="fine"), rec(config="none"), rec(config="fine")])
        assert rs.configs() == ["fine", "none"]

    def test_sizes_sorted(self):
        rs = ResultSet([rec(size=1024), rec(size=1), rec(size=64)])
        assert rs.sizes() == [1, 64, 1024]

    def test_series_sorted_by_size(self):
        rs = ResultSet(
            [rec(config="c", size=64, lat=5.0), rec(config="c", size=1, lat=3.0),
             rec(config="other", size=1, lat=9.9)]
        )
        assert rs.series("c") == [(1, 3.0), (64, 5.0)]

    def test_point(self):
        rs = ResultSet([rec(config="c", size=8, lat=4.2)])
        assert rs.point("c", 8) == 4.2

    def test_point_missing(self):
        with pytest.raises(KeyError):
            ResultSet().point("c", 8)

    def test_point_ambiguous(self):
        rs = ResultSet([rec(config="c", size=8), rec(config="c", size=8)])
        with pytest.raises(ValueError):
            rs.point("c", 8)

    def test_filter(self):
        rs = ResultSet([rec(size=1), rec(size=2), rec(size=3)])
        small = rs.filter(lambda r: r.size <= 2)
        assert len(small) == 2
        assert len(rs) == 3  # original unchanged

    def test_json_roundtrip(self):
        rs = ResultSet([rec(size=1, lat=3.25, note="x"), rec(config="fine", size=2048)])
        rs2 = ResultSet.from_json(rs.to_json())
        assert list(rs2) == list(rs)

    def test_from_json_rejects_non_list(self):
        with pytest.raises(ValueError):
            ResultSet.from_json('{"a": 1}')

    def test_save_load(self, tmp_path):
        rs = ResultSet([rec()])
        path = str(tmp_path / "out.json")
        rs.save(path)
        assert list(ResultSet.load(path)) == list(rs)

    def test_to_csv_header_and_rows(self):
        rs = ResultSet(
            [rec(config="fine", size=8, lat=3.5, run=1), rec(size=64, lat=4.0)]
        )
        lines = rs.to_csv().splitlines()
        assert lines[0] == "experiment,config,size,latency_us,run"
        assert lines[1] == "fig3,fine,8,3.5,1"
        assert lines[2] == "fig3,coarse,64,4.0,"  # missing extra -> empty cell
        assert len(lines) == 3

    def test_to_csv_extra_keys_sorted_union(self):
        rs = ResultSet([rec(zeta=1), rec(alpha=2)])
        header = rs.to_csv().splitlines()[0]
        assert header.endswith("alpha,zeta")

    def test_to_csv_quotes_and_structured_extras(self):
        rs = ResultSet([rec(config='co,ar"se', meta={"b": 2, "a": 1})])
        text = rs.to_csv()
        assert '"co,ar""se"' in text  # proper CSV quoting
        assert '{""a"": 1, ""b"": 2}' in text  # dict extras as sorted JSON

    def test_to_csv_empty(self):
        assert ResultSet().to_csv() == "experiment,config,size,latency_us\n"

    def test_save_csv(self, tmp_path):
        rs = ResultSet([rec()])
        path = str(tmp_path / "out.csv")
        rs.save_csv(path)
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == rs.to_csv()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=4096),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            ),
            max_size=30,
        )
    )
    def test_series_union_covers_all_records(self, points):
        rs = ResultSet([rec(config=c, size=s, lat=v) for c, s, v in points])
        total = sum(len(rs.series(c)) for c in rs.configs())
        assert total == len(rs)
