"""Golden determinism snapshots: same seed → byte-identical JSON.

Every hot-path optimisation (engine queue layout, effect-object reuse,
PIOMan reap batching, driver fast paths) must change *host* CPU cost only —
never simulated behaviour.  These tests pin that contract with SHA-256
hashes of fully-rendered result JSON: one figure sweep and one
application-level workload scenario, each checked across worker counts
(the parallel sweep runner must not influence results either).

If an intentional modelling change shifts the outputs, regenerate the
hashes with::

    PYTHONPATH=src python -c "
    import hashlib
    from repro.bench.figures import FIGURES
    from repro.workloads.matrix import run_scenario
    rs, _ = FIGURES['fig3'](True)
    print('fig3   ', hashlib.sha256(rs.to_json().encode()).hexdigest())
    rs = run_scenario('stencil', quick=True)
    print('stencil', hashlib.sha256(rs.to_json().encode()).hexdigest())"

and say so in the commit message — a silent hash change is a determinism
bug by definition.
"""

import hashlib

import pytest

from repro.bench.figures import FIGURES
from repro.workloads.matrix import run_scenario

#: SHA-256 of ResultSet.to_json() for the fig3 locking sweep, --quick
FIG3_QUICK_SHA256 = "982855684400e57ba61667d8ee1ba42dd19d628b01fd46039a97c0f78aa5a6b1"
#: SHA-256 of ResultSet.to_json() for the stencil scenario, --quick
STENCIL_QUICK_SHA256 = (
    "d7125235c6f0f9a25232269d4c03e35c1882e997d3e068d7f1ba9546b21c975a"
)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestFigureGolden:
    def test_fig3_quick_matches_snapshot(self):
        result_set, _checks = FIGURES["fig3"](True)
        assert _sha256(result_set.to_json()) == FIG3_QUICK_SHA256

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fig3_quick_workers_invariant(self, workers):
        result_set, _checks = FIGURES["fig3"](True, workers=workers)
        assert _sha256(result_set.to_json()) == FIG3_QUICK_SHA256


class TestIncrementalCacheGolden:
    """Acceptance: the golden hashes hold cold, warm, and at any worker
    count *with the incremental point cache enabled* — replayed points
    are byte-identical to computed ones."""

    def test_fig3_quick_cold_warm_and_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "1")
        cold, _checks = FIGURES["fig3"](True)
        assert cold.digest() == FIG3_QUICK_SHA256
        for workers in (1, 4, 8):
            warm, _checks = FIGURES["fig3"](True, workers=workers)
            assert warm.digest() == FIG3_QUICK_SHA256, f"workers={workers}"

    def test_stencil_quick_cold_warm_and_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "1")
        cold = run_scenario("stencil", quick=True)
        assert cold.digest() == STENCIL_QUICK_SHA256
        for workers in (1, 4, 8):
            warm = run_scenario("stencil", quick=True, workers=workers)
            assert warm.digest() == STENCIL_QUICK_SHA256, f"workers={workers}"


class TestWorkloadGolden:
    def test_stencil_quick_matches_snapshot(self):
        result_set = run_scenario("stencil", quick=True)
        assert _sha256(result_set.to_json()) == STENCIL_QUICK_SHA256

    @pytest.mark.parametrize("workers", [1, 2])
    def test_stencil_quick_workers_invariant(self, workers):
        result_set = run_scenario("stencil", quick=True, workers=workers)
        assert _sha256(result_set.to_json()) == STENCIL_QUICK_SHA256
