"""Tests for the parallel sweep runner (repro.bench.parallel).

The headline guarantee: a ``workers=2`` sweep returns a ResultSet with
the same records, in the same order, with the same JSON serialization as
the sequential sweep — parallelism is pure wall-clock optimisation.
"""

import math
import time
import warnings
from functools import partial

import pytest

from repro.bench import locking, parallel, waiting
from repro.bench.config import BenchConfig
from repro.bench.parallel import (
    WORKERS_ENV,
    compute_chunksize,
    get_pool,
    points_picklable,
    resolve_workers,
    run_tasks,
    shutdown_pool,
)
from repro.bench.runner import run_sweep
from repro.util.records import ResultRecord, ResultSet

#: reduced sweep: enough sizes to exercise the grid, small enough for CI
QUICK = BenchConfig(iterations=8, warmup=2, sizes=(1, 64, 1024), jitter_ns=150)


def _linear_point(slope: float, size: int) -> float:
    """Module-level (hence picklable) fake measurement."""
    return slope * size + 1.0


class TestWorkerResolution:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers() == 5

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_config_validates_workers(self):
        with pytest.raises(ValueError):
            BenchConfig(workers=0)
        assert BenchConfig(workers=2).workers == 2
        assert BenchConfig().with_workers(4).workers == 4


class TestPicklability:
    def test_partials_over_module_functions_are_picklable(self):
        assert points_picklable({"a": partial(_linear_point, 2.0)})

    def test_lambdas_are_not(self):
        assert not points_picklable({"a": lambda size: 1.0})

    def test_extra_callback_participates(self):
        configs = {"a": partial(_linear_point, 2.0)}
        assert not points_picklable(configs, extra=lambda n, s: {})


def _sleep_ms_point(size: int) -> float:
    """Module-level point whose cost is its size in milliseconds — the
    synthetic skewed grid of the chunking regression test."""
    time.sleep(size / 1000.0)
    return float(size)


class TestComputeChunksize:
    def test_small_grids_dispatch_point_by_point(self):
        assert compute_chunksize([8] * 6, 4) == 1
        assert compute_chunksize([], 4) == 1

    def test_uniform_grid_batches(self):
        # 64 uniform points on 2 workers: 64 // (2*4) = 8 per chunk
        assert compute_chunksize([1024] * 64, 2) == 8

    def test_skewed_grid_forces_single_point_chunks(self):
        """One huge point among many small ones (fig8b's shape) must
        never ride in a batch behind cheap points."""
        weights = [32768] + [8] * 63
        assert compute_chunksize(weights, 2) == 1

    def test_zero_weights_still_batch(self):
        assert compute_chunksize([0] * 64, 2) == 8


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self):
        shutdown_pool()
        before = parallel.pool_stats()
        pool_a = get_pool(2)
        pool_b = get_pool(2)
        delta = parallel.pool_stats_delta(before)
        assert pool_a is pool_b
        assert delta["created"] == 1 and delta["reused"] == 1

    def test_worker_count_change_recreates(self):
        shutdown_pool()
        pool_a = get_pool(2)
        pool_b = get_pool(3)
        assert pool_a is not pool_b
        shutdown_pool()

    def test_shutdown_is_idempotent(self):
        shutdown_pool()
        shutdown_pool()

    def test_run_tasks_positional_reassembly(self):
        tasks = [
            ("a", partial(_linear_point, 2.0), size) for size in (1, 2, 4, 8)
        ]
        outcomes = run_tasks(tasks, 2)
        assert outcomes == [3.0, 5.0, 9.0, 17.0]

    def test_sweeps_share_one_pool(self):
        """Two consecutive parallel sweeps must reuse the same pool —
        the suite-level spawn amortisation the pipeline relies on."""
        shutdown_pool()
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2, 4))
        configs = {"a": partial(_linear_point, 1.0)}
        before = parallel.pool_stats()
        run_sweep("exp-one", configs, cfg, workers=2)
        run_sweep("exp-two", configs, cfg, workers=2)
        delta = parallel.pool_stats_delta(before)
        assert delta["created"] <= 1
        assert delta["dispatched"] == 6

    def test_skewed_grid_near_ideal_makespan(self):
        """Regression for the static-chunksize bug: a skewed grid (one
        long point + a tail of short ones) on 4 workers must finish
        within ~1.2x of the ideal makespan, i.e. the long point must not
        serialize short points behind it in a shared chunk."""
        shutdown_pool()
        weights = [200] + [15] * 15
        tasks = [("skew", partial(_sleep_ms_point), w) for w in weights]
        get_pool(4)  # spawn outside the timed region
        t0 = time.perf_counter()
        outcomes = run_tasks(tasks, 4)
        elapsed = time.perf_counter() - t0
        assert outcomes == [float(w) for w in weights]
        ideal = max(max(weights), sum(weights) / 4) / 1000.0
        # 1.2x ideal plus a flat IPC/startup allowance for slow CI boxes
        assert elapsed < 1.2 * ideal + 0.25, (
            f"skewed grid took {elapsed:.3f}s vs ideal {ideal:.3f}s"
        )
        shutdown_pool()


class TestSequentialFallbackWarning:
    def test_nonpicklable_with_workers_warns_naming_sweep(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        with pytest.warns(RuntimeWarning, match="'my-sweep'.*--workers"):
            run_sweep("my-sweep", {"a": lambda s: 1.0}, cfg, workers=2)

    def test_warning_is_one_time_per_sweep(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        with pytest.warns(RuntimeWarning):
            run_sweep("once", {"a": lambda s: 1.0}, cfg, workers=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_sweep("once", {"a": lambda s: 1.0}, cfg, workers=2)

    def test_sequential_run_does_not_warn(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_sweep("quiet", {"a": lambda s: 1.0}, cfg)

    def test_picklable_parallel_does_not_warn(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_sweep(
                "pickl", {"a": partial(_linear_point, 1.0)}, cfg, workers=2
            )


class TestRunSweepParallel:
    def test_parallel_matches_sequential_synthetic(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2, 4, 8))
        configs = {
            "flat": partial(_linear_point, 0.0),
            "steep": partial(_linear_point, 3.0),
        }
        seq = run_sweep("exp", configs, cfg)
        par = run_sweep("exp", configs, cfg, workers=2)
        assert seq.to_json() == par.to_json()
        assert [r.sort_key() for r in seq] == [r.sort_key() for r in par]

    def test_nonpicklable_falls_back_in_process(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        calls = []

        def closure_point(size):
            calls.append(size)
            return float(size)

        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = run_sweep("exp", {"a": closure_point}, cfg, workers=2)
        assert calls == [1, 2], "fallback must run in this very process"
        assert results.point("a", 2) == 2.0

    def test_workers_from_config(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2), workers=2)
        results = run_sweep("exp", {"a": partial(_linear_point, 1.0)}, cfg)
        assert results.point("a", 2) == 3.0

    def test_workers_from_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        results = run_sweep("exp", {"a": partial(_linear_point, 1.0)}, cfg)
        assert len(results) == 2

    def test_nan_latency_rejected_with_location(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(8,))
        with pytest.raises(ValueError, match=r"'bad'.*size 8"):
            run_sweep("exp", {"bad": lambda s: math.nan}, cfg)

    def test_inf_latency_rejected(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(8,))
        with pytest.raises(ValueError, match="non-finite"):
            run_sweep("exp", {"bad": lambda s: math.inf}, cfg)

    def test_nan_rejected_on_parallel_path(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(8, 16))
        with pytest.raises(ValueError, match="non-finite"):
            run_sweep("exp", {"bad": partial(_linear_point, math.nan)}, cfg, workers=2)


class TestFigureDeterminism:
    """E-series sweeps: parallel must serialize byte-identically."""

    def test_fig3_parallel_identical(self):
        seq = locking.run_fig3(QUICK)
        par = locking.run_fig3(QUICK.with_workers(2))
        assert seq.to_json() == par.to_json()

    def test_fig7_parallel_identical(self):
        seq = waiting.run_fig7(QUICK)
        par = waiting.run_fig7(QUICK.with_workers(2))
        assert seq.to_json() == par.to_json()


class TestResultSetMerge:
    def test_merge_preserves_record_order(self):
        a = ResultSet(
            [
                ResultRecord("e", "c1", 1, 1.0),
                ResultRecord("e", "c1", 2, 2.0),
            ]
        )
        b = ResultSet([ResultRecord("e", "c2", 1, 3.0)])
        merged = ResultSet.merge([a, b])
        assert [(r.config, r.size) for r in merged] == [
            ("c1", 1),
            ("c1", 2),
            ("c2", 1),
        ]

    def test_merge_of_split_halves_roundtrips(self):
        records = [
            ResultRecord("e", c, s, float(s)) for c in ("a", "b") for s in (1, 2, 4)
        ]
        whole = ResultSet(records)
        halves = [ResultSet(records[:3]), ResultSet(records[3:])]
        assert ResultSet.merge(halves).to_json() == whole.to_json()

    def test_extend(self):
        rs = ResultSet()
        rs.extend([ResultRecord("e", "a", 1, 1.0)])
        assert len(rs) == 1

    def test_sorted_is_stable_on_grid_key(self):
        shuffled = ResultSet(
            [
                ResultRecord("e", "b", 2, 1.0),
                ResultRecord("e", "a", 2, 2.0),
                ResultRecord("e", "a", 1, 3.0),
                ResultRecord("e", "a", 1, 4.0),  # duplicate point keeps order
            ]
        )
        ordered = shuffled.sorted()
        assert [(r.config, r.size, r.latency_us) for r in ordered] == [
            ("a", 1, 3.0),
            ("a", 1, 4.0),
            ("a", 2, 2.0),
            ("b", 2, 1.0),
        ]
