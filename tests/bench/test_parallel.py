"""Tests for the parallel sweep runner (repro.bench.parallel).

The headline guarantee: a ``workers=2`` sweep returns a ResultSet with
the same records, in the same order, with the same JSON serialization as
the sequential sweep — parallelism is pure wall-clock optimisation.
"""

import math
from functools import partial

import pytest

from repro.bench import locking, waiting
from repro.bench.config import BenchConfig
from repro.bench.parallel import (
    WORKERS_ENV,
    points_picklable,
    resolve_workers,
)
from repro.bench.runner import run_sweep
from repro.util.records import ResultRecord, ResultSet

#: reduced sweep: enough sizes to exercise the grid, small enough for CI
QUICK = BenchConfig(iterations=8, warmup=2, sizes=(1, 64, 1024), jitter_ns=150)


def _linear_point(slope: float, size: int) -> float:
    """Module-level (hence picklable) fake measurement."""
    return slope * size + 1.0


class TestWorkerResolution:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers() == 5

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_config_validates_workers(self):
        with pytest.raises(ValueError):
            BenchConfig(workers=0)
        assert BenchConfig(workers=2).workers == 2
        assert BenchConfig().with_workers(4).workers == 4


class TestPicklability:
    def test_partials_over_module_functions_are_picklable(self):
        assert points_picklable({"a": partial(_linear_point, 2.0)})

    def test_lambdas_are_not(self):
        assert not points_picklable({"a": lambda size: 1.0})

    def test_extra_callback_participates(self):
        configs = {"a": partial(_linear_point, 2.0)}
        assert not points_picklable(configs, extra=lambda n, s: {})


class TestRunSweepParallel:
    def test_parallel_matches_sequential_synthetic(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2, 4, 8))
        configs = {
            "flat": partial(_linear_point, 0.0),
            "steep": partial(_linear_point, 3.0),
        }
        seq = run_sweep("exp", configs, cfg)
        par = run_sweep("exp", configs, cfg, workers=2)
        assert seq.to_json() == par.to_json()
        assert [r.sort_key() for r in seq] == [r.sort_key() for r in par]

    def test_nonpicklable_falls_back_in_process(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        calls = []

        def closure_point(size):
            calls.append(size)
            return float(size)

        results = run_sweep("exp", {"a": closure_point}, cfg, workers=2)
        assert calls == [1, 2], "fallback must run in this very process"
        assert results.point("a", 2) == 2.0

    def test_workers_from_config(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2), workers=2)
        results = run_sweep("exp", {"a": partial(_linear_point, 1.0)}, cfg)
        assert results.point("a", 2) == 3.0

    def test_workers_from_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        results = run_sweep("exp", {"a": partial(_linear_point, 1.0)}, cfg)
        assert len(results) == 2

    def test_nan_latency_rejected_with_location(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(8,))
        with pytest.raises(ValueError, match=r"'bad'.*size 8"):
            run_sweep("exp", {"bad": lambda s: math.nan}, cfg)

    def test_inf_latency_rejected(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(8,))
        with pytest.raises(ValueError, match="non-finite"):
            run_sweep("exp", {"bad": lambda s: math.inf}, cfg)

    def test_nan_rejected_on_parallel_path(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(8, 16))
        with pytest.raises(ValueError, match="non-finite"):
            run_sweep("exp", {"bad": partial(_linear_point, math.nan)}, cfg, workers=2)


class TestFigureDeterminism:
    """E-series sweeps: parallel must serialize byte-identically."""

    def test_fig3_parallel_identical(self):
        seq = locking.run_fig3(QUICK)
        par = locking.run_fig3(QUICK.with_workers(2))
        assert seq.to_json() == par.to_json()

    def test_fig7_parallel_identical(self):
        seq = waiting.run_fig7(QUICK)
        par = waiting.run_fig7(QUICK.with_workers(2))
        assert seq.to_json() == par.to_json()


class TestResultSetMerge:
    def test_merge_preserves_record_order(self):
        a = ResultSet(
            [
                ResultRecord("e", "c1", 1, 1.0),
                ResultRecord("e", "c1", 2, 2.0),
            ]
        )
        b = ResultSet([ResultRecord("e", "c2", 1, 3.0)])
        merged = ResultSet.merge([a, b])
        assert [(r.config, r.size) for r in merged] == [
            ("c1", 1),
            ("c1", 2),
            ("c2", 1),
        ]

    def test_merge_of_split_halves_roundtrips(self):
        records = [
            ResultRecord("e", c, s, float(s)) for c in ("a", "b") for s in (1, 2, 4)
        ]
        whole = ResultSet(records)
        halves = [ResultSet(records[:3]), ResultSet(records[3:])]
        assert ResultSet.merge(halves).to_json() == whole.to_json()

    def test_extend(self):
        rs = ResultSet()
        rs.extend([ResultRecord("e", "a", 1, 1.0)])
        assert len(rs) == 1

    def test_sorted_is_stable_on_grid_key(self):
        shuffled = ResultSet(
            [
                ResultRecord("e", "b", 2, 1.0),
                ResultRecord("e", "a", 2, 2.0),
                ResultRecord("e", "a", 1, 3.0),
                ResultRecord("e", "a", 1, 4.0),  # duplicate point keeps order
            ]
        )
        ordered = shuffled.sorted()
        assert [(r.config, r.size, r.latency_us) for r in ordered] == [
            ("a", 1, 3.0),
            ("a", 1, 4.0),
            ("a", 2, 2.0),
            ("b", 2, 1.0),
        ]
