"""Tests for the workload drivers (pingpong/overlap/affinity/lockcost)."""

import pytest

from repro.bench.affinity import dedicated_core_loss, dedicated_core_throughput
from repro.bench.lockcost import (
    lock_cycles_per_message,
    measure_contended_handoff_ns,
    measure_spin_cycle_ns,
)
from repro.bench.overlap import OFFLOAD_MODES, build_overlap_bed, run_overlap
from repro.bench.pingpong import PingPongResult, run_concurrent_pingpong, run_pingpong
from repro.core import build_testbed


class TestPingPongResult:
    def test_latency_is_half_mean_rtt(self):
        res = PingPongResult(size=8, rtts_ns=[100, 200, 300, 400], warmup=2)
        assert res.steady_rtts == [300, 400]
        assert res.latency_ns == 175.0

    def test_no_steady_iterations_rejected(self):
        res = PingPongResult(size=8, rtts_ns=[100], warmup=1)
        with pytest.raises(ValueError):
            _ = res.latency_ns


class TestRunPingpong:
    def test_records_requested_iterations(self):
        bed = build_testbed(policy="none")
        res = run_pingpong(bed, 16, iterations=5, warmup=1)
        assert len(res.rtts_ns) == 5
        assert res.size == 16

    def test_deterministic_across_builds(self):
        a = run_pingpong(build_testbed(policy="none"), 8, iterations=5, warmup=1)
        b = run_pingpong(build_testbed(policy="none"), 8, iterations=5, warmup=1)
        assert a.rtts_ns == b.rtts_ns

    def test_jitter_changes_samples(self):
        a = run_pingpong(build_testbed(policy="none"), 8, iterations=5, warmup=1)
        b = run_pingpong(
            build_testbed(policy="none", jitter_ns=200), 8, iterations=5, warmup=1
        )
        assert a.rtts_ns != b.rtts_ns

    def test_compute_phase_extends_rtt(self):
        plain = run_pingpong(build_testbed(policy="none"), 8, iterations=5, warmup=1)
        loaded = run_pingpong(
            build_testbed(policy="none"), 8, iterations=5, warmup=1, compute_ns=10_000
        )
        # 10 us of compute per side, partially overlapped with the wire:
        # at least a few extra microseconds of half-RTT remain
        assert loaded.latency_ns > plain.latency_ns + 2_000


class TestConcurrent:
    def test_flow_count(self):
        bed = build_testbed(policy="fine")
        flows = run_concurrent_pingpong(bed, 8, nflows=3, iterations=4, warmup=1)
        assert len(flows) == 3

    def test_too_many_flows_rejected(self):
        bed = build_testbed(policy="fine")
        with pytest.raises(ValueError):
            run_concurrent_pingpong(bed, 8, nflows=9)


class TestOverlap:
    def test_modes_list(self):
        assert OFFLOAD_MODES == ("inline", "idle-core", "tasklet")

    def test_overlap_includes_compute(self):
        bed = build_overlap_bed("inline")
        res = run_overlap(bed, 2048, compute_ns=10_000, iterations=4, warmup=1)
        assert res.latency_ns > 5_000  # at least the compute phase shows


class TestDedicatedCore:
    def test_loss_near_quarter(self):
        loss = dedicated_core_loss(duration_ns=400_000)
        assert 0.15 <= loss <= 0.35

    def test_throughput_positive(self):
        assert dedicated_core_throughput(dedicate=False, duration_ns=200_000) > 0


class TestLockcost:
    def test_spin_cycle_is_70ns(self):
        assert measure_spin_cycle_ns(500) == pytest.approx(70, abs=2)

    def test_contended_handoff_positive(self):
        assert measure_contended_handoff_ns(50) > 0

    @pytest.mark.parametrize(
        "policy,expected", [("none", 0), ("coarse", 2), ("fine", 3)]
    )
    def test_cycles_per_message(self, policy, expected):
        assert lock_cycles_per_message(policy) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_spin_cycle_ns(0)
        with pytest.raises(ValueError):
            measure_contended_handoff_ns(0)
