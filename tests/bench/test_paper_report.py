"""Unit tests for the paper-claim registry and report rendering."""

import pytest

from repro.bench.paper import CLAIMS, PaperClaim, claim
from repro.bench.report import figure_table, print_figure, verdict_block
from repro.util.records import ResultRecord, ResultSet


class TestClaims:
    def test_registry_covers_every_figure(self):
        experiments = {c.experiment for c in CLAIMS.values()}
        for figure in ("Figure 3", "Figure 5", "Figure 6", "Figure 7",
                       "Figure 8", "Figure 9"):
            assert any(figure in e for e in experiments), figure

    def test_check_inside_tolerance(self):
        c = PaperClaim("x", "Fig", "d", expected=100, tolerance=10)
        assert c.check(105)
        assert c.check(90)
        assert not c.check(111)

    def test_verdict_strings(self):
        c = PaperClaim("x", "Fig", "d", expected=100, tolerance=10)
        assert c.verdict(100).startswith("[OK ]")
        assert c.verdict(500).startswith("[OFF]")

    def test_lookup(self):
        assert claim("fig3-coarse-offset").expected == 140
        with pytest.raises(KeyError):
            claim("fig99")

    def test_paper_constants(self):
        assert claim("fig3-fine-offset").expected == 230
        assert claim("fig6-pioman-offset").expected == 200
        assert claim("fig7-passive-offset").expected == 750
        assert claim("fig8-shared-l2").expected == 400
        assert claim("fig8-no-shared-cache").expected == 1_200
        assert claim("fig8b-same-chip").expected == 2_300
        assert claim("fig8b-other-chip").expected == 3_100
        assert claim("fig9-tasklet-offset").expected == 2_000
        assert claim("text-spin-cycle").expected == 70
        assert claim("text-dedicated-core").expected == 0.25


def sample_results():
    rs = ResultSet()
    for config, base in (("none", 3.0), ("coarse", 3.14)):
        for size in (1, 1024):
            rs.add(ResultRecord("fig3", config, size, base + size / 10_000))
    return rs


class TestReport:
    def test_figure_table_layout(self):
        text = figure_table(sample_results(), title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "none" in lines[2] and "coarse" in lines[2]
        assert lines[4].startswith("1 ")
        assert lines[5].startswith("1K")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            figure_table(ResultSet(), title="T")

    def test_missing_point_dashed(self):
        rs = sample_results()
        rs.add(ResultRecord("fig3", "fine", 1, 3.2))  # only one size
        text = figure_table(rs, title="T")
        table_lines = [
            line for line in text.splitlines() if not line.startswith("!!")
        ]
        assert "-" in table_lines[-1]

    def test_missing_point_flagged_loudly(self):
        # a hole must never render as just a quiet dash: the footnote
        # names the exact missing cells
        rs = sample_results()
        rs.add(ResultRecord("fig3", "fine", 1, 3.2))  # fine@1K missing
        text = figure_table(rs, title="T")
        assert "!! INCOMPLETE SWEEP: 1 missing point(s)" in text
        assert "fine@1K" in text

    def test_complete_sweep_has_no_footnote(self):
        text = figure_table(sample_results(), title="T")
        assert "INCOMPLETE" not in text

    def test_many_holes_elided(self):
        rs = ResultSet()
        sizes = list(range(1, 12))
        for size in sizes:
            rs.add(ResultRecord("fig3", "a", size, 1.0))
        rs.add(ResultRecord("fig3", "b", 1, 1.0))  # b missing at 10 sizes
        text = figure_table(rs, title="T")
        assert "10 missing point(s)" in text
        assert text.rstrip().endswith("...")

    def test_missing_points_render_order(self):
        rs = sample_results()
        rs.add(ResultRecord("fig3", "fine", 1, 3.2))
        assert rs.missing_points() == [("fine", 1024)]
        assert sample_results().missing_points() == []

    def test_verdicts(self):
        c = claim("fig3-coarse-offset")
        block = verdict_block([(c, 140.0), (c, 999.0)])
        assert "[OK ]" in block and "[OFF]" in block

    def test_print_figure_returns_text(self, capsys):
        text = print_figure(sample_results(), title="T")
        out = capsys.readouterr().out
        assert text in out
