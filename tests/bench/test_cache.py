"""Tests for the incremental sweep cache (repro.bench.cache).

The headline guarantee mirrors the parallel runner's: caching is a pure
wall-clock optimisation.  A warm sweep serializes byte-identically
(JSON *and* CSV) to its cold run, invalidates on any source edit, seed
change or config change, refuses to serve corrupted entries, and replays
observation blobs such that a warm trace equals the cold one.
"""

import pickle
from functools import partial

import pytest

from repro.bench import cache as bench_cache
from repro.bench import locking
from repro.bench.cache import PointCache, point_key
from repro.bench.config import BenchConfig
from repro.bench.runner import run_sweep
from repro.util.records import ResultSet
from repro.workloads.matrix import run_scenario

QUICK = BenchConfig(iterations=6, warmup=2, sizes=(1, 256), jitter_ns=150)


def _linear_point(slope: float, size: int) -> float:
    """Module-level (hence fingerprintable) fake measurement."""
    return slope * size + 1.0


_COUNTER = []


def _counting_point(size: int) -> float:
    """Fake measurement that records every real invocation."""
    _COUNTER.append(size)
    return float(size)


@pytest.fixture
def warm_cache(monkeypatch):
    """Opt back into caching (the suite-wide conftest disables it); the
    store still lands in the per-test temporary directory."""
    monkeypatch.setenv(bench_cache.CACHE_ENV, "1")
    _COUNTER.clear()
    yield
    _COUNTER.clear()


class TestEnabled:
    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv(bench_cache.CACHE_ENV, raising=False)
        assert bench_cache.enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", "OFF"])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(bench_cache.CACHE_ENV, value)
        assert not bench_cache.enabled()

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(bench_cache.CACHE_ENV, "0")
        assert bench_cache.enabled(True)
        monkeypatch.setenv(bench_cache.CACHE_ENV, "1")
        assert not bench_cache.enabled(False)


class TestPointKey:
    def _key(self, **kw):
        args = dict(
            fn=partial(_linear_point, 2.0),
            experiment="exp",
            config="a",
            size=8,
            cfg=QUICK,
            obs_spec=None,
        )
        args.update(kw)
        return point_key(**args)

    def test_stable_across_calls(self):
        assert self._key() == self._key()

    def test_size_splits_keys(self):
        assert self._key(size=8) != self._key(size=16)

    def test_partial_args_split_keys(self):
        assert self._key() != self._key(fn=partial(_linear_point, 3.0))

    def test_seed_splits_keys(self):
        import dataclasses

        other = dataclasses.replace(QUICK, seed=7)
        assert self._key() != self._key(cfg=other)

    def test_config_change_splits_keys(self):
        import dataclasses

        other = dataclasses.replace(QUICK, iterations=12)
        assert self._key() != self._key(cfg=other)

    def test_workers_and_cache_and_sizes_do_not_split_keys(self):
        """Execution-only knobs must hit the same entries."""
        import dataclasses

        for variant in (
            dataclasses.replace(QUICK, workers=8),
            dataclasses.replace(QUICK, cache=True),
            dataclasses.replace(QUICK, sizes=(1, 2, 4)),
        ):
            assert self._key() == self._key(cfg=variant)

    def test_embedded_benchconfig_normalized(self):
        """A BenchConfig bound inside the partial (the figure idiom) is
        normalized the same way as the sweep config."""
        fn_seq = partial(_linear_point, 2.0, cfg=QUICK)
        fn_par = partial(_linear_point, 2.0, cfg=QUICK.with_workers(8))
        assert self._key(fn=fn_seq) == self._key(fn=fn_par)

    def test_obs_spec_splits_keys(self):
        assert self._key() != self._key(obs_spec=("obs", True, 1000))

    def test_source_edit_invalidates(self, monkeypatch):
        before = self._key()
        monkeypatch.setattr(
            bench_cache, "package_digest", lambda: "0" * 64
        )
        assert self._key() != before

    def test_unfingerprintable_returns_none(self):
        assert self._key(fn=lambda s: 1.0) is None

        def closure(size):
            return 1.0

        assert self._key(fn=closure) is None

    def test_package_digest_covers_every_module(self):
        digests = bench_cache.module_digests()
        assert "bench/cache.py" in digests
        assert "sim/engine.py" in digests
        assert all(len(d) == 64 for d in digests.values())


class TestStoreRoundTrip:
    def test_put_get(self, tmp_path):
        store = PointCache(tmp_path / "c")
        store.put("ab" * 32, latency_us=3.5, meta={"experiment": "e"})
        entry = store.get("ab" * 32)
        assert entry["latency_us"] == 3.5
        assert entry["capture"] is None

    def test_absent_is_miss(self, tmp_path):
        bench_cache.reset_stats()
        store = PointCache(tmp_path / "c")
        assert store.get("cd" * 32) is None
        assert bench_cache.stats().misses == 1

    def test_need_capture_refuses_blind_entry(self, tmp_path):
        """An entry recorded without observation must not satisfy an
        observed run — the trace would silently vanish."""
        store = PointCache(tmp_path / "c")
        store.put("ef" * 32, latency_us=1.0, capture=None)
        assert store.get("ef" * 32, need_capture=True) is None
        assert store.get("ef" * 32) is not None

    def test_corrupted_entry_discarded_loudly(self, tmp_path):
        bench_cache.reset_stats()
        store = PointCache(tmp_path / "c")
        key = "12" * 32
        store.put(key, latency_us=1.0)
        path = store._entry_path(key)
        path.write_bytes(b"\x80garbage not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupted sweep-cache"):
            assert store.get(key) is None
        assert bench_cache.stats().invalidations == 1
        assert not path.exists(), "corrupted entry must be deleted"

    def test_wrong_format_discarded_loudly(self, tmp_path):
        store = PointCache(tmp_path / "c")
        key = "34" * 32
        store.put(key, latency_us=1.0)
        path = store._entry_path(key)
        path.write_bytes(pickle.dumps({"format": 999, "latency_us": 1.0}))
        with pytest.warns(RuntimeWarning, match="corrupted"):
            assert store.get(key) is None

    def test_index_flush_and_maintenance(self, tmp_path):
        store = PointCache(tmp_path / "c")
        store.put("56" * 32, latency_us=1.0, meta={"experiment": "e"})
        store.flush_index()
        import json

        index = json.loads(store.index_path.read_text())
        assert index["56" * 32]["experiment"] == "e"
        assert store.entry_count() == 1
        assert store.disk_bytes() > 0
        assert store.clear() == 1
        assert store.entry_count() == 0

    def test_cli_stats_and_clear(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(bench_cache.CACHE_DIR_ENV, str(tmp_path / "c"))
        store = PointCache()
        store.put("78" * 32, latency_us=1.0)
        assert bench_cache.main(["stats"]) == 0
        assert "entries:    1" in capsys.readouterr().out
        assert bench_cache.main(["clear"]) == 0
        assert store.entry_count() == 0


class TestRunSweepCaching:
    def test_warm_run_skips_measurement(self, warm_cache):
        configs = {"a": partial(_counting_point)}
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2, 4))
        cold = run_sweep("exp", configs, cfg)
        assert _COUNTER == [1, 2, 4]
        warm = run_sweep("exp", configs, cfg)
        assert _COUNTER == [1, 2, 4], "warm run must not re-measure"
        assert cold.to_json() == warm.to_json()

    def test_cache_off_measures_every_time(self, warm_cache):
        configs = {"a": partial(_counting_point)}
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2), cache=False)
        run_sweep("exp", configs, cfg)
        run_sweep("exp", configs, cfg)
        assert _COUNTER == [1, 2, 1, 2]

    def test_unfingerprintable_points_always_measured(self, warm_cache):
        calls = []

        def closure_point(size):
            calls.append(size)
            return float(size)

        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        run_sweep("exp", {"a": closure_point}, cfg)
        run_sweep("exp", {"a": closure_point}, cfg)
        assert calls == [1, 2, 1, 2]

    def test_seed_change_misses(self, warm_cache):
        import dataclasses

        configs = {"a": partial(_counting_point)}
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1,))
        run_sweep("exp", configs, cfg)
        run_sweep("exp", configs, dataclasses.replace(cfg, seed=9))
        assert _COUNTER == [1, 1]

    def test_source_edit_invalidates_warm_run(self, warm_cache, monkeypatch):
        configs = {"a": partial(_counting_point)}
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2))
        run_sweep("exp", configs, cfg)
        monkeypatch.setattr(
            bench_cache, "package_digest", lambda: "f" * 64
        )
        run_sweep("exp", configs, cfg)
        assert _COUNTER == [1, 2, 1, 2], "source edit must invalidate"

    def test_corrupted_entry_recomputed(self, warm_cache):
        configs = {"a": partial(_counting_point)}
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1,))
        run_sweep("exp", configs, cfg)
        store = PointCache()
        objects = store.root / "objects"
        entries = list(objects.rglob("*.pkl"))
        assert len(entries) == 1
        entries[0].write_bytes(b"junk")
        with pytest.warns(RuntimeWarning, match="corrupted"):
            warm = run_sweep("exp", configs, cfg)
        assert _COUNTER == [1, 1], "corrupted entry must be recomputed"
        assert warm.point("a", 1) == 1.0

    def test_parallel_cold_then_sequential_warm(self, warm_cache):
        configs = {
            "flat": partial(_linear_point, 0.0),
            "steep": partial(_linear_point, 3.0),
        }
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2, 4, 8))
        cold = run_sweep("exp", configs, cfg, workers=2)
        before = bench_cache.stats()
        warm = run_sweep("exp", configs, cfg)
        delta = bench_cache.stats().delta(before)
        assert cold.to_json() == warm.to_json()
        assert delta.hits == 8 and delta.misses == 0


class TestFigureAndWorkloadWarmRuns:
    """Satellite: warm-vs-cold byte-identical JSON/CSV for a real figure
    sweep and a real workload scenario."""

    def test_fig3_warm_byte_identical(self, warm_cache):
        cold = locking.run_fig3(QUICK)
        before = bench_cache.stats()
        warm = locking.run_fig3(QUICK)
        delta = bench_cache.stats().delta(before)
        assert delta.misses == 0 and delta.hits == len(cold)
        assert cold.to_json() == warm.to_json()
        assert cold.to_csv() == warm.to_csv()
        assert cold.digest() == warm.digest()

    def test_stencil_warm_byte_identical(self, warm_cache):
        cold = run_scenario("stencil", quick=True)
        before = bench_cache.stats()
        warm = run_scenario("stencil", quick=True)
        delta = bench_cache.stats().delta(before)
        assert delta.misses == 0 and delta.hits == len(cold)
        assert cold.to_json() == warm.to_json()
        assert cold.to_csv() == warm.to_csv()

    def test_stencil_seed_change_recomputes(self, warm_cache):
        run_scenario("stencil", quick=True, seed=0)
        before = bench_cache.stats()
        run_scenario("stencil", quick=True, seed=1)
        assert bench_cache.stats().delta(before).hits == 0

    def test_fig3_warm_across_worker_counts(self, warm_cache):
        cold = locking.run_fig3(QUICK)
        for workers in (2, 4):
            warm = locking.run_fig3(QUICK.with_workers(workers))
            assert warm.to_json() == cold.to_json()


class TestObservationRoundTrip:
    """Capture blobs must round-trip through the cache: a warm observed
    run replays the very blobs its cold run serialized."""

    def test_warm_trace_equals_cold_trace(self, warm_cache):
        from repro.obs import capture as obs_capture

        with obs_capture.observe(trace=True) as cold_obs:
            cold = locking.run_fig3(QUICK)
        with obs_capture.observe(trace=True) as warm_obs:
            warm = locking.run_fig3(QUICK)
        assert cold.to_json() == warm.to_json()
        assert cold_obs.serialize() == warm_obs.serialize()
        assert warm_obs.event_count() == cold_obs.event_count() > 0

    def test_blind_entries_do_not_serve_observed_runs(self, warm_cache):
        from repro.obs import capture as obs_capture

        locking.run_fig3(QUICK)  # cold, unobserved
        before = bench_cache.stats()
        with obs_capture.observe(trace=True) as obs:
            locking.run_fig3(QUICK)
        delta = bench_cache.stats().delta(before)
        assert delta.hits == 0, "unobserved entries must not serve traces"
        assert obs.event_count() > 0

    def test_malformed_blob_rejected_by_absorb(self):
        from repro.obs.capture import Observation

        obs = Observation()
        with pytest.raises(ValueError, match="malformed"):
            obs.absorb({"captures": [{"no-machines": True}]})
        with pytest.raises(ValueError, match="malformed"):
            obs.absorb("not a dict")


class TestResultSetDigest:
    def test_digest_matches_manual_sha(self):
        import hashlib

        rs = ResultSet()
        assert (
            rs.digest()
            == hashlib.sha256(rs.to_json().encode("utf-8")).hexdigest()
        )
