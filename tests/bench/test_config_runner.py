"""Unit tests for the bench configuration and sweep runner."""

import pytest

from repro.bench.config import OVERLAP_SIZES, PAPER_SIZES, BenchConfig
from repro.bench.runner import run_sweep


class TestBenchConfig:
    def test_paper_sizes_match_figure_axes(self):
        assert PAPER_SIZES[0] == 1
        assert PAPER_SIZES[-1] == 2048
        assert len(PAPER_SIZES) == 12  # 1,2,4,...,2K

    def test_overlap_sizes(self):
        assert OVERLAP_SIZES == (2048, 4096, 8192, 16384, 32768)

    def test_defaults_valid(self):
        cfg = BenchConfig()
        assert cfg.warmup < cfg.iterations

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchConfig(iterations=0)
        with pytest.raises(ValueError):
            BenchConfig(iterations=4, warmup=4)
        with pytest.raises(ValueError):
            BenchConfig(sizes=())

    def test_quick(self):
        cfg = BenchConfig.quick()
        assert cfg.iterations == 6

    def test_with_sizes_parses_specs(self):
        cfg = BenchConfig().with_sizes(["1K", 64, "2K"])
        assert cfg.sizes == (1024, 64, 2048)


class TestRunSweep:
    def test_grid_is_complete(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1, 2, 4))
        calls = []

        def fake(size):
            calls.append(size)
            return float(size)

        results = run_sweep("exp", {"a": fake, "b": fake}, cfg)
        assert len(results) == 6
        assert results.point("a", 2) == 2.0
        assert calls == [1, 2, 4, 1, 2, 4]

    def test_extra_callback(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(8,))
        results = run_sweep(
            "exp",
            {"a": lambda s: 1.0},
            cfg,
            extra=lambda name, size: {"config": name, "sz": size},
        )
        assert results[0].extra == {"config": "a", "sz": 8}

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("exp", {}, BenchConfig.quick())

    def test_negative_latency_rejected(self):
        cfg = BenchConfig(iterations=2, warmup=1, sizes=(1,))
        with pytest.raises(ValueError):
            run_sweep("exp", {"bad": lambda s: -1.0}, cfg)
