"""Unit tests for the extension measurement modules
(technologies / collectives / bandwidth)."""

import pytest

from repro.bench.bandwidth import run_bandwidth_sweep, stream_bandwidth_mbps
from repro.bench.collectives import COLLECTIVES, collective_time_us, run_collective_scaling
from repro.bench.config import BenchConfig
from repro.bench.technologies import (
    TECHNOLOGIES,
    locking_impact_by_technology,
    run_technology_sweep,
    technology_latency,
)

QUICK = BenchConfig(iterations=6, warmup=2, sizes=(8, 1024))


class TestTechnologies:
    def test_registry(self):
        assert set(TECHNOLOGIES) == {"mx", "ib", "tcp"}

    def test_unknown_technology(self):
        with pytest.raises(ValueError):
            technology_latency("carrier-pigeon", 8, QUICK)

    def test_single_point(self):
        lat = technology_latency("mx", 8, QUICK)
        assert 1.0 < lat < 10.0

    def test_sweep_grid(self):
        results = run_technology_sweep(QUICK)
        assert sorted(results.configs()) == ["ib", "mx", "tcp"]
        assert results.sizes() == [8, 1024]

    def test_locking_impact_fractions(self):
        impact = locking_impact_by_technology(QUICK, size=8)
        assert set(impact) == set(TECHNOLOGIES)
        for tech, frac in impact.items():
            assert -0.1 < frac < 0.5, tech


class TestCollectives:
    def test_registry(self):
        assert "barrier" in COLLECTIVES and "allreduce" in COLLECTIVES

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            collective_time_us("tea-break", 2)

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            collective_time_us("barrier", 2, rounds=2, warmup=2)

    def test_single_measurement(self):
        us = collective_time_us("barrier", 2, rounds=4, warmup=1)
        assert us > 0

    def test_scaling_grid(self):
        results = run_collective_scaling((2, 3))
        assert set(results.configs()) == set(COLLECTIVES)
        assert results.sizes() == [2, 3]

    def test_barrier_grows_with_ranks(self):
        two = collective_time_us("barrier", 2, rounds=4, warmup=1)
        six = collective_time_us("barrier", 6, rounds=4, warmup=1)
        assert six > two


class TestBandwidth:
    def test_validation(self):
        with pytest.raises(ValueError):
            stream_bandwidth_mbps("none", 4096, messages=0)
        with pytest.raises(ValueError):
            stream_bandwidth_mbps("none", 4096, window=0)

    def test_window_pipelines(self):
        """A deeper window must not be slower than window=1."""
        serial = stream_bandwidth_mbps("none", 64 * 1024, messages=8, window=1)
        piped = stream_bandwidth_mbps("none", 64 * 1024, messages=8, window=4)
        assert piped >= serial * 0.95

    def test_bandwidth_grows_with_size(self):
        small = stream_bandwidth_mbps("none", 1024, messages=8)
        big = stream_bandwidth_mbps("none", 128 * 1024, messages=8)
        assert big > small

    def test_sweep_units(self):
        cfg = BenchConfig(iterations=4, warmup=1, sizes=(4096, 65536))
        results = run_bandwidth_sweep(cfg, policies=("none",))
        assert all(r.extra["unit"] == "MB/s" for r in results)
        assert len(results) == 2
