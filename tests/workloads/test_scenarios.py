"""Every scenario completes under every mechanism, deterministically.

This is the acceptance sweep in test form: all five scenarios run under
every locking policy × waiting strategy (× progression) combination of
the *full* grid without deadlocking, and a scenario point is a pure
function of (mechanism, variant, seed, size).
"""

import pytest

from repro.workloads import registry
from repro.workloads.base import mechanism_grid
from repro.workloads.bursty import make_schedule

FULL_GRID = [m.key for m in mechanism_grid("full")]


def scenario_cases():
    for name in registry.names():
        sc = registry.get(name)
        for variant in sc.variants:
            yield name, variant


@pytest.mark.parametrize("mech_key", FULL_GRID)
@pytest.mark.parametrize("name,variant", list(scenario_cases()))
def test_every_scenario_every_mechanism(name, variant, mech_key):
    sc = registry.get(name)
    size = sc.quick_sizes[0]
    makespan = sc.point(mech_key, variant, 0, size)
    assert makespan > 0.0


@pytest.mark.parametrize("name,variant", list(scenario_cases()))
def test_points_are_deterministic(name, variant):
    sc = registry.get(name)
    size = sc.quick_sizes[-1]
    a = sc.point("fine/busy/inline", variant, 3, size)
    b = sc.point("fine/busy/inline", variant, 3, size)
    assert a == b


def test_seed_changes_the_bursty_schedule():
    a = make_schedule(0, nodes=2, threads=2, messages=4)
    b = make_schedule(0, nodes=2, threads=2, messages=4)
    c = make_schedule(1, nodes=2, threads=2, messages=4)
    assert a == b
    assert a != c


def test_bursty_schedule_shape():
    sched = make_schedule(0, nodes=3, threads=2, messages=5)
    assert sorted(sched) == [
        (node, t) for node in range(3) for t in range(2)
    ]
    for (node, _t), msgs in sched.items():
        assert len(msgs) == 5
        for wait_ns, dest, size in msgs:
            assert wait_ns >= 0
            assert 0 <= dest < 3 and dest != node
            assert 1 <= size <= 64 * 1024


def test_registry_lists_the_five_scenarios():
    assert registry.names() == [
        "bursty",
        "collectives",
        "fanin",
        "pipeline",
        "stencil",
    ]


def test_registry_unknown_scenario():
    with pytest.raises(KeyError, match="unknown scenario"):
        registry.get("warpdrive")


def test_register_collision_rejected():
    sc = registry.get("stencil")
    clone = registry.Scenario(
        name="stencil",
        title=sc.title,
        description=sc.description,
        axis=sc.axis,
        sizes=sc.sizes,
        quick_sizes=sc.quick_sizes,
        point=sc.point,
        variants=sc.variants,
    )
    with pytest.raises(ValueError, match="already registered"):
        registry.register(clone)
    registry.register(sc)  # re-registering the same object is fine


def test_scenario_validation():
    with pytest.raises(ValueError, match="sizes"):
        registry.Scenario(
            name="x", title="x", description="x", axis="x",
            sizes=(), quick_sizes=(1,), point=lambda *a: 0.0,
        )
    with pytest.raises(ValueError, match="variant"):
        registry.Scenario(
            name="x", title="x", description="x", axis="x",
            sizes=(1,), quick_sizes=(1,), point=lambda *a: 0.0,
            variants=(),
        )


def test_sweep_sizes_quick_switch():
    sc = registry.get("stencil")
    assert sc.sweep_sizes(True) == sc.quick_sizes
    assert sc.sweep_sizes(False) == sc.sizes
    assert set(sc.quick_sizes) <= set(sc.sizes)
