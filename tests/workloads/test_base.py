"""Unit tests for the workload mechanism space and runner."""

import pytest

from repro.madmpi import ThreadLevel
from repro.sim.process import Delay
from repro.workloads.base import (
    PROGRESSION_MODES,
    WAIT_FACTORIES,
    WORKLOAD_POLICIES,
    Mechanism,
    WorkloadError,
    build_workload_bed,
    mechanism_grid,
    run_workload,
)


class TestMechanism:
    def test_key_parse_roundtrip(self):
        m = Mechanism("fine", "passive", "idle")
        assert m.key == "fine/passive/idle"
        assert Mechanism.parse(m.key) == m

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Mechanism.parse("fine/busy")

    def test_unknown_waiting_rejected(self):
        with pytest.raises(ValueError):
            Mechanism("fine", "nap", "inline")

    def test_unknown_progression_rejected(self):
        with pytest.raises(ValueError):
            Mechanism("fine", "busy", "dma")

    def test_validity(self):
        assert Mechanism("fine", "busy", "inline").valid()
        assert Mechanism("fine", "busy", "idle").valid()
        # PIOMan strategies need someone to poll for them
        for waiting in ("pioman", "passive", "fixed-spin"):
            assert not Mechanism("fine", waiting, "inline").valid()
            assert Mechanism("fine", waiting, "idle").valid()
            assert Mechanism("fine", waiting, "timer").valid()


class TestMechanismGrid:
    def test_standard_grid(self):
        mechs = mechanism_grid("standard")
        assert len(mechs) == len(WORKLOAD_POLICIES) * len(WAIT_FACTORIES)
        assert all(m.valid() for m in mechs)
        assert len({m.key for m in mechs}) == len(mechs)

    def test_full_grid_is_every_valid_combination(self):
        mechs = mechanism_grid("full")
        expect = [
            Mechanism(p, w, pr)
            for p in WORKLOAD_POLICIES
            for w in sorted(WAIT_FACTORIES)
            for pr in PROGRESSION_MODES
            if Mechanism(p, w, pr).valid()
        ]
        assert mechs == expect
        assert len(mechs) == 18

    def test_standard_is_subset_of_full(self):
        assert set(mechanism_grid("standard")) <= set(mechanism_grid("full"))

    def test_unknown_grid_rejected(self):
        with pytest.raises(ValueError):
            mechanism_grid("exhaustive")


def pingpong_rank(comm):
    other = 1 - comm.rank
    for i in range(3):
        if comm.rank == 0:
            yield from comm.send(("ping", i), other, tag=i)
            yield from comm.recv(other, tag=i)
        else:
            yield from comm.recv(other, tag=i)
            yield from comm.send(("pong", i), other, tag=i)
    return comm.rank


class TestRunWorkload:
    def test_completes_and_times(self):
        run = run_workload("fine/busy/inline", pingpong_rank, nodes=2)
        assert run.makespan_us > 0
        assert run.events_run > 0
        assert run.results == [0, 1]

    def test_invalid_mechanism_raises(self):
        with pytest.raises(WorkloadError, match="needs"):
            build_workload_bed(
                Mechanism("fine", "passive", "inline"), nodes=2
            )

    def test_deadlock_names_stuck_ranks(self):
        def stuck(comm):
            if comm.rank == 1:
                yield from comm.recv(0, tag=7)  # nobody ever sends
            else:
                yield Delay(1_000)

        with pytest.raises(WorkloadError, match="rank1"):
            run_workload(
                "fine/busy/inline", stuck, nodes=2, max_time_ns=50_000_000
            )

    def test_thread_level_is_configurable(self):
        run = run_workload(
            "coarse/busy/inline",
            pingpong_rank,
            nodes=2,
            thread_level=ThreadLevel.FUNNELED,
        )
        assert run.results == [0, 1]
