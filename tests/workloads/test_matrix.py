"""Sweep determinism and the mechanism-matrix report."""

import pytest

from repro.util.records import ResultRecord, ResultSet
from repro.workloads.base import Mechanism, mechanism_grid
from repro.workloads.matrix import (
    config_label,
    mechanism_matrix,
    missing_point_count,
    rank_mechanisms,
    ranking_block,
    run_scenario,
    scenario_report,
)
from repro.workloads.registry import get


def rec(config, size, lat):
    return ResultRecord(
        experiment="workload-x", config=config, size=size, latency_us=lat,
        extra={"axis": "bytes"},
    )


def test_config_label():
    mech = Mechanism("fine", "busy", "inline")
    assert config_label(mech, "") == "fine/busy/inline"
    assert config_label(mech, "funneled") == "fine/busy/inline [funneled]"


class TestRunScenario:
    def test_quick_sweep_covers_the_grid(self):
        results = run_scenario("fanin", quick=True)
        sc = get("fanin")
        assert results.configs() == [
            m.key for m in mechanism_grid("standard")
        ]
        assert tuple(results.sizes()) == sc.quick_sizes
        assert results.missing_points() == []

    def test_same_seed_byte_identical(self):
        a = run_scenario("fanin", quick=True, seed=5)
        b = run_scenario("fanin", quick=True, seed=5)
        assert a.to_json() == b.to_json()

    def test_workers_match_sequential(self):
        seq = run_scenario("fanin", quick=True, seed=1)
        par = run_scenario("fanin", quick=True, seed=1, workers=2)
        assert seq.to_json() == par.to_json()

    def test_variants_become_their_own_series(self):
        results = run_scenario("pipeline", quick=True)
        labels = results.configs()
        assert any(label.endswith("[funneled]") for label in labels)
        assert any(label.endswith("[multiple]") for label in labels)
        assert len(labels) == 2 * len(mechanism_grid("standard"))


class TestReports:
    def test_rank_mechanisms_orders_by_mean(self):
        rs = ResultSet([
            rec("slow", 1, 10.0), rec("slow", 2, 20.0),
            rec("fast", 1, 1.0), rec("fast", 2, 2.0),
        ])
        assert rank_mechanisms(rs) == [("fast", 1.5), ("slow", 15.0)]

    def test_rank_mechanisms_tie_breaks_on_label(self):
        rs = ResultSet([rec("b", 1, 5.0), rec("a", 1, 5.0)])
        assert [c for c, _ in rank_mechanisms(rs)] == ["a", "b"]

    def test_ranking_block_mentions_slowdown(self):
        rs = ResultSet([rec("fast", 1, 2.0), rec("slow", 1, 3.0)])
        block = ranking_block(rs)
        assert "1. fast" in block.replace("  ", " ")
        assert "(1.50x)" in block

    def test_scenario_report_and_matrix(self):
        results = run_scenario("fanin", quick=True)
        report = scenario_report(get("fanin"), results)
        assert "Workload: fanin" in report
        assert "mechanism ranking" in report

        matrix = mechanism_matrix({"fanin": results})
        assert "Workload: fanin" in matrix
        # a single scenario has no cross-scenario win table
        assert "wins across scenarios" not in matrix

    def test_matrix_win_table_for_multiple_scenarios(self):
        rs1 = ResultSet([rec("a/busy/inline", 1, 1.0), rec("b/busy/inline", 1, 2.0)])
        rs2 = ResultSet([rec("a/busy/inline [v]", 1, 1.0), rec("b/busy/inline", 1, 2.0)])
        with pytest.raises(KeyError):
            mechanism_matrix({"nope": rs1})  # unknown scenarios fail loudly
        matrix = mechanism_matrix({"fanin": rs1, "stencil": rs2})
        assert "mechanism wins across scenarios:" in matrix
        # the variant's win is credited to its mechanism
        assert "a/busy/inline" in matrix.split("wins across scenarios:")[1]

    def test_missing_point_count(self):
        full = ResultSet([rec("a", 1, 1.0), rec("a", 2, 1.0)])
        holey = ResultSet([rec("a", 1, 1.0), rec("a", 2, 1.0), rec("b", 1, 1.0)])
        assert missing_point_count({"fanin": full}) == 0
        assert missing_point_count({"fanin": full, "stencil": holey}) == 1
