"""End-to-end tests of ``python -m repro.workloads``."""

import json

import pytest

from repro.obs.chrometrace import validate_trace
from repro.util.records import ResultSet
from repro.workloads.cli import main


def test_list_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("stencil", "bursty", "fanin", "pipeline", "collectives"):
        assert name in out


def test_unknown_scenario_fails_fast():
    with pytest.raises(KeyError, match="unknown scenario"):
        main(["--scenario", "warpdrive", "--quick", "--no-save"])


def test_single_scenario_no_save(capsys):
    assert main(["--scenario", "fanin", "--quick", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Workload: fanin" in out
    assert "mechanism ranking" in out
    assert "wrote:" not in out
    assert "INCOMPLETE" not in out


def test_saves_json_csv_and_matrix(tmp_path, capsys):
    out_dir = str(tmp_path / "wl")
    assert main(
        ["--scenario", "fanin", "--quick", "--out-dir", out_dir]
    ) == 0
    capsys.readouterr()

    results = ResultSet.load(str(tmp_path / "wl" / "fanin.json"))
    assert len(results) > 0
    assert results.missing_points() == []

    with open(str(tmp_path / "wl" / "fanin.csv"), encoding="utf-8") as fh:
        assert fh.read() == results.to_csv()

    with open(str(tmp_path / "wl" / "matrix.txt"), encoding="utf-8") as fh:
        assert "mechanism ranking" in fh.read()


def test_deterministic_output_files(tmp_path, capsys):
    dirs = [str(tmp_path / "a"), str(tmp_path / "b")]
    for out_dir in dirs:
        assert main(
            ["--scenario", "fanin", "--quick", "--seed", "7",
             "--out-dir", out_dir, "--workers", "2"]
        ) == 0
    capsys.readouterr()
    blobs = []
    for out_dir in dirs:
        with open(f"{out_dir}/fanin.json", "rb") as fh:
            blobs.append(fh.read())
    assert blobs[0] == blobs[1]


@pytest.mark.slow
def test_trace_and_metrics(tmp_path, capsys):
    trace_path = str(tmp_path / "wl-trace.json")
    assert main(
        ["--scenario", "fanin", "--quick", "--no-save",
         "--trace", trace_path, "--metrics"]
    ) == 0
    out = capsys.readouterr().out
    assert "trace:" in out

    with open(trace_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert validate_trace(doc) == []
    assert doc["traceEvents"]
