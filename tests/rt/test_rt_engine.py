"""Live-engine tests: correctness under real threads.

Performance assertions are deliberately loose — wall-clock numbers on a
shared CI box are noisy; correctness (matching, payloads, thread safety
under the locked policies) is what these tests pin down.
"""

import threading

import pytest

from repro.rt import (
    LoopbackLink,
    ProgressionThread,
    build_rt_pair,
    make_rt_policy,
    rt_lock_overhead_ns,
    rt_pingpong,
    spin_until,
    timer_overhead_ns,
)


class TestLoopbackLink:
    def test_fifo_delivery(self):
        link = LoopbackLink()
        link.send(0, "a")
        link.send(0, "b")
        assert link.poll(1) == "a"
        assert link.poll(1) == "b"
        assert link.poll(1) is None

    def test_directions_independent(self):
        link = LoopbackLink()
        link.send(0, "to-1")
        link.send(1, "to-0")
        assert link.poll(0) == "to-0"
        assert link.poll(1) == "to-1"

    def test_latency_gates_visibility(self):
        link = LoopbackLink(latency_ns=50_000_000)  # 50 ms
        link.send(0, "slow")
        assert link.poll(1) is None  # not visible yet
        assert link.pending(1) == 1

    def test_bad_endpoint(self):
        link = LoopbackLink()
        with pytest.raises(ValueError):
            link.send(2, "x")
        with pytest.raises(ValueError):
            link.poll(-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LoopbackLink(latency_ns=-1)


class TestRTLibraryBasics:
    def test_send_then_recv(self):
        a, b = build_rt_pair()
        a.isend(tag=1, size=8, payload="hello")
        req = b.irecv(tag=1)
        assert spin_until(lambda: b.progress() or req.done)
        assert req.done
        assert req.payload == "hello"

    def test_unexpected_then_post(self):
        a, b = build_rt_pair()
        a.isend(tag=5, size=8, payload="early")
        assert spin_until(lambda: b.progress())  # stashes as unexpected
        req = b.irecv(tag=5)
        assert req.done
        assert req.payload == "early"
        assert b.unexpected_hits == 1

    def test_tag_matching(self):
        a, b = build_rt_pair()
        a.isend(tag=1, size=8, payload="one")
        a.isend(tag=2, size=8, payload="two")
        r2 = b.irecv(tag=2)
        r1 = b.irecv(tag=1)
        while not (r1.done and r2.done):
            b.progress()
        assert r1.payload == "one"
        assert r2.payload == "two"

    def test_send_completes_locally(self):
        a, _ = build_rt_pair()
        req = a.isend(tag=0, size=4)
        assert req.done

    def test_wait_busy_timeout(self):
        _, b = build_rt_pair()
        req = b.irecv(tag=9)
        with pytest.raises(TimeoutError):
            b.wait(req, mode="busy", timeout_s=0.05)

    def test_bad_wait_mode(self):
        _, b = build_rt_pair()
        req = b.irecv(tag=9)
        with pytest.raises(ValueError):
            b.wait(req, mode="telepathy")


class TestProgressionThread:
    def test_passive_wait_via_progression(self):
        a, b = build_rt_pair()
        prog = ProgressionThread(b).start()
        try:
            req = b.irecv(tag=3)
            a.isend(tag=3, size=16, payload="bg")
            b.wait(req, mode="passive", timeout_s=10)
            assert req.payload == "bg"
        finally:
            prog.stop()

    def test_stop_is_clean(self):
        a, b = build_rt_pair()
        prog = ProgressionThread(b).start()
        prog.stop()  # no deadlock, no exception


class TestPingpong:
    @pytest.mark.parametrize("policy", ["none", "coarse", "fine"])
    def test_messages_flow_under_each_policy(self, policy):
        rtts = rt_pingpong(policy, iterations=60, warmup=10)
        assert len(rtts) == 50
        assert all(r > 0 for r in rtts)

    def test_passive_mode(self):
        rtts = rt_pingpong("fine", iterations=40, warmup=10, mode="passive")
        assert len(rtts) == 30

    def test_fixed_mode(self):
        rtts = rt_pingpong("coarse", iterations=40, warmup=10, mode="fixed")
        assert len(rtts) == 30

    def test_emulated_wire_latency_visible(self):
        fast = sorted(rt_pingpong("none", iterations=40, warmup=10))
        slow = sorted(
            rt_pingpong("none", iterations=40, warmup=10, wire_latency_ns=200_000)
        )
        # 200 us of emulated one-way latency must dominate: compare medians
        assert slow[len(slow) // 2] > fast[len(fast) // 2] + 300_000

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            rt_pingpong("none", iterations=5, warmup=10)


class TestLockInstrumentation:
    def test_lock_counts(self):
        pol = make_rt_policy("fine")
        with pol.collect_lock():
            pass
        assert pol.lock_objects()[0].acquisitions == 1

    def test_contention_detected(self):
        pol = make_rt_policy("coarse")
        lock = pol.send_section()
        started = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                started.set()
                release.wait(5)

        t = threading.Thread(target=holder, daemon=True)
        t.start()
        assert started.wait(5)

        grabbed = []

        def contender():
            with lock:
                grabbed.append(True)

        t2 = threading.Thread(target=contender, daemon=True)
        t2.start()
        import time

        time.sleep(0.05)  # let the contender hit the held lock
        release.set()
        t.join(5)
        t2.join(5)
        assert grabbed == [True]
        assert lock.contentions >= 1

    def test_overhead_ordering_usually_holds(self):
        """Live lock-path costs: none < {coarse, fine} (informational)."""
        none = rt_lock_overhead_ns("none", cycles=5_000)
        coarse = rt_lock_overhead_ns("coarse", cycles=5_000)
        fine = rt_lock_overhead_ns("fine", cycles=5_000)
        # real locks always cost more than the null policy; coarse vs fine
        # ordering depends on the host, so only the weak claim is asserted
        assert none < coarse
        assert none < fine

    def test_policy_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_rt_policy("quantum")


class TestTiming:
    def test_timer_overhead_sane(self):
        overhead = timer_overhead_ns(200)
        assert 0 <= overhead < 100_000  # way below 0.1 ms on any host

    def test_validation(self):
        with pytest.raises(ValueError):
            timer_overhead_ns(0)
        with pytest.raises(ValueError):
            rt_lock_overhead_ns("none", cycles=0)


class TestMessageSequence:
    def test_seq_is_per_library(self):
        """Each endpoint numbers its own sends from 1: a process-global
        counter would make seq values depend on what ran earlier, so
        repetitions and cross-process runs could not be compared."""
        lib_a, lib_b = build_rt_pair("none")
        for i in range(3):
            lib_a.isend(tag=i, size=8)
        lib_b.isend(tag=99, size=8)
        seqs_a = [lib_b.link.poll(1).seq for _ in range(3)]
        seq_b = lib_a.link.poll(0).seq
        assert seqs_a == [1, 2, 3]
        assert seq_b == 1, "fresh library must restart from 1"

    def test_seq_resets_with_fresh_pair(self):
        first, _ = build_rt_pair("none")
        first.isend(tag=0, size=8)
        first.isend(tag=1, size=8)
        fresh, _ = build_rt_pair("none")
        fresh.isend(tag=0, size=8)
        assert fresh.link.poll(1).seq == 1
