"""Tests for the latency-decomposition instrument."""

import pytest

from repro.analysis.decompose import (
    STAGES,
    Decomposition,
    decompose_message,
    decomposition_table,
)
from repro.net.drivers.mx import MX_MODEL


class TestDecomposeMessage:
    def test_stages_positive_and_sum(self):
        d = decompose_message("none", 8)
        assert d.submit > 0
        assert d.transit > 0
        assert d.detection > 0
        assert d.delivery >= 0
        assert d.total == d.submit + d.transit + d.detection + d.delivery

    def test_transit_matches_link_model(self):
        """Transit = tx occupancy + wire + rx gap, policy-independent."""
        for policy in ("none", "coarse", "fine"):
            d = decompose_message(policy, 8)
            expect = (
                MX_MODEL.tx_occupancy_ns(8 + 40)  # payload + header
                + MX_MODEL.wire_latency_ns
                + MX_MODEL.min_rx_gap_ns
            )
            assert d.transit == expect, policy

    def test_transit_grows_with_size(self):
        small = decompose_message("none", 8)
        big = decompose_message("none", 32 * 1024)
        assert big.transit > small.transit

    def test_locking_taxes_host_stages_not_transit(self):
        none = decompose_message("none", 8)
        fine = decompose_message("fine", 8)
        assert fine.transit == none.transit
        host_none = none.submit + none.detection
        host_fine = fine.submit + fine.detection
        assert host_fine > host_none

    def test_eager_submit_includes_copy(self):
        small = decompose_message("none", 8)
        big = decompose_message("none", 2048)
        copy_ns = MX_MODEL.copy_ns(2048)
        assert big.submit - small.submit >= copy_ns * 0.8

    def test_total_consistent_with_measured_latency(self):
        """The decomposition should land in the neighbourhood of the
        pingpong latency for the same configuration."""
        from repro.bench.pingpong import run_pingpong
        from repro.core import build_testbed

        d = decompose_message("none", 8)
        bed = build_testbed(policy="none")
        lat = run_pingpong(bed, 8, iterations=10, warmup=2).latency_ns
        assert d.total == pytest.approx(lat, rel=0.25)


class TestTable:
    def test_table_renders_all_policies(self):
        text = decomposition_table(8)
        for policy in ("none", "coarse", "fine"):
            assert policy in text
        for stage in STAGES:
            assert stage in text

    def test_dataclass_row(self):
        d = Decomposition("x", 8, 1, 2, 3, 4)
        assert d.as_row() == ["x", 1, 2, 3, 4, 10]
