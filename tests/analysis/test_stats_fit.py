"""Unit tests for the analysis helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    confidence_interval_95,
    constant_offset,
    offset_flatness,
    ratio_series,
    speedup,
    summarize,
    trimmed_mean,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_single_sample_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, math.nan])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_bounds(self, xs):
        s = summarize(xs)
        assert s.minimum <= s.median <= s.maximum
        # the mean can undershoot min (or overshoot max) by a few ulps when
        # all values are equal — allow float summation rounding
        eps = 1e-6 * max(1.0, abs(s.mean))
        assert s.minimum - eps <= s.mean <= s.maximum + eps


class TestTrimmedMean:
    def test_trims_outliers(self):
        sample = [10.0] * 18 + [1000.0, 0.0]
        assert trimmed_mean(sample, 0.1) == pytest.approx(10.0)

    def test_zero_trim_is_mean(self):
        assert trimmed_mean([1, 2, 3], 0.0) == 2.0

    def test_bad_trim(self):
        with pytest.raises(ValueError):
            trimmed_mean([1.0], 0.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            trimmed_mean([], 0.1)


class TestCI:
    def test_contains_mean(self):
        lo, hi = confidence_interval_95([1.0, 2.0, 3.0])
        assert lo <= 2.0 <= hi

    def test_single_degenerate(self):
        assert confidence_interval_95([7.0]) == (7.0, 7.0)


class TestSpeedup:
    def test_faster(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestConstantOffset:
    def test_exact_constant(self):
        base = [(1, 3.0), (2, 3.1), (4, 3.3)]
        other = [(s, v + 0.14) for s, v in base]
        fit = constant_offset(base, other)
        assert fit.offset_ns == pytest.approx(0.14)
        assert fit.spread_ns == pytest.approx(0.0, abs=1e-12)
        assert fit.is_constant
        assert offset_flatness(fit) == pytest.approx(0.0, abs=1e-9)

    def test_uses_shared_sizes_only(self):
        base = [(1, 3.0), (2, 3.1)]
        other = [(2, 3.3), (8, 9.9)]
        fit = constant_offset(base, other)
        assert fit.npoints == 1
        assert fit.offset_ns == pytest.approx(0.2)

    def test_no_shared_sizes(self):
        with pytest.raises(ValueError):
            constant_offset([(1, 3.0)], [(2, 3.0)])

    def test_growing_offset_not_constant(self):
        # ns-scale values (the heuristic has a 100 ns noise floor)
        base = [(s, 3000.0) for s in (1, 2, 4, 8)]
        other = [(s, 3000.0 + s * 500.0) for s in (1, 2, 4, 8)]
        fit = constant_offset(base, other)
        assert not fit.is_constant

    @given(
        st.lists(
            st.tuples(st.integers(1, 1000), st.floats(1.0, 100.0)),
            min_size=2,
            max_size=20,
            unique_by=lambda t: t[0],
        ),
        st.floats(-10, 10),
    )
    def test_recovers_injected_offset(self, series, delta):
        base = series
        other = [(s, v + delta) for s, v in series]
        fit = constant_offset(base, other)
        assert fit.offset_ns == pytest.approx(delta, abs=1e-9)


class TestRatioSeries:
    def test_ratios(self):
        base = [(1, 2.0), (2, 4.0)]
        other = [(1, 4.0), (2, 4.0)]
        assert ratio_series(base, other) == [(1, 2.0), (2, 1.0)]

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            ratio_series([(1, 0.0)], [(1, 1.0)])

    def test_disjoint_rejected(self):
        with pytest.raises(ValueError):
            ratio_series([(1, 1.0)], [(2, 1.0)])


class TestSummaryStr:
    def test_str_includes_every_field(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        text = str(s)
        for key in ("n=", "mean=", "median=", "std=", "min=", "max=", "p95="):
            assert key in text, f"{key!r} missing from {text!r}"

    def test_str_p95_value(self):
        s = summarize([0.0] * 19 + [100.0])
        assert f"p95={s.p95:.3f}" in str(s)
