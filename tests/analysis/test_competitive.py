"""Tests for the Karlin-style competitive-spinning analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.competitive import (
    balance_threshold_ns,
    best_threshold,
    competitive_ratio,
    evaluate_threshold,
    offline_optimum_ns,
    strategy_cost_ns,
    worst_case_ratio,
)

C = 750  # the paper's context-switch round trip


class TestCostModel:
    def test_event_inside_window_costs_arrival(self):
        assert strategy_cost_ns(5_000, 3_000, C) == 3_000

    def test_event_outside_window_costs_spin_plus_switch(self):
        assert strategy_cost_ns(5_000, 9_000, C) == 5_000 + C

    def test_pure_block(self):
        assert strategy_cost_ns(0, 9_000, C) == C

    def test_pure_spin(self):
        assert strategy_cost_ns(10**12, 9_000, C) == 9_000

    def test_optimum(self):
        assert offline_optimum_ns(300, C) == 300
        assert offline_optimum_ns(9_000, C) == C

    def test_validation(self):
        with pytest.raises(ValueError):
            strategy_cost_ns(-1, 0, C)
        with pytest.raises(ValueError):
            offline_optimum_ns(-1, C)
        with pytest.raises(ValueError):
            balance_threshold_ns(0)


class TestCompetitiveBound:
    def test_balance_threshold_is_switch_cost(self):
        assert balance_threshold_ns(C) == C

    @given(st.integers(0, 10**7))
    def test_balance_threshold_is_2_competitive(self, arrival):
        """Karlin: spinning exactly C before blocking is 2-competitive."""
        ratio = competitive_ratio(C, arrival, C)
        assert ratio <= 2.0 + 1e-9

    @given(st.integers(0, 10**7), st.integers(1, 10**6))
    def test_balance_threshold_2_competitive_any_switch_cost(self, arrival, switch):
        assert competitive_ratio(switch, arrival, switch) <= 2.0 + 1e-9

    def test_worst_case_of_balance_is_exactly_2(self):
        assert worst_case_ratio(C, C) == pytest.approx(2.0)

    def test_small_windows_are_worse(self):
        # spinning a tiny epsilon then blocking: adversary arrives just
        # after -> ratio explodes
        assert worst_case_ratio(1, C) > 2.0

    def test_large_windows_are_worse(self):
        assert worst_case_ratio(10 * C, C) > 2.0

    @given(st.integers(0, 10**6))
    def test_no_threshold_beats_2_in_the_worst_case(self, spin):
        assert worst_case_ratio(spin, C) >= 2.0 - 1e-9


class TestEmpirical:
    def test_evaluation_fields(self):
        ev = evaluate_threshold(C, [100, 200, 10_000], C)
        assert ev.nsamples == 3
        assert ev.mean_cost_ns >= ev.mean_optimum_ns

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_threshold(C, [], C)

    def test_fast_events_favour_spinning(self):
        arrivals = [200] * 50  # everything arrives quickly
        spin = evaluate_threshold(1_000, arrivals, C)
        block = evaluate_threshold(0, arrivals, C)
        assert spin.mean_cost_ns < block.mean_cost_ns

    def test_slow_events_favour_blocking(self):
        arrivals = [1_000_000] * 50
        spin = evaluate_threshold(100_000, arrivals, C)
        block = evaluate_threshold(0, arrivals, C)
        assert block.mean_cost_ns < spin.mean_cost_ns

    @given(
        st.lists(st.integers(0, 100_000), min_size=1, max_size=50),
    )
    def test_empirical_ratio_of_balance_bounded_by_2(self, arrivals):
        ev = evaluate_threshold(C, arrivals, C)
        # per-sample bound implies the mean bound
        assert ev.mean_cost_ns <= 2.0 * ev.mean_optimum_ns + 1e-9

    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=30))
    def test_best_threshold_never_worse_than_balance(self, arrivals):
        best = best_threshold(arrivals, C)
        ev_best = evaluate_threshold(best, arrivals, C)
        ev_balance = evaluate_threshold(C, arrivals, C)
        assert ev_best.mean_cost_ns <= ev_balance.mean_cost_ns + 1e-9


class TestTheoryMatchesSimulator:
    def test_fixed_spin_sweep_consistent_with_theory(self):
        """The E9 sweep's shape follows the cost model: thresholds below
        the 8 us arrival all pay spin+switch; covering thresholds pay the
        arrival only."""
        from repro.bench.waiting import run_fixed_spin_sweep

        results = run_fixed_spin_sweep(
            spin_values_ns=(0, 2_000, 20_000), event_delay_ns=8_000, iterations=6
        )
        block = results.point("fixed-spin wait", 0)
        short = results.point("fixed-spin wait", 2_000)
        cover = results.point("fixed-spin wait", 20_000)
        # theory: cost(block) ~ cost(short spin) > cost(covering spin)
        assert cover < block
        assert cover < short
        assert abs(short - block) < 1.5  # both pay the switch (us scale)
