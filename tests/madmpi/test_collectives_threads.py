"""Collectives under MPI_THREAD_MULTIPLE contention.

The paper's case for fine-grain locking is that several application
threads can drive the library at once.  These tests stress exactly that
for the collective algorithms: every node runs several caller threads
*concurrently*, each thread owning its own communicator (distinct
``context``, so the per-thread collective message streams cannot be
confused), and all of them run allreduce/allgather/bcast/barrier rounds
at the same time — under every locking policy.
"""

import operator

import pytest

from repro.core import build_testbed
from repro.madmpi import Communicator, ThreadLevel

NODES = 4
THREADS = 3
ROUNDS = 2


def thread_worlds(bed, nthreads):
    """One communicator set per caller thread, with distinct contexts."""
    return [
        [
            Communicator(
                bed.lib(rank),
                rank,
                NODES,
                thread_level=ThreadLevel.MULTIPLE,
                context=100 + t,
            )
            for rank in range(NODES)
        ]
        for t in range(nthreads)
    ]


def collective_storm(comm, t, out):
    """ROUNDS of mixed collectives; records what every round produced."""
    seen = []
    for r in range(ROUNDS):
        total = yield from comm.Allreduce(comm.rank + 1, operator.add)
        ranks = yield from comm.Allgather((comm.rank, t))
        root_val = yield from comm.Bcast(
            (t, r) if comm.rank == 0 else None, root=0
        )
        yield from comm.Barrier()
        seen.append((total, tuple(ranks), root_val))
    out[(comm.rank, t)] = seen


@pytest.mark.parametrize("policy", ["none", "coarse", "fine"])
def test_concurrent_collectives_all_policies(policy):
    bed = build_testbed(nodes=NODES, policy=policy)
    worlds = thread_worlds(bed, THREADS)
    out: dict = {}

    threads = []
    for t, comms in enumerate(worlds):
        for comm in comms:
            ncores = len(bed.machine(comm.rank).cores)
            th = bed.machine(comm.rank).scheduler.spawn(
                collective_storm(comm, t, out),
                name=f"coll-n{comm.rank}-t{t}",
                core=t % ncores,
                bound=True,
            )
            threads.append(th)
    bed.run(
        until=lambda: all(th.done for th in threads),
        max_time=30_000_000_000,
    )

    assert all(th.done for th in threads), "collective storm deadlocked"
    assert len(out) == NODES * THREADS
    expect_sum = NODES * (NODES + 1) // 2
    for (rank, t), seen in out.items():
        assert len(seen) == ROUNDS
        for r, (total, ranks, root_val) in enumerate(seen):
            assert total == expect_sum
            assert sorted(ranks) == [(n, t) for n in range(NODES)]
            assert root_val == (t, r)


@pytest.mark.parametrize("policy", ["coarse", "fine"])
def test_thread_count_scaling(policy):
    """The storm stays correct as the per-node thread count grows."""
    for nthreads in (1, 2, 4):
        bed = build_testbed(nodes=NODES, policy=policy)
        worlds = thread_worlds(bed, nthreads)
        out: dict = {}
        threads = []
        for t, comms in enumerate(worlds):
            for comm in comms:
                ncores = len(bed.machine(comm.rank).cores)
                th = bed.machine(comm.rank).scheduler.spawn(
                    collective_storm(comm, t, out),
                    name=f"coll-n{comm.rank}-t{t}",
                    core=t % ncores,
                    bound=True,
                )
                threads.append(th)
        bed.run(
            until=lambda: all(th.done for th in threads),
            max_time=30_000_000_000,
        )
        assert len(out) == NODES * nthreads


def test_contention_is_visible_under_coarse_lock():
    """More caller threads -> more lock contention under the global lock."""

    def contended_acquisitions(nthreads):
        bed = build_testbed(nodes=NODES, policy="coarse")
        worlds = thread_worlds(bed, nthreads)
        out: dict = {}
        threads = []
        for t, comms in enumerate(worlds):
            for comm in comms:
                ncores = len(bed.machine(comm.rank).cores)
                th = bed.machine(comm.rank).scheduler.spawn(
                    collective_storm(comm, t, out),
                    name=f"coll-n{comm.rank}-t{t}",
                    core=t % ncores,
                    bound=True,
                )
                threads.append(th)
        bed.run(
            until=lambda: all(th.done for th in threads),
            max_time=30_000_000_000,
        )
        return sum(
            lock.contentions
            for lib in bed.libs
            for lock in lib.policy.lock_objects()
        )

    assert contended_acquisitions(4) > contended_acquisitions(1)
