"""Mad-MPI collective tests across communicator sizes."""

import operator

import pytest

from repro.core import build_testbed
from repro.madmpi import MPIError, create_world, run_ranks

SIZES = [2, 3, 4]


def world(nodes):
    bed = build_testbed(nodes=nodes, policy="fine")
    return bed, create_world(bed)


class TestBarrier:
    @pytest.mark.parametrize("nodes", SIZES)
    def test_barrier_synchronizes(self, nodes):
        from repro.sim.process import Delay

        bed, comms = world(nodes)
        after = {}

        def rank_fn(comm):
            # rank r works r*10us before the barrier
            yield Delay(comm.rank * 10_000, "compute")
            yield from comm.Barrier()
            after[comm.rank] = bed.engine.now

        run_ranks(bed, comms, rank_fn)
        # nobody leaves the barrier before the slowest rank arrived
        slowest_arrival = (nodes - 1) * 10_000
        assert all(t >= slowest_arrival for t in after.values())

    def test_barrier_single_rank_world_trivial(self):
        # degenerate case is covered through the p==1 early return of the
        # algorithm; communicator worlds here always have >= 2 nodes, so
        # exercise via a size-2 world calling twice
        bed, comms = world(2)

        def rank_fn(comm):
            yield from comm.Barrier()
            yield from comm.Barrier()
            return "ok"

        assert run_ranks(bed, comms, rank_fn) == ["ok", "ok"]


class TestBcast:
    @pytest.mark.parametrize("nodes", SIZES)
    @pytest.mark.parametrize("root", [0, 1])
    def test_everyone_gets_roots_value(self, nodes, root):
        bed, comms = world(nodes)

        def rank_fn(comm):
            obj = {"data": 42} if comm.rank == root else None
            result = yield from comm.Bcast(obj, root=root)
            return result

        results = run_ranks(bed, comms, rank_fn)
        assert all(r == {"data": 42} for r in results)

    def test_bad_root(self):
        bed, comms = world(2)

        def rank_fn(comm):
            try:
                yield from comm.Bcast("x", root=9)
            except MPIError:
                return "raised"

        assert run_ranks(bed, comms, rank_fn) == ["raised", "raised"]


class TestReduce:
    @pytest.mark.parametrize("nodes", SIZES)
    def test_sum_at_root(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            result = yield from comm.Reduce(comm.rank + 1, operator.add, root=0)
            return result

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == sum(range(1, nodes + 1))
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("nodes", SIZES)
    def test_max(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            result = yield from comm.Reduce(comm.rank * 7, max, root=0)
            return result

        assert run_ranks(bed, comms, rank_fn)[0] == (nodes - 1) * 7

    @pytest.mark.parametrize("nodes", SIZES)
    def test_allreduce_everywhere(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            result = yield from comm.Allreduce(comm.rank + 1, operator.add)
            return result

        results = run_ranks(bed, comms, rank_fn)
        assert results == [sum(range(1, nodes + 1))] * nodes


class TestGatherScatter:
    @pytest.mark.parametrize("nodes", SIZES)
    def test_gather_rank_order(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            result = yield from comm.Gather(f"r{comm.rank}", root=0)
            return result

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == [f"r{i}" for i in range(nodes)]
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("nodes", SIZES)
    def test_scatter_slices(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            values = [i * 100 for i in range(nodes)] if comm.rank == 0 else None
            result = yield from comm.Scatter(values, root=0)
            return result

        assert run_ranks(bed, comms, rank_fn) == [i * 100 for i in range(nodes)]

    def test_scatter_wrong_arity(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                try:
                    yield from comm.Scatter([1, 2, 3], root=0)
                except MPIError:
                    return "raised"
            else:
                # the root never sends, so don't post a matching recv; the
                # error surfaces on the root only
                if False:
                    yield
                return None

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == "raised"


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("nodes", SIZES)
    def test_allgather_everywhere(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            result = yield from comm.Allgather(comm.rank**2)
            return result

        results = run_ranks(bed, comms, rank_fn)
        expect = [i**2 for i in range(nodes)]
        assert results == [expect] * nodes

    @pytest.mark.parametrize("nodes", SIZES)
    def test_alltoall_transpose(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            values = [f"{comm.rank}->{dest}" for dest in range(nodes)]
            result = yield from comm.Alltoall(values)
            return result

        results = run_ranks(bed, comms, rank_fn)
        for me in range(nodes):
            assert results[me] == [f"{src}->{me}" for src in range(nodes)]

    def test_alltoall_wrong_arity(self):
        bed, comms = world(2)

        def rank_fn(comm):
            try:
                yield from comm.Alltoall([1])
            except MPIError:
                return "raised"
            return None

        assert run_ranks(bed, comms, rank_fn) == ["raised", "raised"]


class TestCollectiveSequences:
    def test_back_to_back_collectives_do_not_cross_match(self):
        bed, comms = world(3)

        def rank_fn(comm):
            first = yield from comm.Bcast("A" if comm.rank == 0 else None, root=0)
            second = yield from comm.Bcast("B" if comm.rank == 0 else None, root=0)
            total = yield from comm.Allreduce(1, operator.add)
            return (first, second, total)

        results = run_ranks(bed, comms, rank_fn)
        assert all(r == ("A", "B", 3) for r in results)

    def test_mixed_p2p_and_collectives(self):
        bed, comms = world(2)

        def rank_fn(comm):
            other = 1 - comm.rank
            rreq = yield from comm.irecv(other, tag=5)
            yield from comm.Barrier()
            sreq = yield from comm.isend(f"p2p-{comm.rank}", other, tag=5)
            yield from comm.Waitall([sreq, rreq])
            total = yield from comm.Allreduce(10, operator.add)
            return (rreq.payload, total)

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == ("p2p-1", 20)
        assert results[1] == ("p2p-0", 20)
