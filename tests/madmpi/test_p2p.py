"""Mad-MPI point-to-point tests."""

import pytest

from repro.core import build_testbed
from repro.madmpi import (
    ANY_TAG,
    BYTE,
    DOUBLE,
    INT,
    Communicator,
    MPIError,
    ThreadLevel,
    create_world,
    run_ranks,
)
from repro.sim.process import Delay


def world(nodes=2, **kw):
    bed = build_testbed(nodes=nodes, policy="fine")
    return bed, create_world(bed, **kw)


class TestWorldSetup:
    def test_ranks_and_size(self):
        _, comms = world(3)
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)

    def test_bad_rank_rejected(self):
        bed, _ = world(2)
        with pytest.raises(ValueError):
            Communicator(bed.lib(0), 5, 2)


class TestBufferMode:
    def test_send_recv_with_status(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.Send(1, 100, INT, tag=9)
                return "sent"
            payload, status = yield from comm.Recv(0, 100, INT, tag=9)
            return status

        results = run_ranks(bed, comms, rank_fn)
        status = results[1]
        assert status.source == 0
        assert status.get_count(INT) == 100

    def test_isend_irecv_wait(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                req = yield from comm.Isend(1, 64, BYTE, tag=1, payload=b"x" * 64)
                yield from comm.Wait(req)
                return None
            req = yield from comm.Irecv(0, 64, BYTE, tag=1)
            yield from comm.Wait(req)
            return req.payload

        results = run_ranks(bed, comms, rank_fn)
        assert results[1] == b"x" * 64

    def test_sendrecv_exchange(self):
        bed, comms = world(2)

        def rank_fn(comm):
            other = 1 - comm.rank
            payload, _ = yield from comm.Sendrecv(
                other, 8, other, 8, DOUBLE, payload=f"from-{comm.rank}"
            )
            return payload

        results = run_ranks(bed, comms, rank_fn)
        assert results == ["from-1", "from-0"]

    def test_any_tag(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.Send(1, 4, BYTE, tag=77, payload="x")
                return None
            payload, status = yield from comm.Recv(0, 4, BYTE, tag=ANY_TAG)
            return status.tag

        results = run_ranks(bed, comms, rank_fn)
        # the wire tag includes the context offset; what matters is a match
        assert results[1] is not None

    def test_self_send_rejected(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                try:
                    yield from comm.Send(0, 4)
                except MPIError:
                    return "raised"
            else:
                yield Delay(1)
            return None

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == "raised"

    def test_bad_tag_rejected(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                try:
                    yield from comm.Send(1, 4, BYTE, tag=1 << 18)
                except MPIError:
                    return "raised"
            else:
                yield Delay(1)
            return None

        assert run_ranks(bed, comms, rank_fn)[0] == "raised"


class TestObjectMode:
    def test_object_roundtrip(self):
        bed, comms = world(2)
        blob = {"key": [1, 2, 3], "text": "hello"}

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.send(blob, 1, tag=3)
                return None
            obj = yield from comm.recv(0, tag=3)
            return obj

        results = run_ranks(bed, comms, rank_fn)
        assert results[1] == blob

    def test_numpy_payload_sized_by_nbytes(self):
        import numpy as np

        bed, comms = world(2)
        array = np.arange(1024, dtype=np.float64)  # 8 KiB -> rendezvous

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.send(array, 1)
                return None
            obj = yield from comm.recv(0)
            return obj

        results = run_ranks(bed, comms, rank_fn)
        assert (results[1] == array).all()
        # 8 KiB exceeds the eager threshold: the rendezvous path carried it
        from repro.core import PacketKind

        assert bed.lib(0).packets_posted[PacketKind.RTS] == 1

    def test_isend_object(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                req = yield from comm.isend([1, 2], 1)
                yield from comm.Wait(req)
                return None
            req = yield from comm.irecv(0)
            yield from comm.Wait(req)
            return req.payload

        assert run_ranks(bed, comms, rank_fn)[1] == [1, 2]


class TestCompletion:
    def test_test_polls(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                yield Delay(20_000)
                yield from comm.send("late", 1)
                return None
            req = yield from comm.irecv(0)
            polls = 0
            while True:
                done = yield from comm.Test(req)
                polls += 1
                if done:
                    break
            return polls

        results = run_ranks(bed, comms, rank_fn)
        assert results[1] > 1  # had to poll several times

    def test_waitall(self):
        bed, comms = world(2)

        def rank_fn(comm):
            other = 1 - comm.rank
            reqs = []
            for tag in range(4):
                r = yield from comm.Irecv(other, 1 << 20, BYTE, tag)
                reqs.append(r)
            for tag in range(4):
                s = yield from comm.Isend(other, 32, BYTE, tag, payload=tag)
                reqs.append(s)
            yield from comm.Waitall(reqs)
            return [reqs[i].payload for i in range(4)]

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == [0, 1, 2, 3]
        assert results[1] == [0, 1, 2, 3]

    def test_waitany_returns_completed_index(self):
        bed, comms = world(2)

        def rank_fn(comm):
            if comm.rank == 0:
                yield Delay(5_000)
                yield from comm.Send(1, 16, BYTE, tag=1, payload="one")
                yield Delay(100_000)
                yield from comm.Send(1, 16, BYTE, tag=0, payload="zero")
                return None
            r0 = yield from comm.Irecv(0, 1 << 20, BYTE, tag=0)
            r1 = yield from comm.Irecv(0, 1 << 20, BYTE, tag=1)
            first = yield from comm.Waitany([r0, r1])
            return first

        results = run_ranks(bed, comms, rank_fn)
        assert results[1] == 1  # tag-1 message was sent first

    def test_waitany_empty_rejected(self):
        bed, comms = world(2)

        def rank_fn(comm):
            try:
                yield from comm.Waitany([])
            except MPIError:
                return "raised"

        assert run_ranks(bed, comms, rank_fn) == ["raised", "raised"]


class TestThreadLevels:
    def test_multiple_allows_concurrent_threads(self):
        bed = build_testbed(nodes=2, policy="fine")
        comms = create_world(bed, thread_level=ThreadLevel.MULTIPLE)
        done = []

        def worker(comm, tag):
            other = 1 - comm.rank
            rreq = yield from comm.Irecv(other, 1 << 20, BYTE, tag)
            sreq = yield from comm.Isend(other, 64, BYTE, tag, payload=tag)
            yield from comm.Waitall([sreq, rreq])
            done.append((comm.rank, tag))

        threads = []
        for comm in comms:
            for i in range(2):
                t = bed.machine(comm.rank).scheduler.spawn(
                    worker(comm, i), name=f"w{comm.rank}{i}", core=i, bound=True
                )
                threads.append(t)
        bed.run(until=lambda: all(t.done for t in threads))
        assert len(done) == 4

    def test_serialized_rejects_concurrent_entry(self):
        bed = build_testbed(nodes=2, policy="coarse")
        comms = create_world(bed, thread_level=ThreadLevel.SERIALIZED)
        failures = []

        def worker(comm, tag):
            other = 1 - comm.rank
            try:
                rreq = yield from comm.Irecv(other, 1 << 20, BYTE, tag)
                yield from comm.Wait(rreq)
            except MPIError as exc:
                failures.append(str(exc))

        threads = []
        for i in range(2):
            t = bed.machine(0).scheduler.spawn(
                worker(comms[0], i), name=f"w{i}", core=i, bound=True
            )
            threads.append(t)
        bed.engine.run(
            until=lambda: bool(failures) or all(t.done for t in threads),
            max_time=50_000_000,
        )
        assert failures  # the second thread was caught inside the library
        assert "MPI_THREAD_SERIALIZED" in failures[0]
        assert "serialize" in failures[0]

    def test_serialized_allows_sequential_threads(self):
        # unlike FUNNELED, SERIALIZED allows *any* thread to call MPI as
        # long as the calls do not overlap in time
        bed = build_testbed(nodes=2, policy="coarse")
        comms = create_world(bed, thread_level=ThreadLevel.SERIALIZED)
        done = []

        def sender(comm, tag, delay_ns):
            yield Delay(delay_ns)
            req = yield from comm.Isend(1, 64, BYTE, tag, payload=tag)
            yield from comm.Wait(req)
            done.append(tag)

        def receiver(comm):
            for tag in (0, 1):
                rreq = yield from comm.Irecv(0, 1 << 20, BYTE, tag)
                yield from comm.Wait(rreq)
            done.append("rx")

        # two different threads on node 0, strictly one after the other
        t1 = bed.machine(0).scheduler.spawn(
            sender(comms[0], 0, 0), name="s0", core=0, bound=True
        )
        t2 = bed.machine(0).scheduler.spawn(
            sender(comms[0], 1, 40_000_000), name="s1", core=1, bound=True
        )
        t3 = bed.machine(1).scheduler.spawn(receiver(comms[1]), name="rx", core=0)
        bed.run(until=lambda: t1.done and t2.done and t3.done)
        assert sorted(done, key=str) == [0, 1, "rx"]

    def test_funneled_rejects_other_threads(self):
        bed = build_testbed(nodes=2, policy="fine")
        comms = create_world(bed, thread_level=ThreadLevel.FUNNELED)
        outcome = {}

        def main_thread(comm):
            # first caller becomes the main thread
            req = yield from comm.isend("x", 1)
            yield from comm.Wait(req)
            outcome["main"] = "ok"

        def rogue_thread(comm):
            yield Delay(1_000)
            try:
                yield from comm.isend("y", 1)
            except MPIError:
                outcome["rogue"] = "raised"

        def receiver(comm):
            obj = yield from comm.recv(0)
            return obj

        t1 = bed.machine(0).scheduler.spawn(main_thread(comms[0]), name="m", core=0)
        t2 = bed.machine(0).scheduler.spawn(rogue_thread(comms[0]), name="r", core=1)
        t3 = bed.machine(1).scheduler.spawn(receiver(comms[1]), name="rx", core=0)
        bed.run(until=lambda: t1.done and t2.done and t3.done)
        assert outcome == {"main": "ok", "rogue": "raised"}
