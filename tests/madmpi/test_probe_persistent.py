"""Tests for MPI_Probe/Iprobe and persistent requests."""

import pytest

from repro.core import build_testbed
from repro.madmpi import ANY_TAG, BYTE, MPIError, create_world, run_ranks
from repro.sim.process import Delay


def world(nodes=2):
    bed = build_testbed(nodes=nodes, policy="fine")
    return bed, create_world(bed)


class TestIprobe:
    def test_probe_sees_unclaimed_arrival(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.send(b"x" * 96, 1, tag=5)
                return None
            # wait until the message must have arrived, then probe
            yield Delay(50_000)
            found, status = yield from comm.Iprobe(0, tag=5)
            if not found:
                return ("missed", None)
            # the message is still receivable after the probe
            obj = yield from comm.recv(0, tag=5)
            return (status.count_bytes, obj)

        results = run_ranks(bed, comms, rank_fn)
        size, obj = results[1]
        assert size == 96
        assert obj == b"x" * 96

    def test_probe_negative_when_nothing_pending(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 1:
                found, status = yield from comm.Iprobe(0, tag=5)
                return found
            yield Delay(1)
            return None

        assert run_ranks(bed, comms, rank_fn)[1] is False

    def test_probe_respects_tag(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.send("a", 1, tag=1)
                return None
            yield Delay(50_000)
            wrong, _ = yield from comm.Iprobe(0, tag=2)
            right, _ = yield from comm.Iprobe(0, tag=1)
            # drain so the testbed finishes clean
            yield from comm.recv(0, tag=1)
            return (wrong, right)

        assert run_ranks(bed, comms, rank_fn)[1] == (False, True)

    def test_probe_any_tag(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.send("a", 1, tag=7)
                return None
            yield Delay(50_000)
            found, status = yield from comm.Iprobe(0, tag=ANY_TAG)
            yield from comm.recv(0, tag=7)
            return found

        assert run_ranks(bed, comms, rank_fn)[1] is True

    def test_probe_sees_rendezvous_announcement(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.send(b"z" * (64 * 1024), 1, tag=3)
                return None
            status = yield from comm.Probe(0, tag=3)
            obj = yield from comm.recv(0, tag=3)
            return (status.count_bytes, len(obj))

        size, got = run_ranks(bed, comms, rank_fn)[1]
        assert size == 64 * 1024
        assert got == 64 * 1024

    def test_blocking_probe_waits(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 0:
                yield Delay(100_000)
                yield from comm.send("late", 1, tag=4)
                return None
            t0 = bed.engine.now
            yield from comm.Probe(0, tag=4)
            waited = bed.engine.now - t0
            yield from comm.recv(0, tag=4)
            return waited

        assert run_ranks(bed, comms, rank_fn)[1] >= 100_000


class TestPersistent:
    def test_repeated_starts(self):
        bed, comms = world()
        ROUNDS = 5

        def rank_fn(comm):
            other = 1 - comm.rank
            if comm.rank == 0:
                psend = comm.Send_init(other, 32, BYTE, tag=2, payload="ping")
                for _ in range(ROUNDS):
                    yield from comm.Start(psend)
                    yield from psend.wait()
                return psend.starts
            precv = comm.Recv_init(other, 1 << 20, BYTE, tag=2)
            got = []
            for _ in range(ROUNDS):
                yield from comm.Start(precv)
                yield from precv.wait()
                got.append(precv.active.payload)
            return got

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == ROUNDS
        assert results[1] == ["ping"] * ROUNDS

    def test_start_while_active_rejected(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 1:
                precv = comm.Recv_init(0, 64, BYTE, tag=9)
                yield from comm.Start(precv)
                try:
                    yield from comm.Start(precv)
                except MPIError:
                    return "raised"
            else:
                yield Delay(200_000)
                yield from comm.send(b"x", 1, tag=9)  # unblock the recv
            return None

        assert run_ranks(bed, comms, rank_fn)[1] == "raised"

    def test_wait_before_start_rejected(self):
        bed, comms = world()

        def rank_fn(comm):
            p = comm.Send_init(1 - comm.rank, 8, BYTE)
            try:
                yield from p.wait()
            except MPIError:
                return "raised"

        assert run_ranks(bed, comms, rank_fn) == ["raised", "raised"]

    def test_startall(self):
        bed, comms = world()

        def rank_fn(comm):
            other = 1 - comm.rank
            recvs = [comm.Recv_init(other, 1 << 20, BYTE, tag=t) for t in range(3)]
            sends = [
                comm.Send_init(other, 16, BYTE, tag=t, payload=t) for t in range(3)
            ]
            yield from comm.Startall(recvs)
            yield from comm.Startall(sends)
            for p in sends + recvs:
                yield from p.wait()
            return [p.active.payload for p in recvs]

        results = run_ranks(bed, comms, rank_fn)
        assert results[0] == [0, 1, 2]
        assert results[1] == [0, 1, 2]

    def test_init_validates(self):
        bed, comms = world()
        with pytest.raises(MPIError):
            comms[0].Send_init(0, 8)  # self-send
        with pytest.raises(MPIError):
            comms[0].Recv_init(9, 8)  # no such rank
