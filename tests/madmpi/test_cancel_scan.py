"""Tests for MPI_Cancel, MPI_Scan and MPI_Reduce_scatter."""

import operator

import pytest

from repro.core import build_testbed
from repro.madmpi import BYTE, MPIError, create_world, run_ranks
from repro.sim.process import Delay


def world(nodes=2):
    bed = build_testbed(nodes=nodes, policy="fine")
    return bed, create_world(bed)


class TestCancel:
    def test_cancel_unmatched_receive(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 1:
                req = yield from comm.Irecv(0, 64, BYTE, tag=9)
                ok = yield from comm.Cancel(req)
                return (ok, req.done, req.cancelled)
            yield Delay(1)
            return None

        ok, done, cancelled = run_ranks(bed, comms, rank_fn)[1]
        assert ok is True
        assert done is True
        assert cancelled is True

    def test_cancelled_recv_does_not_match_later_sends(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 1:
                doomed = yield from comm.Irecv(0, 64, BYTE, tag=9)
                yield from comm.Cancel(doomed)
                live = yield from comm.Irecv(0, 64, BYTE, tag=9)
                yield from comm.Wait(live)
                return (doomed.payload, live.payload)
            yield Delay(10_000)
            yield from comm.Send(1, 8, BYTE, tag=9, payload="only-one")
            return None

        doomed_payload, live_payload = run_ranks(bed, comms, rank_fn)[1]
        assert doomed_payload is None
        assert live_payload == "only-one"

    def test_cancel_matched_receive_fails(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 0:
                yield from comm.Send(1, 8, BYTE, tag=3, payload="x")
                return None
            req = yield from comm.Irecv(0, 64, BYTE, tag=3)
            yield from comm.Wait(req)
            ok = yield from comm.Cancel(req)
            return ok

        assert run_ranks(bed, comms, rank_fn)[1] is False

    def test_cancel_send_rejected(self):
        bed, comms = world()

        def rank_fn(comm):
            if comm.rank == 0:
                req = yield from comm.Isend(1, 8, BYTE, tag=1, payload="x")
                try:
                    yield from comm.Cancel(req)
                except MPIError:
                    yield from comm.Wait(req)
                    return "raised"
            else:
                obj = yield from comm.recv(0, tag=1)
            return None

        assert run_ranks(bed, comms, rank_fn)[0] == "raised"


class TestScan:
    @pytest.mark.parametrize("nodes", [2, 3, 4])
    def test_prefix_sums(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            result = yield from comm.Scan(comm.rank + 1, operator.add)
            return result

        results = run_ranks(bed, comms, rank_fn)
        assert results == [sum(range(1, r + 2)) for r in range(nodes)]

    def test_noncommutative_order(self):
        bed, comms = world(3)

        def rank_fn(comm):
            result = yield from comm.Scan(str(comm.rank), operator.add)
            return result

        assert run_ranks(bed, comms, rank_fn) == ["0", "01", "012"]


class TestReduceScatter:
    @pytest.mark.parametrize("nodes", [2, 3, 4])
    def test_elementwise_sum_scattered(self, nodes):
        bed, comms = world(nodes)

        def rank_fn(comm):
            # rank r contributes [r*10 + slot for each slot]
            values = [comm.rank * 10 + slot for slot in range(nodes)]
            result = yield from comm.Reduce_scatter(values, operator.add)
            return result

        results = run_ranks(bed, comms, rank_fn)
        for slot in range(nodes):
            expect = sum(r * 10 + slot for r in range(nodes))
            assert results[slot] == expect

    def test_wrong_arity(self):
        bed, comms = world(2)

        def rank_fn(comm):
            try:
                yield from comm.Reduce_scatter([1], operator.add)
            except MPIError:
                return "raised"

        assert run_ranks(bed, comms, rank_fn) == ["raised", "raised"]
