"""Unit tests for Mad-MPI datatypes and status objects."""

import pytest
from hypothesis import given, strategies as st

from repro.madmpi import BYTE, DOUBLE, INT, Datatype, Status, ThreadLevel
from repro.madmpi.mpi import _object_size


class TestDatatype:
    def test_predefined_sizes(self):
        assert BYTE.size_bytes == 1
        assert INT.size_bytes == 4
        assert DOUBLE.size_bytes == 8

    def test_extent(self):
        assert DOUBLE.extent(100) == 800
        assert DOUBLE.extent(0) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            INT.extent(-1)

    def test_contiguous(self):
        block = DOUBLE.contiguous(16)
        assert block.size_bytes == 128
        assert block.extent(2) == 256

    def test_vector(self):
        v = INT.vector(4, 8)
        assert v.size_bytes == 4 * 8 * 4

    def test_invalid_derived(self):
        with pytest.raises(ValueError):
            INT.contiguous(0)
        with pytest.raises(ValueError):
            INT.vector(1, 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Datatype("bad", -1)

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_extent_linear(self, n):
        assert INT.extent(n) == 4 * n


class TestStatus:
    def test_get_count(self):
        s = Status(source=1, tag=2, count_bytes=32)
        assert s.get_count(INT) == 8
        assert s.get_count(DOUBLE) == 4

    def test_get_count_fractional_rejected(self):
        s = Status(source=1, tag=2, count_bytes=30)
        with pytest.raises(ValueError):
            s.get_count(DOUBLE)

    def test_zero_size_datatype(self):
        s = Status(source=0, tag=0, count_bytes=10)
        assert s.get_count(Datatype("empty", 0)) == 0


class TestThreadLevel:
    def test_ordering(self):
        assert ThreadLevel.SINGLE < ThreadLevel.FUNNELED
        assert ThreadLevel.FUNNELED < ThreadLevel.SERIALIZED
        assert ThreadLevel.SERIALIZED < ThreadLevel.MULTIPLE


class TestObjectSize:
    def test_bytes(self):
        assert _object_size(b"abcd") == 4

    def test_none(self):
        assert _object_size(None) == 1

    def test_numpy_nbytes(self):
        import numpy as np

        assert _object_size(np.zeros(10, dtype=np.float64)) == 80

    def test_list(self):
        assert _object_size([0] * 10) == 80

    def test_generic_object_positive(self):
        assert _object_size(object()) >= 1
        assert _object_size("some text") >= 1
