"""Tests for MPI_Comm_split and communicator context isolation."""

import operator

from repro.core import build_testbed
from repro.madmpi import ANY_TAG, BYTE, create_world, run_ranks


def world(nodes):
    bed = build_testbed(nodes=nodes, policy="fine")
    return bed, create_world(bed)


class TestSplit:
    def test_even_odd_partition(self):
        bed, comms = world(4)

        def rank_fn(comm):
            sub = yield from comm.Split(color=comm.rank % 2)
            return (sub.rank, sub.size)

        results = run_ranks(bed, comms, rank_fn)
        # nodes 0,2 -> evens {rank 0,1}; nodes 1,3 -> odds {rank 0,1}
        assert results == [(0, 2), (0, 2), (1, 2), (1, 2)]

    def test_key_reorders_ranks(self):
        bed, comms = world(3)

        def rank_fn(comm):
            # reverse order: higher old rank -> lower key -> lower new rank
            sub = yield from comm.Split(color=0, key=-comm.rank)
            return sub.rank

        results = run_ranks(bed, comms, rank_fn)
        assert results == [2, 1, 0]

    def test_undefined_color_returns_none(self):
        bed, comms = world(3)

        def rank_fn(comm):
            color = None if comm.rank == 2 else 0
            sub = yield from comm.Split(color)
            return None if sub is None else (sub.rank, sub.size)

        results = run_ranks(bed, comms, rank_fn)
        assert results == [(0, 2), (1, 2), None]

    def test_collectives_within_subcommunicator(self):
        bed, comms = world(4)

        def rank_fn(comm):
            sub = yield from comm.Split(color=comm.rank % 2)
            total = yield from sub.Allreduce(comm.rank, operator.add)
            return total

        results = run_ranks(bed, comms, rank_fn)
        assert results == [0 + 2, 1 + 3, 0 + 2, 1 + 3]

    def test_p2p_uses_subcomm_ranks(self):
        bed, comms = world(4)

        def rank_fn(comm):
            sub = yield from comm.Split(color=comm.rank % 2)
            other = 1 - sub.rank
            payload, status = yield from sub.Sendrecv(
                other, 8, other, 8, BYTE, payload=f"world-rank-{comm.rank}"
            )
            return (payload, status.source)

        results = run_ranks(bed, comms, rank_fn)
        # evens exchange: world 0 <-> 2; odds: 1 <-> 3
        assert results[0] == ("world-rank-2", 1)
        assert results[2] == ("world-rank-0", 0)
        assert results[1] == ("world-rank-3", 1)
        assert results[3] == ("world-rank-1", 0)

    def test_context_isolation_for_wildcards(self):
        """An ANY_TAG receive on a sub-communicator must not steal a
        message sent on the parent communicator."""
        bed, comms = world(2)

        def rank_fn(comm):
            sub = yield from comm.Split(color=0)
            if comm.rank == 0:
                # send on the PARENT, tag 5
                yield from comm.send("parent-msg", 1, tag=5)
                yield from comm.Barrier()
                # then on the SUB
                yield from sub.send("sub-msg", 1, tag=9)
                return None
            # wildcard receive on the SUB communicator: must get the sub
            # message even though the parent's arrived first
            from repro.sim.process import Delay

            yield Delay(50_000)  # parent-msg is already here, unexpected
            sub_req = yield from sub.irecv(0, tag=ANY_TAG)
            yield from comm.Barrier()
            yield from sub.Wait(sub_req)
            parent_obj = yield from comm.recv(0, tag=5)
            return (sub_req.payload, parent_obj)

        results = run_ranks(bed, comms, rank_fn)
        assert results[1] == ("sub-msg", "parent-msg")

    def test_nested_split(self):
        bed, comms = world(4)

        def rank_fn(comm):
            half = yield from comm.Split(color=comm.rank // 2)
            solo = yield from half.Split(color=half.rank)
            return (half.size, solo.size)

        results = run_ranks(bed, comms, rank_fn)
        assert all(r == (2, 1) for r in results)

    def test_single_rank_subcomm_collectives(self):
        bed, comms = world(2)

        def rank_fn(comm):
            solo = yield from comm.Split(color=comm.rank)
            total = yield from solo.Allreduce(41, operator.add)
            gathered = yield from solo.Allgather("me")
            return (total, gathered)

        results = run_ranks(bed, comms, rank_fn)
        assert all(r == (41, ["me"]) for r in results)
