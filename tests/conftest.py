"""Suite-wide isolation for the incremental sweep cache.

The point cache defaults to *on* for real suite runs (CLI, benchmarks),
but tests must stay hermetic: a sweep measured in one test must never be
replayed into another, and the parallel/determinism tests must exercise
the real execution paths rather than cache hits.  Tests that cover the
cache itself opt back in with ``monkeypatch.setenv(CACHE_ENV, "1")`` —
the store still lands in the per-test temporary directory.
"""

import pytest

from repro.bench import cache as bench_cache
from repro.bench import runner


@pytest.fixture(autouse=True)
def _hermetic_sweep_cache(monkeypatch, tmp_path):
    monkeypatch.setenv(bench_cache.CACHE_ENV, "0")
    monkeypatch.setenv(
        bench_cache.CACHE_DIR_ENV, str(tmp_path / "sweep-cache")
    )
    bench_cache.reset_stats()
    runner._warned_fallback.clear()
    yield
