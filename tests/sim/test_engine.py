"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine
from repro.sim.errors import SimDeadlock, SimTimeLimit


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0

    def test_events_run_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(30, seen.append, "c")
        eng.schedule(10, seen.append, "a")
        eng.schedule(20, seen.append, "b")
        assert eng.run() == "drained"
        assert seen == ["a", "b", "c"]
        assert eng.now == 30

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        seen = []
        for tag in "abc":
            eng.schedule(5, seen.append, tag)
        eng.run()
        assert seen == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(5, lambda: None)

    def test_events_may_schedule_events(self):
        eng = Engine()
        seen = []

        def first():
            seen.append(eng.now)
            eng.schedule(7, second)

        def second():
            seen.append(eng.now)

        eng.schedule(3, first)
        eng.run()
        assert seen == [3, 10]

    def test_cancel(self):
        eng = Engine()
        seen = []
        h = eng.schedule(5, seen.append, "x")
        h.cancel()
        eng.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        h = eng.schedule(5, lambda: None)
        h.cancel()
        h.cancel()
        eng.run()

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        eng.schedule(1, lambda: None)
        h = eng.schedule(2, lambda: None)
        h.cancel()
        assert eng.pending() == 1


class TestRun:
    def test_until_predicate(self):
        eng = Engine()
        hits = []
        for i in range(5):
            eng.schedule(i * 10, hits.append, i)
        reason = eng.run(until=lambda: len(hits) >= 3)
        assert reason == "until"
        assert hits == [0, 1, 2]
        # remaining events still pending
        assert eng.pending() == 2

    def test_until_true_before_any_event(self):
        eng = Engine()
        eng.schedule(1, lambda: None)
        assert eng.run(until=lambda: True) == "until"
        assert eng.pending() == 1

    def test_drained_with_until_raises_deadlock(self):
        eng = Engine()
        eng.schedule(1, lambda: None)
        with pytest.raises(SimDeadlock):
            eng.run(until=lambda: False)

    def test_max_time(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        with pytest.raises(SimTimeLimit):
            eng.run(max_time=50)

    def test_max_events(self):
        eng = Engine()

        def again():
            eng.schedule(1, again)

        eng.schedule(1, again)
        with pytest.raises(SimTimeLimit):
            eng.run(max_events=10)

    def test_not_reentrant(self):
        eng = Engine()

        def inner():
            with pytest.raises(RuntimeError):
                eng.run()

        eng.schedule(1, inner)
        eng.run()

    def test_events_run_counter(self):
        eng = Engine()
        for _ in range(4):
            eng.schedule(1, lambda: None)
        eng.run()
        assert eng.events_run == 4

    def test_run_resumable_after_until(self):
        eng = Engine()
        seen = []
        eng.schedule(1, seen.append, 1)
        eng.schedule(2, seen.append, 2)
        eng.run(until=lambda: bool(seen))
        eng.run()
        assert seen == [1, 2]


class TestLimitConsistency:
    """Tripped safety limits must leave the queue consistent: the event
    that would have crossed the limit stays queued, so a caught limit can
    be followed by a resumed run."""

    def test_max_time_leaves_event_queued(self):
        eng = Engine()
        seen = []
        eng.schedule(100, seen.append, "late")
        with pytest.raises(SimTimeLimit):
            eng.run(max_time=50)
        # the offending event was not consumed and the clock did not jump
        assert seen == []
        assert eng.pending() == 1
        assert eng.now <= 50
        eng.run()  # resumed run with no limit executes it
        assert seen == ["late"]
        assert eng.now == 100

    def test_max_time_ignores_cancelled_events_beyond_limit(self):
        eng = Engine()
        seen = []
        eng.schedule(10, seen.append, "early")
        h = eng.schedule(100, seen.append, "cancelled")
        h.cancel()
        assert eng.run(max_time=50) == "drained"
        assert seen == ["early"]

    def test_max_events_leaves_event_queued(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule(i + 1, seen.append, i)
        with pytest.raises(SimTimeLimit):
            eng.run(max_events=3)
        assert seen == [0, 1, 2]
        assert eng.pending() == 2
        eng.run()
        assert seen == [0, 1, 2, 3, 4]


class TestPendingCounter:
    def test_pending_tracks_schedule_cancel_run(self):
        eng = Engine()
        handles = [eng.schedule(i + 1, lambda: None) for i in range(10)]
        assert eng.pending() == 10
        handles[3].cancel()
        assert eng.pending() == 9
        eng.run()
        assert eng.pending() == 0

    def test_pending_counts_fire_and_forget(self):
        eng = Engine()
        eng.call_after(5, lambda: None)
        eng.call_after(0, lambda: None)
        assert eng.pending() == 2
        eng.run()
        assert eng.pending() == 0


class TestSameTimeOrdering:
    def test_delay_zero_runs_after_same_time_heap_events(self):
        # an event at t that schedules a delay-0 child must see every
        # *earlier-scheduled* event at t run before the child (global
        # insertion order), even though the child bypasses the heap
        eng = Engine()
        seen = []

        def first():
            seen.append("first")
            eng.schedule(0, seen.append, "child")

        eng.schedule(5, first)
        eng.schedule(5, seen.append, "second")
        eng.run()
        assert seen == ["first", "second", "child"]

    def test_delay_zero_chains_preserve_fifo(self):
        eng = Engine()
        seen = []

        def spawn(tag, depth):
            seen.append(tag)
            if depth:
                eng.schedule(0, spawn, f"{tag}.{depth}", depth - 1)

        eng.schedule(1, spawn, "a", 2)
        eng.schedule(1, spawn, "b", 2)
        eng.run()
        assert seen == ["a", "b", "a.2", "b.2", "a.2.1", "b.2.1"]
        assert eng.now == 1


class TestClockMonotonicity:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
    def test_observed_times_nondecreasing(self, delays):
        eng = Engine()
        times = []
        for d in delays:
            eng.schedule(d, lambda: times.append(eng.now))
        eng.run()
        assert times == sorted(times)
        assert eng.now == max(delays)
