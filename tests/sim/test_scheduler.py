"""Unit tests for the Marcel scheduler: threads, effects, switching, idle."""

import pytest

from repro.sim import (
    Delay,
    Engine,
    Machine,
    SimDeadlock,
    SimThreadError,
    Sleep,
    ThreadState,
    YieldCore,
    quad_xeon_x5460,
    uniform,
)
from repro.sim.process import Block


def make_machine(ncores=4, **kw):
    eng = Engine()
    topo = quad_xeon_x5460() if ncores == 4 else uniform(ncores)
    return eng, Machine(eng, topo, **kw)


class TestSpawnAndRun:
    def test_thread_runs_to_completion(self):
        eng, m = make_machine()

        def work():
            yield Delay(100)
            return 42

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert t.result == 42
        assert t.state is ThreadState.DONE
        assert eng.now == 100

    def test_spawn_requires_generator(self):
        _, m = make_machine()
        with pytest.raises(TypeError):
            m.scheduler.spawn(lambda: None, name="bad")

    def test_spawn_bad_core(self):
        _, m = make_machine()
        with pytest.raises(ValueError):
            m.scheduler.spawn(iter([]), core=99)

    def test_delays_accumulate_time(self):
        eng, m = make_machine()

        def work():
            yield Delay(100)
            yield Delay(250)

        t = m.scheduler.spawn(work(), name="w", core=0)
        eng.run(until=lambda: t.done)
        assert eng.now == 350
        assert m.cores[0].busy_ns("compute") == 350

    def test_delay_category_accounting(self):
        eng, m = make_machine()

        def work():
            yield Delay(100, "poll")
            yield Delay(50, "compute")

        t = m.scheduler.spawn(work(), name="w", core=2)
        eng.run(until=lambda: t.done)
        assert m.cores[2].busy_ns("poll") == 100
        assert m.cores[2].busy_ns("compute") == 50

    def test_zero_delay_is_inline(self):
        eng, m = make_machine()

        def work():
            for _ in range(5):
                yield Delay(0)
            return "ok"

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert t.result == "ok"
        assert eng.now == 0

    def test_exception_propagates_as_sim_thread_error(self):
        eng, m = make_machine()

        def bad():
            yield Delay(10)
            raise RuntimeError("boom")

        m.scheduler.spawn(bad(), name="bad")
        with pytest.raises(SimThreadError):
            eng.run(until=lambda: False)
        with pytest.raises(SimThreadError):
            m.check_failures()

    def test_two_threads_on_different_cores_run_in_parallel(self):
        eng, m = make_machine()

        def work():
            yield Delay(1000)

        t1 = m.scheduler.spawn(work(), name="a", core=0, bound=True)
        t2 = m.scheduler.spawn(work(), name="b", core=1, bound=True)
        eng.run(until=lambda: t1.done and t2.done)
        assert eng.now == 1000  # true parallelism

    def test_two_threads_one_core_serialize(self):
        eng, m = make_machine()
        costs = m.costs

        def work():
            yield Delay(1000)

        t1 = m.scheduler.spawn(work(), name="a", core=0, bound=True)
        t2 = m.scheduler.spawn(work(), name="b", core=0, bound=True)
        eng.run(until=lambda: t1.done and t2.done)
        # serialized plus one context switch between them
        assert eng.now == 2000 + costs.ctx_switch_ns

    def test_unbound_threads_balance_across_cores(self):
        eng, m = make_machine()

        def work():
            yield Delay(500)

        threads = [m.scheduler.spawn(work(), name=f"t{i}") for i in range(4)]
        eng.run(until=lambda: all(t.done for t in threads))
        assert eng.now == 500
        assert sorted({t.placed_on for t in threads}) == [0, 1, 2, 3]

    def test_live_threads_counter(self):
        eng, m = make_machine()

        def work():
            yield Delay(10)

        t = m.scheduler.spawn(work(), name="w")
        assert m.scheduler.live_threads == 1
        eng.run(until=lambda: t.done)
        assert m.scheduler.live_threads == 0


class TestYieldAndSwitch:
    def test_yield_alternates_threads(self):
        eng, m = make_machine()
        order = []

        def work(tag):
            for _ in range(3):
                order.append(tag)
                yield YieldCore()

        t1 = m.scheduler.spawn(work("a"), name="a", core=0, bound=True)
        t2 = m.scheduler.spawn(work("b"), name="b", core=0, bound=True)
        eng.run(until=lambda: t1.done and t2.done)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_yield_with_empty_runq_continues(self):
        eng, m = make_machine()

        def work():
            yield YieldCore()
            yield Delay(10)
            return "done"

        t = m.scheduler.spawn(work(), name="solo", core=0)
        eng.run(until=lambda: t.done)
        assert t.result == "done"

    def test_context_switch_cost_charged(self):
        eng, m = make_machine()

        def work():
            yield Delay(100)

        t1 = m.scheduler.spawn(work(), name="a", core=0, bound=True)
        t2 = m.scheduler.spawn(work(), name="b", core=0, bound=True)
        eng.run(until=lambda: t1.done and t2.done)
        assert m.scheduler.ctx_switches == 1
        assert m.cores[0].busy_ns("ctxswitch") == m.costs.ctx_switch_ns


class TestBlockWake:
    def test_block_and_wake_value(self):
        eng, m = make_machine()
        box = []

        def waiter():
            value = yield Block(queue=box, reason="test")
            return value

        t = m.scheduler.spawn(waiter(), name="w", core=0)
        eng.run(until=lambda: bool(box))
        assert t.state is ThreadState.BLOCKED
        m.scheduler.wake(box.pop(), "hello")
        eng.run(until=lambda: t.done)
        assert t.result == "hello"

    def test_wake_with_delay(self):
        eng, m = make_machine()
        box = []

        def waiter():
            yield Block(queue=box)

        t = m.scheduler.spawn(waiter(), name="w", core=0)
        eng.run(until=lambda: bool(box))
        t0 = eng.now
        m.scheduler.wake(box.pop(), delay_ns=400)
        eng.run(until=lambda: t.done)
        assert eng.now >= t0 + 400

    def test_wake_non_blocked_rejected(self):
        eng, m = make_machine()

        def work():
            yield Delay(10)

        t = m.scheduler.spawn(work(), name="w")
        from repro.sim.errors import SimProtocolError

        with pytest.raises(SimProtocolError):
            m.scheduler.wake(t)

    def test_wake_done_thread_is_noop(self):
        eng, m = make_machine()

        def work():
            yield Delay(1)

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        m.scheduler.wake(t)  # no raise

    def test_core_freed_while_blocked(self):
        eng, m = make_machine()
        box = []

        def waiter():
            yield Block(queue=box)

        def other():
            yield Delay(100)
            return "ran"

        tw = m.scheduler.spawn(waiter(), name="w", core=0, bound=True)
        eng.run(until=lambda: bool(box))
        to = m.scheduler.spawn(other(), name="o", core=0, bound=True)
        eng.run(until=lambda: to.done)
        assert to.result == "ran"
        assert not tw.done


class TestSleep:
    def test_timed_sleep_elapses(self):
        eng, m = make_machine()

        def sleeper():
            full = yield Sleep(500)
            return full

        t = m.scheduler.spawn(sleeper(), name="s")
        eng.run(until=lambda: t.done)
        assert t.result is True
        assert eng.now == 500

    def test_kick_interrupts_sleep(self):
        eng, m = make_machine()

        def sleeper():
            full = yield Sleep(10_000)
            return full

        t = m.scheduler.spawn(sleeper(), name="s")
        eng.run(until=lambda: t.state is ThreadState.SLEEPING)
        m.scheduler.kick(t)
        eng.run(until=lambda: t.done)
        assert t.result is False
        assert eng.now < 10_000

    def test_infinite_sleep_requires_kick(self):
        eng, m = make_machine()

        def sleeper():
            yield Sleep(None)
            return "woke"

        t = m.scheduler.spawn(sleeper(), name="s")
        eng.run(until=lambda: t.state is ThreadState.SLEEPING)
        assert eng.pending() == 0
        m.scheduler.kick(t)
        eng.run(until=lambda: t.done)
        assert t.result == "woke"

    def test_kick_non_sleeping_is_noop(self):
        eng, m = make_machine()

        def work():
            yield Delay(10)

        t = m.scheduler.spawn(work(), name="w")
        m.scheduler.kick(t)  # READY, not sleeping: no-op
        eng.run(until=lambda: t.done)

    def test_sleep_frees_core(self):
        eng, m = make_machine()

        def sleeper():
            yield Sleep(1_000)

        def worker():
            yield Delay(100)
            return eng.now

        ts = m.scheduler.spawn(sleeper(), name="s", core=0, bound=True)
        tw = m.scheduler.spawn(worker(), name="w", core=0, bound=True)
        eng.run(until=lambda: ts.done and tw.done)
        # worker ran during the sleep, not after it
        assert tw.result <= 1_000


class TestJoin:
    def test_join_returns_result(self):
        eng, m = make_machine()

        def child():
            yield Delay(200)
            return "payload"

        def parent():
            c = m.scheduler.spawn(child(), name="c", core=1)
            value = yield from m.scheduler.join(c)
            return value

        t = m.scheduler.spawn(parent(), name="p", core=0)
        eng.run(until=lambda: t.done)
        assert t.result == "payload"

    def test_join_already_done(self):
        eng, m = make_machine()

        def child():
            yield Delay(1)
            return 7

        c = m.scheduler.spawn(child(), name="c")
        eng.run(until=lambda: c.done)

        def parent():
            value = yield from m.scheduler.join(c)
            return value

        t = m.scheduler.spawn(parent(), name="p")
        eng.run(until=lambda: t.done)
        assert t.result == 7


class TestIdleLoop:
    def test_idle_thread_spawned_per_core(self):
        _, m = make_machine()
        m.enable_idle_loops()
        assert all(c.idle_thread is not None for c in m.cores)

    def test_enable_idle_loops_idempotent(self):
        _, m = make_machine()
        m.enable_idle_loops()
        m.enable_idle_loops()

    def test_idle_hook_runs_when_core_idle(self):
        eng, m = make_machine()
        hits = []

        def hook(core):
            hits.append(core.index)
            yield Delay(10, "poll")
            return False

        m.hooks.register_idle(hook)
        m.enable_idle_loops(cores=[3])
        eng.run(until=lambda: len(hits) >= 1, max_time=1_000_000)
        assert hits and hits[0] == 3

    def test_idle_parks_without_demand(self):
        eng, m = make_machine()
        hits = []

        def hook(core):
            hits.append(eng.now)
            yield Delay(10, "poll")
            return False

        m.hooks.register_idle(hook)
        m.enable_idle_loops(cores=[0])
        eng.run(until=lambda: len(hits) >= 1, max_time=1_000_000)
        # no demand provider: after one fruitless pass the idle thread parks
        eng.run(until=lambda: m.cores[0].idle_thread.state is ThreadState.SLEEPING)
        assert eng.pending() == 0

    def test_idle_keeps_polling_under_demand(self):
        eng, m = make_machine()
        hits = []
        demand_on = [True]

        def hook(core):
            hits.append(eng.now)
            yield Delay(10, "poll")
            return False

        m.hooks.register_idle(hook)
        m.hooks.register_demand(lambda: demand_on[0])
        m.enable_idle_loops(cores=[0])
        eng.run(until=lambda: len(hits) >= 5, max_time=1_000_000)
        assert len(hits) >= 5

    def test_real_thread_preempts_idle(self):
        eng, m = make_machine()

        def hook(core):
            yield Delay(50, "poll")
            return True  # always busy polling

        m.hooks.register_idle(hook)
        m.enable_idle_loops(cores=[0])
        eng.run(until=lambda: eng.now >= 500, max_time=1_000_000)

        def work():
            yield Delay(10)
            return eng.now

        t = m.scheduler.spawn(work(), name="w", core=0, bound=True)
        eng.run(until=lambda: t.done, max_time=1_000_000)
        # the idle loop let the real thread in promptly (within a hook pass
        # plus switch costs)
        assert t.result - 500 < 2_000

    def test_shutdown_stops_idle_loops(self):
        eng, m = make_machine()
        m.hooks.register_demand(lambda: True)

        def hook(core):
            yield Delay(10, "poll")
            return False

        m.hooks.register_idle(hook)
        m.enable_idle_loops()
        eng.run(until=lambda: eng.now > 1_000, max_time=1_000_000)
        m.shutdown()
        assert eng.run() == "drained"


class TestSpinDeadlockDetection:
    def test_bound_same_core_spin_detected(self):
        from repro.sim import Acquire, SpinLock

        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def holder():
            yield Acquire(lock)
            yield Delay(10_000)

        def contender():
            yield Acquire(lock)

        m.scheduler.spawn(holder(), name="h", core=0, bound=True)
        m.scheduler.spawn(contender(), name="c", core=0, bound=True)
        with pytest.raises(SimDeadlock):
            eng.run(until=lambda: False, max_time=1_000_000)

    def test_self_reacquire_detected(self):
        from repro.sim import Acquire, SpinLock

        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def bad():
            yield Acquire(lock)
            yield Acquire(lock)

        m.scheduler.spawn(bad(), name="b", core=0)
        with pytest.raises(SimDeadlock):
            eng.run(until=lambda: False, max_time=1_000_000)
