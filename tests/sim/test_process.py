"""Unit tests for the effect protocol and inline (interrupt) execution."""

import pytest

from repro.sim import Delay, NullLock, Sleep, SpinLock, TryAcquire, run_inline, sequence
from repro.sim.errors import SimProtocolError
from repro.sim.process import Block, Release, SimThread


class TestEffectValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-5)

    def test_sleep_none_allowed(self):
        assert Sleep(None).ns is None

    def test_delay_repr(self):
        assert "poll" in repr(Delay(10, "poll"))


class TestRunInline:
    def test_sums_delays_and_returns_value(self):
        def gen():
            yield Delay(100)
            yield Delay(50)
            return "done"

        ns, value = run_inline(gen())
        assert ns == 150
        assert value == "done"

    def test_empty_generator(self):
        def gen():
            return 7
            yield  # pragma: no cover

        ns, value = run_inline(gen())
        assert ns == 0
        assert value == 7

    def test_tryacquire_on_free_lock(self):
        lock = SpinLock("l")

        def gen():
            got = yield TryAcquire(lock)
            yield Release(lock)
            return got

        ns, got = run_inline(gen())
        assert got is True
        assert not lock.held
        assert ns == lock.acquire_ns + lock.release_ns

    def test_tryacquire_on_held_lock_fails(self):
        lock = SpinLock("l")
        holder = SimThread(iter([]), "h")
        lock._grant(holder)

        def gen():
            got = yield TryAcquire(lock)
            return got

        _, got = run_inline(gen())
        assert got is False
        assert lock.owner is holder

    def test_null_lock_inline(self):
        lock = NullLock()

        def gen():
            got = yield TryAcquire(lock)
            yield Release(lock)
            return got

        _, got = run_inline(gen())
        assert got is True

    def test_blocking_effect_rejected(self):
        def gen():
            yield Block()

        with pytest.raises(SimProtocolError):
            run_inline(gen())

    def test_sleep_rejected(self):
        def gen():
            yield Sleep(10)

        with pytest.raises(SimProtocolError):
            run_inline(gen())


class TestSimThread:
    def test_on_finish_after_done_fires_immediately(self):
        t = SimThread(iter([]), "t")
        t._finish("r", None)
        seen = []
        t.on_finish(lambda th: seen.append(th.result))
        assert seen == ["r"]

    def test_finish_records_exception(self):
        t = SimThread(iter([]), "t")
        exc = RuntimeError("x")
        t._finish(None, exc)
        assert t.failed
        assert t.exc is exc

    def test_unique_tids(self):
        a = SimThread(iter([]), "a")
        b = SimThread(iter([]), "b")
        assert a.tid != b.tid


class TestSequence:
    def test_yields_in_order(self):
        effs = [Delay(1), Delay(2)]
        gen = sequence(effs)
        assert next(gen) is effs[0]
        assert gen.send(None) is effs[1]
        with pytest.raises(StopIteration):
            gen.send(None)
