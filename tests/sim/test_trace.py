"""Unit tests for the execution tracer."""

import pytest

from repro.sim import (
    Acquire,
    Block,
    Delay,
    Engine,
    Machine,
    Release,
    SpinLock,
    quad_xeon_x5460,
)
from repro.sim.trace import Tracer


def traced_machine():
    eng = Engine()
    m = Machine(eng, quad_xeon_x5460())
    tracer = Tracer()
    m.attach_tracer(tracer)
    return eng, m, tracer


class TestTracerBasics:
    def test_dispatch_and_retire_recorded(self):
        eng, m, tracer = traced_machine()

        def work():
            yield Delay(100)

        t = m.scheduler.spawn(work(), name="w", core=0)
        eng.run(until=lambda: t.done)
        kinds = tracer.counts()
        assert kinds.get("dispatch") == 1
        assert kinds.get("retire") == 1
        assert tracer.of_thread("w")

    def test_context_switch_recorded(self):
        eng, m, tracer = traced_machine()

        def work():
            yield Delay(100)

        t1 = m.scheduler.spawn(work(), name="a", core=0, bound=True)
        t2 = m.scheduler.spawn(work(), name="b", core=0, bound=True)
        eng.run(until=lambda: t1.done and t2.done)
        switches = tracer.of_kind("switch")
        assert len(switches) == 1
        assert switches[0].thread == "b"
        assert "from a" in switches[0].detail

    def test_block_wake_latency(self):
        eng, m, tracer = traced_machine()
        box = []

        def waiter():
            yield Block(queue=box, reason="test")

        t = m.scheduler.spawn(waiter(), name="w", core=0)
        eng.run(until=lambda: bool(box))
        eng.schedule(500, lambda: m.scheduler.wake(box.pop()))
        eng.run(until=lambda: t.done)
        lats = tracer.block_latencies()
        assert len(lats) == 1
        assert lats[0][0] == "w"
        assert lats[0][1] >= 500

    def test_spin_episodes(self):
        eng, m, tracer = traced_machine()
        lock = SpinLock("l", costs=m.costs)

        def holder():
            yield Acquire(lock)
            yield Delay(2_000)
            yield Release(lock)

        def contender():
            yield Acquire(lock)
            yield Release(lock)

        th = m.scheduler.spawn(holder(), name="h", core=0, bound=True)
        tc = m.scheduler.spawn(contender(), name="c", core=1, bound=True)
        eng.run(until=lambda: th.done and tc.done)
        episodes = tracer.spin_episodes()
        assert len(episodes) == 1
        thread, _start, duration = episodes[0]
        assert thread == "c"
        assert duration > 1_000
        assert tracer.spin_time_ns() == duration

    def test_no_tracer_no_overhead_path(self):
        # machines without a tracer must run identically (smoke)
        eng = Engine()
        m = Machine(eng, quad_xeon_x5460())
        assert m.tracer is None

        def work():
            yield Delay(10)

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)


class TestTracerQueries:
    def test_between(self):
        tracer = Tracer()

        class FakeThread:
            name = "x"

        for time in (10, 20, 30):
            tracer.record(time, "dispatch", FakeThread(), 0)
        assert len(tracer.between(15, 30)) == 1

    def test_bounded(self):
        tracer = Tracer(max_events=2)

        class FakeThread:
            name = "x"

        for time in range(5):
            tracer.record(time, "dispatch", FakeThread(), 0)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_ring_buffer_keeps_newest(self):
        # overflow must evict the OLDEST events: end-of-run reports read
        # the tail of the run, so a tracer that kept the first N and
        # silently dropped everything after would hide exactly the window
        # every report looks at
        tracer = Tracer(max_events=3)

        class FakeThread:
            name = "x"

        for time in range(10):
            tracer.record(time, "dispatch", FakeThread(), 0)
        assert [e.time for e in tracer.events] == [7, 8, 9]
        assert tracer.dropped == 7
        assert tracer.counts()["dropped"] == 7

    def test_dropped_zero_when_no_overflow(self):
        tracer = Tracer(max_events=5)

        class FakeThread:
            name = "x"

        tracer.record(0, "dispatch", FakeThread(), 0)
        assert tracer.dropped == 0
        assert tracer.counts()["dropped"] == 0

    def test_summary_table_reports_drops(self):
        tracer = Tracer(max_events=2)

        class FakeThread:
            name = "x"

        for time in range(5):
            tracer.record(time, "dispatch", FakeThread(), 0)
        table = tracer.summary_table()
        assert "3 event(s) dropped" in table
        assert "partial" in table

    def test_reentrant_spin_pairing(self):
        # two spin-begins before any spin-end (re-entrant / nested):
        # each end must pair with the MOST RECENT unmatched begin; the
        # old dict-based tracker overwrote the outer episode's start
        tracer = Tracer()

        class FakeThread:
            name = "x"

        tracer.record(100, "spin-begin", FakeThread(), 0)
        tracer.record(150, "spin-begin", FakeThread(), 0)
        tracer.record(160, "spin-end", FakeThread(), 0)
        tracer.record(300, "spin-end", FakeThread(), 0)
        episodes = tracer.spin_episodes()
        assert ("x", 150, 10) in episodes  # inner
        assert ("x", 100, 200) in episodes  # outer — was lost before
        assert tracer.spin_time_ns() == 210

    def test_block_pairing_survives_double_begin(self):
        tracer = Tracer()

        class T:
            def __init__(self, name):
                self.name = name

        a, b = T("a"), T("b")
        tracer.record(10, "block", a, 0)
        tracer.record(20, "block", b, 1)
        tracer.record(25, "block", a, 0)  # re-entrant begin for a
        tracer.record(30, "wake", a, 0)
        tracer.record(50, "wake", b, 1)
        lats = tracer.block_latencies()
        assert ("a", 5) in lats
        assert ("b", 30) in lats

    def test_end_without_begin_skipped(self):
        # the matching begin fell off the ring buffer: the end must not
        # pair with some other thread's begin or crash
        tracer = Tracer()

        class FakeThread:
            name = "x"

        tracer.record(40, "spin-end", FakeThread(), 0)
        assert tracer.spin_episodes() == []

    def test_unknown_kind_rejected(self):
        tracer = Tracer()

        class FakeThread:
            name = "x"

        with pytest.raises(ValueError):
            tracer.record(0, "teleport", FakeThread(), 0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_summary_and_dump(self):
        eng, m, tracer = traced_machine()

        def work():
            yield Delay(100)

        t = m.scheduler.spawn(work(), name="w", core=0)
        eng.run(until=lambda: t.done)
        table = tracer.summary_table()
        assert "w" in table and "dispatches" in table
        lines = list(tracer.dump(limit=1))
        assert len(lines) == 1
        full = "\n".join(tracer.dump())
        assert "dispatch" in full and "retire" in full


class TestTracedPingpong:
    def test_passive_wait_trace_shows_block_wake_cycle(self):
        from repro.bench.pingpong import run_pingpong
        from repro.core import PassiveWait, build_testbed
        from repro.pioman import attach_pioman

        bed = build_testbed(policy="fine")
        tracer = Tracer()
        bed.machine(0).attach_tracer(tracer)
        for node in (0, 1):
            attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[0])
        run_pingpong(bed, 8, iterations=4, warmup=1, wait_factory=PassiveWait)
        counts = tracer.counts()
        assert counts.get("block", 0) >= 4  # the app blocked each iteration
        assert counts.get("wake", 0) >= 4
        assert counts.get("switch", 0) >= 4
