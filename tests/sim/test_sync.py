"""Unit tests for simulated synchronisation primitives."""

import pytest

from repro.sim import (
    Acquire,
    Completion,
    Condition,
    Delay,
    Engine,
    Machine,
    NullLock,
    Release,
    Semaphore,
    SpinLock,
    ThreadState,
    TryAcquire,
    quad_xeon_x5460,
    with_lock,
)
from repro.sim.errors import SimProtocolError


def make_machine():
    eng = Engine()
    return eng, Machine(eng, quad_xeon_x5460())


class TestSpinLockCosts:
    def test_uncontended_cycle_costs_70ns(self):
        """Paper §3.1: each acquire/release cycle costs 70 ns."""
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def work():
            yield Acquire(lock)
            yield Release(lock)

        t = m.scheduler.spawn(work(), name="w", core=0)
        eng.run(until=lambda: t.done)
        assert eng.now == 70
        assert m.cores[0].busy_ns("lock") == 70

    def test_acquisition_stats(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def work():
            for _ in range(3):
                yield Acquire(lock)
                yield Release(lock)

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert lock.acquisitions == 3
        assert lock.contentions == 0

    def test_contention_spins_actively(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def holder():
            yield Acquire(lock)
            yield Delay(1_000)
            yield Release(lock)

        def contender():
            yield Acquire(lock)
            yield Release(lock)
            return eng.now

        th = m.scheduler.spawn(holder(), name="h", core=0, bound=True)
        tc = m.scheduler.spawn(contender(), name="c", core=1, bound=True)
        eng.run(until=lambda: th.done and tc.done)
        assert lock.contentions == 1
        # contender burned spin time on core 1 while waiting
        assert m.cores[1].busy_ns("spin") > 0
        # and got the lock right after the holder released it
        assert tc.result == pytest.approx(1_000 + 70 + 70 + m.costs.spin_handoff_ns, abs=40)

    def test_fifo_handoff_order(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)
        order = []

        def holder():
            yield Acquire(lock)
            yield Delay(500)
            yield Release(lock)

        def contender(tag):
            yield Acquire(lock)
            order.append(tag)
            yield Release(lock)

        m.scheduler.spawn(holder(), name="h", core=0, bound=True)
        done = [
            m.scheduler.spawn(contender("first"), name="c1", core=1, bound=True),
        ]
        eng.run(until=lambda: eng.now >= 100)
        done.append(m.scheduler.spawn(contender("second"), name="c2", core=2, bound=True))
        eng.run(until=lambda: all(t.done for t in done))
        assert order == ["first", "second"]

    def test_release_by_non_owner_rejected(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def bad():
            yield Release(lock)

        m.scheduler.spawn(bad(), name="b")
        with pytest.raises(Exception):
            eng.run(until=lambda: False, max_time=1_000)


class TestNullLock:
    def test_free_and_instant(self):
        eng, m = make_machine()
        lock = NullLock()

        def work():
            yield Acquire(lock)
            yield Release(lock)

        t = m.scheduler.spawn(work(), name="w", core=0)
        eng.run(until=lambda: t.done)
        assert eng.now == 0
        assert m.cores[0].busy_ns() == 0

    def test_no_mutual_exclusion(self):
        eng, m = make_machine()
        lock = NullLock()

        def work():
            yield Acquire(lock)
            yield Delay(100)
            yield Release(lock)

        t1 = m.scheduler.spawn(work(), name="a", core=0, bound=True)
        t2 = m.scheduler.spawn(work(), name="b", core=1, bound=True)
        eng.run(until=lambda: t1.done and t2.done)
        assert eng.now == 100  # both proceeded concurrently


class TestTryAcquire:
    def test_success_on_free_lock(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def work():
            got = yield TryAcquire(lock)
            if got:
                yield Release(lock)
            return got

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert t.result is True

    def test_failure_on_held_lock(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def holder():
            yield Acquire(lock)
            yield Delay(10_000)
            yield Release(lock)

        def trier():
            got = yield TryAcquire(lock)
            return got

        m.scheduler.spawn(holder(), name="h", core=0, bound=True)
        eng.run(until=lambda: lock.held)
        t = m.scheduler.spawn(trier(), name="t", core=1, bound=True)
        eng.run(until=lambda: t.done)
        assert t.result is False

    def test_null_lock_always_succeeds(self):
        eng, m = make_machine()

        def work():
            got = yield TryAcquire(NullLock())
            return got

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert t.result is True


class TestWithLock:
    def test_wraps_body(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def body():
            assert lock.held
            yield Delay(10)
            return "inner"

        def work():
            result = yield from with_lock(lock, body())
            assert not lock.held
            return result

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert t.result == "inner"


class TestSemaphore:
    def test_wait_on_positive_is_fast(self):
        eng, m = make_machine()
        sem = Semaphore(m, value=1)

        def work():
            yield from sem.wait()
            return eng.now

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert t.result == m.costs.sem_fast_ns
        assert sem.value == 0

    def test_wait_blocks_then_signal_wakes(self):
        eng, m = make_machine()
        sem = Semaphore(m, value=0)

        def waiter():
            yield from sem.wait()
            return eng.now

        def signaler():
            yield Delay(1_000)
            yield from sem.signal()

        tw = m.scheduler.spawn(waiter(), name="w", core=0, bound=True)
        m.scheduler.spawn(signaler(), name="s", core=1, bound=True)
        eng.run(until=lambda: tw.done)
        assert tw.result >= 1_000

    def test_signal_without_waiter_increments(self):
        eng, m = make_machine()
        sem = Semaphore(m, value=0)

        def signaler():
            yield from sem.signal(2)

        t = m.scheduler.spawn(signaler(), name="s")
        eng.run(until=lambda: t.done)
        assert sem.value == 2

    def test_post_from_event_context(self):
        eng, m = make_machine()
        sem = Semaphore(m, value=0)

        def waiter():
            yield from sem.wait()
            return "woke"

        t = m.scheduler.spawn(waiter(), name="w")
        eng.run(until=lambda: t.state is ThreadState.BLOCKED)
        eng.schedule(100, sem.post)
        eng.run(until=lambda: t.done)
        assert t.result == "woke"

    def test_try_wait(self):
        eng, m = make_machine()
        sem = Semaphore(m, value=1)
        results = []

        def work():
            results.append((yield from sem.try_wait()))
            results.append((yield from sem.try_wait()))

        t = m.scheduler.spawn(work(), name="w")
        eng.run(until=lambda: t.done)
        assert results == [True, False]

    def test_negative_initial_value_rejected(self):
        _, m = make_machine()
        with pytest.raises(ValueError):
            Semaphore(m, value=-1)

    def test_fifo_wakeups(self):
        eng, m = make_machine()
        sem = Semaphore(m, value=0)
        order = []

        def waiter(tag):
            yield from sem.wait()
            order.append(tag)

        t1 = m.scheduler.spawn(waiter("a"), name="a", core=0, bound=True)
        eng.run(until=lambda: t1.state is ThreadState.BLOCKED)
        t2 = m.scheduler.spawn(waiter("b"), name="b", core=1, bound=True)
        eng.run(until=lambda: t2.state is ThreadState.BLOCKED)
        sem.post(2)
        eng.run(until=lambda: t1.done and t2.done)
        assert order == ["a", "b"]


class TestCondition:
    def test_wait_releases_and_reacquires_lock(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)
        cond = Condition(m, lock)
        seen = []

        def waiter():
            yield Acquire(lock)
            yield from cond.wait()
            seen.append("woke-holding-lock" if lock.held else "woke-without-lock")
            yield Release(lock)

        def notifier():
            yield Delay(500)
            yield Acquire(lock)
            cond.notify()
            yield Release(lock)

        tw = m.scheduler.spawn(waiter(), name="w", core=0, bound=True)
        m.scheduler.spawn(notifier(), name="n", core=1, bound=True)
        eng.run(until=lambda: tw.done)
        assert seen == ["woke-holding-lock"]

    def test_notify_all(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)
        cond = Condition(m, lock)
        woke = []

        def waiter(tag, core):
            yield Acquire(lock)
            yield from cond.wait()
            woke.append(tag)
            yield Release(lock)

        ts = [
            m.scheduler.spawn(waiter(i, i), name=f"w{i}", core=i, bound=True)
            for i in range(3)
        ]
        eng.run(until=lambda: len(cond.waiters) == 3)
        cond.notify_all()
        eng.run(until=lambda: all(t.done for t in ts))
        assert sorted(woke) == [0, 1, 2]


class TestCompletion:
    def test_wait_then_fire(self):
        eng, m = make_machine()
        comp = Completion(m)

        def waiter():
            value = yield from comp.wait()
            return value

        t = m.scheduler.spawn(waiter(), name="w", core=0, bound=True)
        eng.run(until=lambda: t.state is ThreadState.BLOCKED)
        eng.schedule(100, comp.fire, "payload")
        eng.run(until=lambda: t.done)
        assert t.result == "payload"

    def test_fire_before_wait(self):
        eng, m = make_machine()
        comp = Completion(m)
        comp.fire("early")

        def waiter():
            value = yield from comp.wait()
            return value

        t = m.scheduler.spawn(waiter(), name="w")
        eng.run(until=lambda: t.done)
        assert t.result == "early"

    def test_double_fire_rejected(self):
        _, m = make_machine()
        comp = Completion(m)
        comp.fire()
        with pytest.raises(SimProtocolError):
            comp.fire()

    def test_cross_core_wake_pays_transfer_cost(self):
        """Fig. 8 mechanism: completion from core 2 to a waiter on core 0
        costs the no-shared-cache transfer (1.2 us on the quad Xeon)."""
        eng, m = make_machine()
        comp = Completion(m)

        def waiter():
            yield from comp.wait()
            return eng.now

        t = m.scheduler.spawn(waiter(), name="w", core=0, bound=True)
        eng.run(until=lambda: t.state is ThreadState.BLOCKED)
        fire_at = eng.now + 100

        def do_fire():
            comp.fire(core=2)

        eng.schedule_at(fire_at, do_fire)
        eng.run(until=lambda: t.done)
        assert t.result >= fire_at + 1_200

    def test_same_l2_wake_cheaper(self):
        eng, m = make_machine()
        comp = Completion(m)

        def waiter():
            yield from comp.wait()
            return eng.now

        t = m.scheduler.spawn(waiter(), name="w", core=0, bound=True)
        eng.run(until=lambda: t.state is ThreadState.BLOCKED)
        fire_at = eng.now + 100
        eng.schedule_at(fire_at, lambda: comp.fire(core=1))
        eng.run(until=lambda: t.done)
        assert fire_at + 400 <= t.result < fire_at + 1_200

    def test_visibility_delay_for_busy_waiters(self):
        eng, m = make_machine()
        comp = Completion(m)
        comp.fire(core=2)
        # immediately after firing, core 0 does not see it yet
        assert not comp.visible(0)
        assert comp.visible(2)
        # after the transfer delay it becomes visible
        eng.schedule(1_200, lambda: None)
        eng.run()
        assert comp.visible(0)

    def test_visibility_without_core_is_immediate(self):
        _, m = make_machine()
        comp = Completion(m)
        comp.fire()
        assert comp.visible(0) and comp.visible(3)
