"""Unit tests for per-core timer interrupts."""

import pytest

from repro.sim import Delay, Engine, Machine, TimerSystem, quad_xeon_x5460


def make_machine():
    eng = Engine()
    return eng, Machine(eng, quad_xeon_x5460())


class TestTimerSystem:
    def test_ticks_at_period(self):
        eng, m = make_machine()
        timers = TimerSystem(m, period_ns=1_000)
        timers.start(cores=[0])
        eng.run(until=lambda: timers.ticks >= 3, max_time=100_000)
        assert eng.now == 3_000

    def test_overhead_accounted(self):
        eng, m = make_machine()
        timers = TimerSystem(m, period_ns=1_000)
        timers.start(cores=[2])
        eng.run(until=lambda: timers.ticks >= 2, max_time=100_000)
        assert m.cores[2].busy_ns("timer") == 2 * m.costs.timer_overhead_ns

    def test_timer_hooks_run_inline(self):
        eng, m = make_machine()
        hits = []

        def hook(core):
            hits.append(core.index)
            yield Delay(40)

        m.hooks.register_timer(hook)
        timers = TimerSystem(m, period_ns=500)
        timers.start(cores=[1])
        eng.run(until=lambda: len(hits) >= 2, max_time=100_000)
        assert hits == [1, 1]
        # the hook's inline cost is folded into the timer accounting
        assert m.cores[1].busy_ns("timer") == 2 * (m.costs.timer_overhead_ns + 40)

    def test_stop_cancels(self):
        eng, m = make_machine()
        timers = TimerSystem(m, period_ns=1_000)
        timers.start()
        eng.run(until=lambda: timers.ticks >= 1, max_time=100_000)
        timers.stop()
        assert not timers.running
        assert eng.run() == "drained"

    def test_default_period_from_costs(self):
        _, m = make_machine()
        assert TimerSystem(m).period_ns == m.costs.timer_period_ns

    def test_bad_period_rejected(self):
        _, m = make_machine()
        with pytest.raises(ValueError):
            TimerSystem(m, period_ns=0)

    def test_tick_pokes_idle_loop(self):
        eng, m = make_machine()
        hits = []

        def idle_hook(core):
            hits.append(eng.now)
            yield Delay(10, "poll")
            return False

        m.hooks.register_idle(idle_hook)
        m.enable_idle_loops(cores=[0])
        # no demand: the idle loop parks after its first pass...
        eng.run(until=lambda: len(hits) >= 1, max_time=10_000_000)
        # ...but timer ticks re-poke it
        timers = TimerSystem(m, period_ns=10_000)
        timers.start(cores=[0])
        eng.run(until=lambda: len(hits) >= 3, max_time=10_000_000)
        assert len(hits) >= 3

    def test_start_idempotent_per_core(self):
        eng, m = make_machine()
        timers = TimerSystem(m, period_ns=1_000)
        timers.start(cores=[0])
        timers.start(cores=[0])
        eng.run(until=lambda: timers.ticks >= 2, max_time=100_000)
        assert timers.ticks == 2  # not doubled
