"""Tests for the invariant checker (and that real scenarios satisfy it)."""

import pytest

from repro.sim import (
    Acquire,
    Delay,
    Engine,
    Machine,
    Release,
    SpinLock,
    ThreadState,
    quad_xeon_x5460,
)
from repro.sim.debug import InvariantViolation, check_invariants, check_lock_invariants
from repro.sim.process import SimThread


def make_machine():
    eng = Engine()
    return eng, Machine(eng, quad_xeon_x5460())


class TestCleanScenarios:
    def test_fresh_machine_passes(self):
        _, m = make_machine()
        check_invariants(m)

    def test_mid_run_passes(self):
        eng, m = make_machine()

        def work():
            for _ in range(3):
                yield Delay(100)

        threads = [
            m.scheduler.spawn(work(), name=f"w{i}", core=i % 4, bound=True)
            for i in range(6)
        ]
        for _ in range(10):
            eng.run(until=lambda: True)  # single event steps
            check_invariants(m)
        eng.run(until=lambda: all(t.done for t in threads))
        check_invariants(m)

    def test_pingpong_scenario_passes(self):
        from repro.bench.pingpong import run_pingpong
        from repro.core import build_testbed

        bed = build_testbed(policy="fine")
        run_pingpong(bed, 64, iterations=4, warmup=1)
        for machine in bed.machines:
            check_invariants(machine)
        for lib in bed.libs:
            check_lock_invariants(lib.policy.lock_objects())

    def test_contended_locks_pass(self):
        eng, m = make_machine()
        lock = SpinLock("l", costs=m.costs)

        def worker():
            for _ in range(3):
                yield Acquire(lock)
                yield Delay(500)
                yield Release(lock)

        threads = [
            m.scheduler.spawn(worker(), name=f"w{i}", core=i, bound=True)
            for i in range(3)
        ]
        eng.run(until=lambda: all(t.done for t in threads))
        check_invariants(m)
        check_lock_invariants([lock])


class TestViolationsDetected:
    def test_current_state_mismatch(self):
        eng, m = make_machine()

        def work():
            yield Delay(1_000)

        t = m.scheduler.spawn(work(), name="w", core=0)
        eng.run(until=lambda: m.cores[0].current is t)
        t.state = ThreadState.BLOCKED  # corrupt
        with pytest.raises(InvariantViolation, match="occupies core"):
            check_invariants(m)

    def test_placed_on_mismatch(self):
        eng, m = make_machine()

        def work():
            yield Delay(1_000)

        t = m.scheduler.spawn(work(), name="w", core=0)
        eng.run(until=lambda: m.cores[0].current is t)
        t.placed_on = 2  # corrupt
        with pytest.raises(InvariantViolation, match="placed_on"):
            check_invariants(m)

    def test_runq_state_mismatch(self):
        _, m = make_machine()
        ghost = SimThread(iter([]), "ghost")
        ghost.state = ThreadState.BLOCKED
        m.cores[1].runq.append(ghost)
        with pytest.raises(InvariantViolation, match="queued on core"):
            check_invariants(m)

    def test_negative_accounting(self):
        _, m = make_machine()
        m.cores[0]._busy["compute"] = -5
        with pytest.raises(InvariantViolation, match="negative"):
            check_invariants(m)

    def test_overrun_accounting(self):
        _, m = make_machine()
        m.cores[0]._busy["compute"] = 10_000  # engine.now == 0
        with pytest.raises(InvariantViolation, match="busy"):
            check_invariants(m)

    def test_lock_owned_by_finished_thread(self):
        _, m = make_machine()
        lock = SpinLock("l", costs=m.costs)
        dead = SimThread(iter([]), "dead")
        dead._finish(None, None)
        lock._grant(dead)
        with pytest.raises(InvariantViolation, match="finished thread"):
            check_lock_invariants([lock])

    def test_spinner_state_mismatch(self):
        _, m = make_machine()
        lock = SpinLock("l", costs=m.costs)
        holder = SimThread(iter([]), "h")
        lock._grant(holder)
        fake = SimThread(iter([]), "f")
        fake.state = ThreadState.READY
        lock.spinners.append(fake)
        with pytest.raises(InvariantViolation, match="spinner"):
            check_lock_invariants([lock])
