"""Unit tests for cache topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import topology as topo


class TestQuadXeon:
    """The paper's quad-core Xeon X5460: {0,1} and {2,3} share L2s."""

    def setup_method(self):
        self.t = topo.quad_xeon_x5460()

    def test_ncores(self):
        assert self.t.ncores == 4

    def test_shared_l2_pairs(self):
        assert self.t.shares_l2(0, 1)
        assert self.t.shares_l2(2, 3)
        assert not self.t.shares_l2(0, 2)
        assert not self.t.shares_l2(1, 3)

    def test_all_same_chip(self):
        for a in range(4):
            for b in range(4):
                assert self.t.same_chip(a, b)

    def test_paper_costs(self):
        # Fig. 8: same core free, shared cache +400 ns, no shared cache +1.2 us
        assert self.t.transfer_ns(0, 0) == 0
        assert self.t.transfer_ns(0, 1) == 400
        assert self.t.transfer_ns(0, 2) == 1_200
        assert self.t.transfer_ns(0, 3) == 1_200

    def test_distance_labels(self):
        assert self.t.distance(0, 0) == "same-core"
        assert self.t.distance(0, 1) == "shared-l2"
        assert self.t.distance(0, 3) == "same-chip"


class TestDualQuadXeon:
    """§4.1 in-text: dual quad-core results: 400 ns / 2.3 us / 3.1 us."""

    def setup_method(self):
        self.t = topo.dual_quad_xeon()

    def test_ncores(self):
        assert self.t.ncores == 8

    def test_paper_costs(self):
        assert self.t.transfer_ns(0, 1) == 400
        assert self.t.transfer_ns(0, 2) == 2_300
        assert self.t.transfer_ns(0, 3) == 2_300
        for other in (4, 5, 6, 7):
            assert self.t.transfer_ns(0, other) == 3_100

    def test_chips(self):
        assert self.t.same_chip(0, 3)
        assert not self.t.same_chip(0, 4)
        assert self.t.distance(0, 4) == "cross-chip"


class TestSymmetryAndValidation:
    @given(st.integers(0, 7), st.integers(0, 7))
    def test_transfer_symmetric(self, a, b):
        t = topo.dual_quad_xeon()
        assert t.transfer_ns(a, b) == t.transfer_ns(b, a)

    @given(st.integers(0, 7))
    def test_self_transfer_free(self, a):
        assert topo.dual_quad_xeon().transfer_ns(a, a) == 0

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError):
            topo.quad_xeon_x5460().transfer_ns(0, 9)

    def test_duplicate_core_in_l2_groups(self):
        with pytest.raises(ValueError):
            topo.CacheTopology("bad", ((0, 1), (1,)), ((0, 1),))

    def test_l2_group_spanning_chips(self):
        with pytest.raises(ValueError):
            topo.CacheTopology("bad", ((0, 1),), ((0,), (1,)))

    def test_non_contiguous_cores(self):
        with pytest.raises(ValueError):
            topo.CacheTopology("bad", ((0, 2),), ((0, 2),))

    def test_l2_chip_cover_mismatch(self):
        with pytest.raises(ValueError):
            topo.CacheTopology("bad", ((0, 1),), ((0,),))


class TestHelpers:
    def test_single_core(self):
        t = topo.single_core()
        assert t.ncores == 1
        assert t.transfer_ns(0, 0) == 0

    def test_uniform(self):
        t = topo.uniform(3, transfer_ns=55)
        assert t.ncores == 3
        assert t.transfer_ns(0, 2) == 55
        assert t.transfer_ns(1, 1) == 0

    def test_uniform_rejects_zero(self):
        with pytest.raises(ValueError):
            topo.uniform(0)
