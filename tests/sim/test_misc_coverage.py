"""Coverage for smaller sim/net surfaces: fabric stats, hook registry
management, engine edge cases, cost scaling."""

import pytest

from repro.net import Fabric, MXDriver, wire_pair
from repro.sim import (
    Delay,
    Engine,
    Machine,
    SimCosts,
    quad_xeon_x5460,
)
from repro.sim.hooks import HookRegistry


class TestFabric:
    def test_links_and_traffic(self):
        eng = Engine()
        a = Machine(eng, name="A")
        b = Machine(eng, name="B")
        fabric = Fabric()
        da, db = wire_pair(fabric, a, b, MXDriver)
        assert len(fabric.links) == 1
        assert fabric.total_traffic_bytes() == 0

        class P:
            wire_size = 100
            host_copy_bytes = 0

        da.nic.inject(P(), 100)
        eng.run()
        assert fabric.total_traffic_bytes() == 100

    def test_links_list_is_copy(self):
        fabric = Fabric()
        fabric.links.append("junk")  # mutating the copy
        assert fabric.links == []


class TestHookRegistry:
    def test_unregister_idle(self):
        reg = HookRegistry()

        def hook(core):
            yield Delay(1)

        reg.register_idle(hook)
        assert reg.has_idle_hooks
        reg.unregister_idle(hook)
        assert not reg.has_idle_hooks

    def test_unregister_missing_raises(self):
        reg = HookRegistry()
        with pytest.raises(ValueError):
            reg.unregister_idle(lambda core: iter([]))

    def test_inline_hooks_kinds(self):
        reg = HookRegistry()

        def hook(core):
            yield Delay(1)

        reg.register_timer(hook)
        reg.register_ctx_switch(hook)
        assert reg.inline_hooks("timer") == [hook]
        assert reg.inline_hooks("ctx_switch") == [hook]
        with pytest.raises(ValueError):
            reg.inline_hooks("coffee")

    def test_demand_empty_false(self):
        assert HookRegistry().idle_demand() is False

    def test_demand_any(self):
        reg = HookRegistry()
        reg.register_demand(lambda: False)
        reg.register_demand(lambda: True)
        assert reg.idle_demand() is True


class TestEngineEdges:
    def test_schedule_at_now_allowed(self):
        eng = Engine()
        fired = []
        eng.schedule_at(0, fired.append, 1)
        eng.run()
        assert fired == [1]

    def test_handle_repr(self):
        eng = Engine()
        h = eng.schedule(5, lambda: None)
        assert "pending" in repr(h)
        h.cancel()
        assert "cancelled" in repr(h)

    def test_events_interleave_across_machines(self):
        """Two machines share one clock."""
        eng = Engine()
        a = Machine(eng, quad_xeon_x5460(), name="A")
        b = Machine(eng, quad_xeon_x5460(), name="B")
        order = []

        def work(tag, ns):
            yield Delay(ns)
            order.append(tag)

        ta = a.scheduler.spawn(work("a", 200), name="a", core=0)
        tb = b.scheduler.spawn(work("b", 100), name="b", core=0)
        eng.run(until=lambda: ta.done and tb.done)
        assert order == ["b", "a"]


class TestSimCostsScaling:
    def test_all_scaled_fields(self):
        base = SimCosts()
        doubled = base.scaled(2.0)
        assert doubled.spin_acquire_ns == 2 * base.spin_acquire_ns
        assert doubled.ctx_switch_ns == 2 * base.ctx_switch_ns
        assert doubled.wake_latency_ns == 2 * base.wake_latency_ns
        assert doubled.tasklet_invoke_ns == 2 * base.tasklet_invoke_ns
        assert doubled.spawn_ns == 2 * base.spawn_ns

    def test_zero_scale(self):
        zeroed = SimCosts().scaled(0)
        assert zeroed.spin_cycle_ns == 0
        assert zeroed.block_roundtrip_ns == 0


class TestMachineRepr:
    def test_reprs_do_not_crash(self):
        eng = Engine()
        m = Machine(eng, quad_xeon_x5460(), name="X")
        assert "X" in repr(m)
        assert "X" in repr(m.cores[0])

    def test_core_accessor(self):
        m = Machine(Engine(), quad_xeon_x5460())
        assert m.core(2) is m.cores[2]
        with pytest.raises(IndexError):
            m.core(9)
