"""Unit tests for the tasklet (softirq) engine."""

import pytest

from repro.sim import Delay, Engine, Machine, Tasklet, TaskletState, quad_xeon_x5460


def make_machine():
    eng = Engine()
    m = Machine(eng, quad_xeon_x5460())
    m.enable_idle_loops()
    return eng, m


class TestTaskletExecution:
    def test_runs_on_target_core(self):
        eng, m = make_machine()
        ran_on = []

        def body(core):
            ran_on.append(core.index)
            yield Delay(10)

        tl = Tasklet(body, "t")

        def scheduler_thread():
            yield from m.tasklets.schedule(tl, 2)

        m.scheduler.spawn(scheduler_thread(), name="s", core=0, bound=True)
        eng.run(until=lambda: tl.runs == 1, max_time=10_000_000)
        assert ran_on == [2]
        assert tl.state is TaskletState.IDLE

    def test_schedule_charges_protocol_cost(self):
        eng, m = make_machine()
        tl = Tasklet(lambda core: iter([]), "t")

        def scheduler_thread():
            yield from m.tasklets.schedule(tl, 1)

        t = m.scheduler.spawn(scheduler_thread(), name="s", core=0, bound=True)
        eng.run(until=lambda: t.done, max_time=10_000_000)
        assert m.cores[0].busy_ns("lock") >= m.costs.tasklet_schedule_ns

    def test_invoke_cost_charged_on_executor(self):
        eng, m = make_machine()
        tl = Tasklet(lambda core: iter([]), "t")
        m.tasklets.schedule_from_event(tl, 3)
        eng.run(until=lambda: tl.runs == 1, max_time=10_000_000)
        assert m.cores[3].busy_ns("lock") >= m.costs.tasklet_invoke_ns

    def test_double_schedule_collapses(self):
        eng, m = make_machine()
        tl = Tasklet(lambda core: iter([]), "t")
        m.tasklets.schedule_from_event(tl, 1)
        m.tasklets.schedule_from_event(tl, 1)
        eng.run(until=lambda: m.tasklets.pending_count() == 0, max_time=10_000_000)
        eng.run(until=lambda: tl.runs >= 1, max_time=10_000_000)
        assert tl.runs == 1

    def test_reschedule_while_running_runs_again(self):
        eng, m = make_machine()
        tl = Tasklet(None, "t")

        def body(core):
            yield Delay(100)
            if tl.runs == 0:  # runs incremented after body completes
                m.tasklets.schedule_from_event(tl, 1)

        tl.fn = body
        m.tasklets.schedule_from_event(tl, 1)
        eng.run(until=lambda: tl.runs == 2, max_time=10_000_000)
        assert tl.runs == 2

    def test_bad_core_rejected(self):
        _, m = make_machine()
        with pytest.raises(ValueError):
            m.tasklets.schedule_from_event(Tasklet(lambda c: iter([]), "t"), 9)

    def test_counters(self):
        eng, m = make_machine()
        tls = [Tasklet(lambda core: iter([]), f"t{i}") for i in range(3)]
        for i, tl in enumerate(tls):
            m.tasklets.schedule_from_event(tl, i)
        eng.run(until=lambda: all(t.runs == 1 for t in tls), max_time=10_000_000)
        assert m.tasklets.scheduled_total == 3
        assert m.tasklets.executed_total == 3

    def test_pending_count_per_core(self):
        _, m = make_machine()
        m.tasklets.schedule_from_event(Tasklet(lambda c: iter([]), "a"), 0)
        m.tasklets.schedule_from_event(Tasklet(lambda c: iter([]), "b"), 0)
        assert m.tasklets.pending_count(0) == 2
        assert m.tasklets.pending_count(1) == 0
        assert m.tasklets.pending_count() == 2

    def test_busy_target_core_defers_to_idle_moment(self):
        eng, m = make_machine()
        ran_at = []

        def body(core):
            ran_at.append(eng.now)
            yield Delay(1)

        def busy():
            yield Delay(5_000)

        tb = m.scheduler.spawn(busy(), name="busy", core=1, bound=True)
        tl = Tasklet(body, "t")
        m.tasklets.schedule_from_event(tl, 1)
        eng.run(until=lambda: tl.runs == 1, max_time=10_000_000)
        # the tasklet had to wait for the compute thread to leave the core
        assert ran_at[0] >= 5_000
