"""Scheduler fuzzing: random thread programs + invariant audits.

Hypothesis generates small random programs (mixes of compute, yields,
locks, semaphore waits/posts and sleeps) for a random number of threads;
whatever the interleaving, the run must terminate, account time sanely
and keep the scheduler/lock bookkeeping consistent.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import (
    Acquire,
    Delay,
    Engine,
    Machine,
    Release,
    Semaphore,
    Sleep,
    SpinLock,
    YieldCore,
    check_invariants,
    check_lock_invariants,
    quad_xeon_x5460,
)

# one instruction of a random thread program
instruction = st.one_of(
    st.tuples(st.just("delay"), st.integers(1, 5_000)),
    st.tuples(st.just("yield"), st.none()),
    st.tuples(st.just("lock"), st.integers(0, 1)),  # which lock
    st.tuples(st.just("sleep"), st.integers(1, 2_000)),
    st.tuples(st.just("sem_post"), st.none()),
    st.tuples(st.just("sem_wait"), st.none()),
)

programs = st.lists(
    st.lists(instruction, min_size=1, max_size=8),
    min_size=1,
    max_size=5,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(programs, st.booleans())
def test_random_programs_terminate_consistently(progs, bind_all):
    eng = Engine()
    machine = Machine(eng, quad_xeon_x5460())
    locks = [SpinLock(f"l{i}", costs=machine.costs) for i in range(2)]
    sem = Semaphore(machine, value=0, name="fuzz")

    # guarantee sem waits can always be satisfied: pre-credit the semaphore
    # with the total number of sem_wait instructions
    total_waits = sum(1 for prog in progs for op, _ in prog if op == "sem_wait")
    sem.value += total_waits

    def run_program(prog):
        for op, arg in prog:
            if op == "delay":
                yield Delay(arg)
            elif op == "yield":
                yield YieldCore()
            elif op == "lock":
                yield Acquire(locks[arg])
                yield Delay(50)
                yield Release(locks[arg])
            elif op == "sleep":
                yield Sleep(arg)
            elif op == "sem_post":
                yield from sem.signal()
            elif op == "sem_wait":
                yield from sem.wait()

    threads = []
    for i, prog in enumerate(progs):
        core = i % machine.ncores if bind_all else None
        threads.append(
            machine.scheduler.spawn(
                run_program(prog),
                name=f"fuzz{i}",
                core=core,
                bound=bind_all,
            )
        )
    eng.run(
        until=lambda: all(t.done for t in threads),
        max_time=1_000_000_000,
        max_events=200_000,
    )
    machine.check_failures()
    check_invariants(machine)
    check_lock_invariants(locks)
    # no lock leaked
    assert all(lock.owner is None for lock in locks)
    assert all(not lock.spinners for lock in locks)
    # time accounting: total accounted compute equals the programs' delays
    # (delays are exact; locks/switches go to other categories)
    expected_compute = sum(
        arg for prog in progs for op, arg in prog if op == "delay"
    ) + 50 * sum(1 for prog in progs for op, _ in prog if op == "lock")
    accounted = sum(
        core.busy_ns("compute") for core in machine.cores
    )
    assert accounted == expected_compute


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 4), st.integers(1, 5))
def test_lock_convoy_fuzz(nthreads, rounds):
    """Heavy contention on one lock: strict alternation bookkeeping."""
    eng = Engine()
    machine = Machine(eng, quad_xeon_x5460())
    lock = SpinLock("hot", costs=machine.costs)
    entries = []

    def worker(tag):
        for r in range(rounds):
            yield Acquire(lock)
            entries.append((tag, r))
            yield Delay(300)
            yield Release(lock)

    threads = [
        machine.scheduler.spawn(worker(i), name=f"w{i}", core=i, bound=True)
        for i in range(nthreads)
    ]
    eng.run(until=lambda: all(t.done for t in threads), max_time=1_000_000_000)
    check_invariants(machine)
    check_lock_invariants([lock])
    assert len(entries) == nthreads * rounds
    # each thread's rounds appear in order
    for i in range(nthreads):
        mine = [r for tag, r in entries if tag == i]
        assert mine == sorted(mine)
    assert lock.acquisitions == nthreads * rounds
