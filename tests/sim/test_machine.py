"""Unit tests for Machine and Core accounting."""

import pytest

from repro.sim import (
    Delay,
    Engine,
    Machine,
    RngHub,
    SimCosts,
    dual_quad_xeon,
    quad_xeon_x5460,
)


class TestMachine:
    def test_defaults_to_single_core(self):
        m = Machine(Engine())
        assert m.ncores == 1

    def test_core_count_follows_topology(self):
        m = Machine(Engine(), dual_quad_xeon())
        assert m.ncores == 8

    def test_transfer_delegates_to_topology(self):
        m = Machine(Engine(), quad_xeon_x5460())
        assert m.transfer_ns(0, 2) == 1_200

    def test_utilization_snapshot(self):
        eng = Engine()
        m = Machine(eng, quad_xeon_x5460())

        def work():
            yield Delay(100, "compute")
            yield Delay(30, "poll")

        t = m.scheduler.spawn(work(), name="w", core=1)
        eng.run(until=lambda: t.done)
        util = m.utilization()
        assert util[1] == {"compute": 100, "poll": 30}
        assert util[0] == {}

    def test_check_failures_raises_original_cause(self):
        eng = Engine()
        m = Machine(eng, quad_xeon_x5460())

        def bad():
            yield Delay(1)
            raise ValueError("inner")

        m.scheduler.spawn(bad(), name="b")
        from repro.sim import SimThreadError

        with pytest.raises(SimThreadError):
            eng.run(until=lambda: False, max_time=1_000)
        with pytest.raises(SimThreadError) as info:
            m.check_failures()
        assert isinstance(info.value.__cause__, ValueError)

    def test_check_failures_quiet_when_clean(self):
        m = Machine(Engine())
        m.check_failures()

    def test_jitter_deterministic_per_seed(self):
        m1 = Machine(Engine(), rng=RngHub(7), jitter_ns=100, name="n")
        m2 = Machine(Engine(), rng=RngHub(7), jitter_ns=100, name="n")
        assert [m1.jitter("x") for _ in range(5)] == [m2.jitter("x") for _ in range(5)]

    def test_jitter_zero_without_config(self):
        m = Machine(Engine())
        assert m.jitter("x") == 0

    def test_custom_costs(self):
        costs = SimCosts(ctx_switch_ns=999)
        m = Machine(Engine(), costs=costs)
        assert m.costs.ctx_switch_ns == 999


class TestSimCosts:
    def test_paper_calibration(self):
        c = SimCosts()
        assert c.spin_cycle_ns == 70  # paper §3.1
        assert c.block_roundtrip_ns == 750  # paper §3.3, Fig. 7

    def test_scaled(self):
        c = SimCosts().scaled(2.0)
        assert c.spin_cycle_ns == 140
        assert c.timer_period_ns == SimCosts().timer_period_ns  # period unscaled

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            SimCosts().scaled(-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            SimCosts().ctx_switch_ns = 1


class TestRngHub:
    def test_same_name_same_stream(self):
        hub = RngHub(3)
        assert hub.stream("a") is hub.stream("a")

    def test_streams_independent_of_creation_order(self):
        h1, h2 = RngHub(5), RngHub(5)
        h1.stream("first")
        a1 = h1.stream("second").integers(0, 1000, 10).tolist()
        a2 = h2.stream("second").integers(0, 1000, 10).tolist()
        assert a1 == a2

    def test_jitter_nonnegative(self):
        hub = RngHub(1)
        assert all(hub.jitter_ns("j", 50) >= 0 for _ in range(100))

    def test_jitter_zero_scale(self):
        assert RngHub(1).jitter_ns("j", 0) == 0

    def test_jitter_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            RngHub(1).jitter_ns("j", -1)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngHub("x")
