"""Tests for the Chrome trace-event exporter and its schema validator."""

import json
from functools import partial

from repro.bench import locking
from repro.bench.config import BenchConfig
from repro.bench.pingpong import run_pingpong
from repro.bench.runner import run_sweep
from repro.core import build_testbed
from repro.obs import build_trace, observe, validate_trace
from repro.obs.chrometrace import KNOWN_PHASES


def _traced_captures(policy="fine", size=64, iterations=4):
    with observe() as obs:
        obs.set_label("test/run")
        bed = build_testbed(policy=policy)
        run_pingpong(bed, size, iterations=iterations, warmup=1)
    return obs


class TestExportedTrace:
    def test_trace_validates(self):
        obs = _traced_captures()
        doc = build_trace(obs.captures())
        assert validate_trace(doc) == []
        assert doc["traceEvents"]

    def test_phases_are_known(self):
        obs = _traced_captures()
        doc = build_trace(obs.captures())
        assert {e["ph"] for e in doc["traceEvents"]} <= KNOWN_PHASES

    def test_one_process_per_machine_with_names(self):
        obs = _traced_captures()
        doc = build_trace(obs.captures())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"test/run:nodeA", "test/run:nodeB"}

    def test_core_tracks_named(self):
        obs = _traced_captures()
        doc = build_trace(obs.captures())
        thread_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "core 0" in thread_names
        assert "blocked" in thread_names

    def test_run_slices_present_and_monotonic_per_track(self):
        obs = _traced_captures()
        doc = build_trace(obs.captures())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices
        last: dict[tuple, float] = {}
        for e in slices:
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(key, 0.0)
            assert e["dur"] >= 0
            last[key] = e["ts"]

    def test_counter_events_carry_runq_depth(self):
        obs = _traced_captures()
        doc = build_trace(obs.captures())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all(e["args"]["depth"] >= 0 for e in counters)

    def test_export_writes_valid_json(self, tmp_path):
        obs = _traced_captures()
        path = tmp_path / "trace.json"
        doc = obs.export_chrome(str(path))
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == doc
        assert validate_trace(on_disk) == []


class TestValidator:
    def test_rejects_non_document(self):
        assert validate_trace([]) != []
        assert validate_trace({"traceEvents": 3}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 0, "ts": 0}]}
        assert any("unknown phase" in p for p in validate_trace(doc))

    def test_rejects_missing_pid(self):
        doc = {"traceEvents": [{"ph": "X", "tid": 0, "ts": 0, "dur": 1}]}
        assert any("pid" in p for p in validate_trace(doc))

    def test_rejects_negative_ts_and_dur(self):
        bad_ts = {"traceEvents": [{"ph": "i", "pid": 1, "tid": 0, "ts": -1}]}
        assert any("bad ts" in p for p in validate_trace(bad_ts))
        bad_dur = {
            "traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": -5}]
        }
        assert any("bad dur" in p for p in validate_trace(bad_dur))

    def test_rejects_async_without_id(self):
        doc = {"traceEvents": [{"ph": "b", "pid": 1, "tid": 0, "ts": 0}]}
        assert any("without id" in p for p in validate_trace(doc))

    def test_rejects_non_monotonic_track(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 0, "ts": 10.0, "dur": 1},
                {"ph": "X", "pid": 1, "tid": 0, "ts": 5.0, "dur": 1},
            ]
        }
        assert any("non-monotonic" in p for p in validate_trace(doc))

    def test_independent_tracks_not_conflated(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 0, "ts": 10.0, "dur": 1},
                {"ph": "X", "pid": 1, "tid": 1, "ts": 5.0, "dur": 1},
            ]
        }
        assert validate_trace(doc) == []


class TestParallelTraceDeterminism:
    """A --workers 2 sweep must export the identical trace document."""

    CFG = BenchConfig(iterations=3, warmup=1, sizes=(8, 64), jitter_ns=150)

    def _sweep_trace(self, workers):
        configs = {
            p: partial(locking.fig3_point, p, cfg=self.CFG)
            for p in ("none", "fine")
        }
        with observe() as obs:
            results = run_sweep("fig3", configs, self.CFG, workers=workers)
        return results, build_trace(obs.captures())

    def test_parallel_trace_identical_to_sequential(self):
        seq_results, seq_doc = self._sweep_trace(1)
        par_results, par_doc = self._sweep_trace(2)
        assert seq_results.to_json() == par_results.to_json()
        assert validate_trace(par_doc) == []
        assert json.dumps(seq_doc, sort_keys=True) == json.dumps(
            par_doc, sort_keys=True
        )

    def test_parallel_capture_labels_sequential_order(self):
        configs = {
            p: partial(locking.fig3_point, p, cfg=self.CFG)
            for p in ("none", "fine")
        }
        with observe() as obs:
            run_sweep("fig3", configs, self.CFG, workers=2)
        labels = [c["label"] for c in obs.captures()]
        assert labels == [
            "fig3/none/8", "fig3/none/64", "fig3/fine/8", "fig3/fine/64",
        ]
