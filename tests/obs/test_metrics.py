"""Tests for the observation context and metrics registry (repro.obs)."""

from repro.bench.pingpong import run_pingpong
from repro.core import build_testbed
from repro.obs import MetricsRegistry, active, observe
from repro.obs.metrics import MECHANISMS
from repro.sim.machine import BUSY_CATEGORIES


def _traced_pingpong(policy="fine", size=64, iterations=4):
    with observe() as obs:
        bed = build_testbed(policy=policy)
        run_pingpong(bed, size, iterations=iterations, warmup=1)
    return bed, obs


class TestObserveContext:
    def test_active_only_inside_block(self):
        assert active() is None
        with observe() as obs:
            assert active() is obs
        assert active() is None

    def test_nesting_restores_previous(self):
        with observe() as outer:
            with observe() as inner:
                assert active() is inner
            assert active() is outer

    def test_testbed_gets_tracer_attached(self):
        with observe():
            bed = build_testbed(policy="fine")
        assert all(m.tracer is not None for m in bed.machines)

    def test_trace_false_attaches_no_tracer(self):
        with observe(trace=False):
            bed = build_testbed(policy="fine")
        assert all(m.tracer is None for m in bed.machines)

    def test_no_observation_no_tracer(self):
        bed = build_testbed(policy="fine")
        assert all(m.tracer is None for m in bed.machines)

    def test_labels_tag_captures(self):
        with observe() as obs:
            obs.set_label("exp/fine/64")
            build_testbed(policy="fine")
        assert [c["label"] for c in obs.captures()] == ["exp/fine/64"]

    def test_serialize_absorb_roundtrip(self):
        _bed, obs = _traced_pingpong()
        data = obs.serialize()
        with observe() as parent:
            parent.absorb(data, label="relabelled")
        caps = parent.captures()
        assert len(caps) == 1
        assert caps[0]["label"] == "relabelled"
        # absorbed snapshot carries the same machines and events
        assert caps[0]["machines"] == data["captures"][0]["machines"]


class TestMetricsRegistry:
    def test_lock_counts_match_lock_objects(self):
        # the registry keys by lock NAME, so the two nodes' same-named
        # locks (each lib has its own "nm-collect" etc.) merge into one row
        bed, obs = _traced_pingpong()
        reg = obs.metrics_registry()
        expected: dict[str, dict[str, int]] = {}
        for i in range(2):
            for lock in bed.lib(i).policy.lock_objects():
                slot = expected.setdefault(
                    lock.name,
                    {"acquisitions": 0, "contentions": 0, "holds": 0,
                     "hold_ns_total": 0},
                )
                slot["acquisitions"] += lock.acquisitions
                slot["contentions"] += lock.contentions
                slot["holds"] += lock.holds
                slot["hold_ns_total"] += lock.hold_ns_total
        assert expected, "fine policy must expose lock objects"
        for name, want in expected.items():
            row = reg.locks[name]
            for key, value in want.items():
                assert row[key] == value, (name, key)

    def test_hold_stats_sane(self):
        bed, obs = _traced_pingpong()
        reg = obs.metrics_registry()
        for row in reg.locks.values():
            assert 0 <= row["holds"] <= row["acquisitions"]
            assert row["hold_max_ns"] <= row["hold_ns_total"]
            # histogram buckets account for every recorded hold
            assert sum(row["hold_hist"].values()) == row["holds"]

    def test_utilization_covers_cores(self):
        bed, obs = _traced_pingpong()
        reg = obs.metrics_registry()
        names = {m.name for m in bed.machines}
        assert {machine for machine, _ in reg.cores} == names
        for busy in reg.cores.values():
            assert set(busy) <= set(BUSY_CATEGORIES)
            assert all(ns >= 0 for ns in busy.values())
        # the pingpong did real work somewhere
        assert reg.busy_total("poll") + reg.busy_total("compute") > 0

    def test_decomposition_keys_and_lock_total(self):
        _bed, obs = _traced_pingpong()
        reg = obs.metrics_registry()
        decomp = reg.decomposition()
        assert tuple(decomp) == MECHANISMS
        assert decomp["lock"] == reg.busy_total("lock")
        assert decomp["lock"] > 0  # fine policy takes real locks

    def test_merging_two_captures_sums(self):
        _bed1, obs1 = _traced_pingpong()
        caps = obs1.captures()
        single = MetricsRegistry.from_captures(caps)
        double = MetricsRegistry.from_captures(caps + caps)
        assert double.captures == 2 * single.captures
        for name, row in single.locks.items():
            assert double.locks[name]["acquisitions"] == 2 * row["acquisitions"]
        assert double.transfer_ns == 2 * single.transfer_ns

    def test_report_renders_all_sections(self):
        _bed, obs = _traced_pingpong()
        text = obs.metrics_registry().report()
        assert "Lock contention" in text
        assert "Core utilization" in text
        assert "PIOMan progression" in text
        assert "Overhead decomposition" in text
        assert "dropped" not in text  # nothing overflowed

    def test_report_warns_on_dropped_events(self):
        # an active-wait pingpong records only a handful of scheduler
        # events; max_events=2 forces the ring buffers to overflow
        with observe(max_events=2) as obs:
            bed = build_testbed(policy="fine")
            run_pingpong(bed, 8, iterations=3, warmup=1)
        reg = obs.metrics_registry()
        assert reg.dropped_events > 0
        assert "dropped" in reg.report()

    def test_pioman_counters_flow_through(self):
        # PIOMan only progresses when the app yields the core: use passive
        # waiting so the poll loop actually runs
        from repro.core import PassiveWait
        from repro.pioman import attach_pioman

        with observe() as obs:
            bed = build_testbed(policy="fine")
            for node in (0, 1):
                attach_pioman(bed.machine(node), [bed.lib(node)], poll_cores=[0])
            run_pingpong(
                bed, 8, iterations=3, warmup=1, wait_factory=PassiveWait
            )
        reg = obs.metrics_registry()
        assert reg.pioman["poll_passes"] > 0
        assert reg.pioman["registered"] > 0
        assert reg.pioman["bookkeeping_ns"] > 0
